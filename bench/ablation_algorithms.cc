// Ablation: algorithm choice (DESIGN.md §5 choice 3). Pits SFS, BNL, the
// in-memory divide & conquer, and the naive O(n^2) nested loop (the
// paper's Figure 5 SQL-except semantics) against each other at increasing
// input sizes on a 4-dimensional skyline. Naive is capped at small n.
// Expected shape: naive quadratic blow-up; D&C competitive in memory; SFS
// and BNL close at generous windows with SFS ahead once windows shrink.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 4;

const Table& SizedTable(uint64_t rows) {
  static auto* const kCache = new std::map<uint64_t, std::unique_ptr<Table>>;
  auto it = kCache->find(rows);
  if (it == kCache->end()) {
    GeneratorOptions options;
    options.num_rows = rows;
    options.seed = 2003;
    auto result =
        GenerateTable(BenchEnv(), "abl_algo_" + std::to_string(rows), options);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    it = kCache
             ->emplace(rows,
                       std::make_unique<Table>(std::move(result).value()))
             .first;
  }
  return *it->second;
}

void BM_Sfs(::benchmark::State& state) {
  const Table& table = SizedTable(static_cast<uint64_t>(state.range(0)));
  SkylineSpec spec = MaxSpec(table, kDims);
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, SfsOptions{}, ExecContext(), "abl_algo_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_Bnl(::benchmark::State& state) {
  const Table& table = SizedTable(static_cast<uint64_t>(state.range(0)));
  SkylineSpec spec = MaxSpec(table, kDims);
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineBnl(table, spec, BnlOptions{}, ExecContext(), "abl_algo_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_DivideConquer(::benchmark::State& state) {
  const Table& table = SizedTable(static_cast<uint64_t>(state.range(0)));
  SkylineSpec spec = MaxSpec(table, kDims);
  uint64_t size = 0;
  for (auto _ : state) {
    auto result = DivideConquerSkylineRows(table, spec);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    size = result->size() / table.schema().row_width();
  }
  state.counters["skyline"] = static_cast<double>(size);
}

void BM_Naive(::benchmark::State& state) {
  const Table& table = SizedTable(static_cast<uint64_t>(state.range(0)));
  SkylineSpec spec = MaxSpec(table, kDims);
  uint64_t size = 0;
  for (auto _ : state) {
    auto result = NaiveSkylineRows(table, spec);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    size = result->size() / table.schema().row_width();
  }
  state.counters["skyline"] = static_cast<double>(size);
}

void FullRange(::benchmark::internal::Benchmark* b) {
  for (int64_t n : {1'000, 10'000, 100'000}) b->Arg(n);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

void NaiveRange(::benchmark::internal::Benchmark* b) {
  for (int64_t n : {1'000, 10'000}) b->Arg(n);  // quadratic: capped
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Sfs)->Apply(FullRange);
BENCHMARK(BM_Bnl)->Apply(FullRange);
BENCHMARK(BM_DivideConquer)->Apply(FullRange);
BENCHMARK(BM_Naive)->Apply(NaiveRange);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
