// Ablation: data correlation (DESIGN.md §5 choice 4; paper Section 6).
// Correlated criteria shrink skylines to near-nothing; anti-correlated
// criteria blow them up until SFS (and BNL) degenerate toward
// |R| / |window| passes — the open problem the paper flags. This bench
// measures skyline size, passes, and extra pages for the three
// distributions at a fixed small window across dimensionalities.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void RunDistribution(::benchmark::State& state, Distribution distribution) {
  const int dims = static_cast<int>(state.range(0));
  const Table& table = DistributionTableDims(distribution, dims);
  SkylineSpec spec = MaxSpec(table, dims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(1));
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_corr_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  state.counters["sky_fraction"] =
      static_cast<double>(stats.output_rows) /
      static_cast<double>(stats.input_rows);
}

void BM_Independent(::benchmark::State& state) {
  RunDistribution(state, Distribution::kIndependent);
}
void BM_Correlated(::benchmark::State& state) {
  RunDistribution(state, Distribution::kCorrelated);
}
void BM_AntiCorrelated(::benchmark::State& state) {
  RunDistribution(state, Distribution::kAntiCorrelated);
}

void Args(::benchmark::internal::Benchmark* b) {
  for (int dims : {2, 3, 4}) b->Args({dims, 8});
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Independent)->Apply(Args);
BENCHMARK(BM_Correlated)->Apply(Args);
BENCHMARK(BM_AntiCorrelated)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
