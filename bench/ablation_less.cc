// Ablation: sort-phase elimination (the paper's Section 6 future-work item
// "removal of non-skyline tuples could be done during the external sort
// passes", realized by core/less.h). Compares plain SFS with LESS-style
// elimination at the same filter window across dimensionalities. Expected
// shape: LESS drops the large majority of tuples before they ever enter a
// sort run — sort I/O falls sharply at low dimensionality (small skylines,
// near-total elimination) and the advantage narrows as dimensionality
// (and skyline size) grows.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void BM_PlainSfs(::benchmark::State& state) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  SfsOptions options;
  options.window_pages = 32;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_less_sfs", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  state.counters["sort_io_pages"] =
      static_cast<double>(stats.sort_stats.io.TotalPages());
}

void BM_Less(::benchmark::State& state) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  LessOptions options;
  options.window_pages = 32;
  LessStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineLess(table, spec, options, ExecContext(), "abl_less_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats.run);
  state.counters["sort_io_pages"] =
      static_cast<double>(stats.run.sort_stats.io.TotalPages());
  state.counters["ef_dropped"] = static_cast<double>(stats.ef_dropped);
  state.counters["ef_cmp"] = static_cast<double>(stats.ef_comparisons);
}

void Args(::benchmark::internal::Benchmark* b) {
  for (int dims : {2, 3, 4, 5, 6, 7}) b->Arg(dims);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_PlainSfs)->Apply(Args);
BENCHMARK(BM_Less)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
