// Ablation: entropy normalization strategy under marginal skew. The
// paper's E normalizes by min/max and assumes uniform values, arguing
// (§4.3) that other distributions "would not effect this relative
// ordering much". This bench *tests* that claim against equi-depth-
// histogram rank normalization, which computes the dominance probability
// exactly for any marginal distribution. Measured outcome: the claim
// holds — even at skew exponent 10 the min-max order spills essentially
// the same number of tuples as the exact rank order (a uniform monotone
// transform of every marginal barely perturbs the relative order), at a
// fraction of the presort cost (no histogram build, scalar-key sort).
// The rank ordering remains valuable when marginals are *heterogeneous*
// or when histogram statistics already exist in the catalog.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 6;

const Table& SkewedTable(double skew) {
  static auto* const kCache = new std::map<double, std::unique_ptr<Table>>;
  auto it = kCache->find(skew);
  if (it == kCache->end()) {
    GeneratorOptions options;
    options.num_rows = BenchRows();
    options.num_attributes = kDims;
    options.payload_bytes = 100 - kDims * 4;
    options.skew_exponent = skew;
    options.seed = 2003;
    auto result = GenerateTable(BenchEnv(),
                                "abl_norm_" + std::to_string(skew), options);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    it = kCache
             ->emplace(skew,
                       std::make_unique<Table>(std::move(result).value()))
             .first;
  }
  return *it->second;
}

void BM_MinMaxEntropy(::benchmark::State& state) {
  const Table& table = SkewedTable(static_cast<double>(state.range(0)));
  SkylineSpec spec = MaxSpec(table, kDims);
  SfsOptions options;
  options.window_pages = 2;
  options.use_projection = false;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_norm_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_RankEntropy(::benchmark::State& state) {
  const Table& table = SkewedTable(static_cast<double>(state.range(0)));
  SkylineSpec spec = MaxSpec(table, kDims);
  auto ordering = RankEntropyOrdering::Build(&spec, table, 64);
  SKYLINE_CHECK(ordering.ok()) << ordering.status().ToString();
  SfsOptions options;
  options.presort = Presort::kCustom;
  options.custom_ordering = &*ordering;
  options.window_pages = 2;
  options.use_projection = false;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_norm_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void Args(::benchmark::internal::Benchmark* b) {
  for (int skew : {1, 4, 10}) b->Arg(skew);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_MinMaxEntropy)->Apply(Args);
BENCHMARK(BM_RankEntropy)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
