// Ablation: presort order (DESIGN.md §5 choice 1). The paper's key insight
// for the w/E optimization is that the nested sort floods the window with
// low-dominance-number skyline tuples while the entropy order front-loads
// great dominators, maximizing the reduction factor. This bench fixes a
// small window and measures, per ordering: spilled tuples (the direct
// reduction-factor readout), passes, extra pages, and dominance
// comparisons (CPU). Expected shape: entropy strictly better on spills and
// comparisons across dimensionalities.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void RunOrdering(::benchmark::State& state, Presort presort) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(1));
  options.use_projection = false;  // isolate the ordering effect
  options.presort = presort;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_order_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_NestedOrder(::benchmark::State& state) {
  RunOrdering(state, Presort::kNested);
}
void BM_EntropyOrder(::benchmark::State& state) {
  RunOrdering(state, Presort::kEntropy);
}

void Args(::benchmark::internal::Benchmark* b) {
  for (int dims : {5, 6, 7}) {
    for (int pages : {2, 8, 32}) b->Args({dims, pages});
  }
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_NestedOrder)->Apply(Args);
BENCHMARK(BM_EntropyOrder)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
