// Ablation: window representation (DESIGN.md §5 choice 2). Projection
// stores only the skyline attributes in the window (with dedup): for the
// paper's tuple shape a page holds ~2.5x more entries (40-byte projections
// vs 100-byte tuples), so the one-pass point arrives at a smaller window.
// Expected shape: with projection, fewer passes/spills at every window
// size, and the extra-pages drop-off to zero happens ~2.5x earlier.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 7;

void RunProjection(::benchmark::State& state, bool projection) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  options.use_projection = projection;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_proj_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  // Entries per window page, to make the capacity difference visible.
  const size_t entry = projection ? spec.projected_schema().row_width()
                                  : spec.schema().row_width();
  state.counters["entries_per_page"] =
      static_cast<double>(RecordsPerPage(entry));
}

void BM_FullTupleWindow(::benchmark::State& state) {
  RunProjection(state, false);
}
void BM_ProjectedWindow(::benchmark::State& state) {
  RunProjection(state, true);
}

void Args(::benchmark::internal::Benchmark* b) {
  for (int pages : {2, 4, 8, 16, 32, 64, 128, 256}) b->Arg(pages);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_FullTupleWindow)->Apply(Args);
BENCHMARK(BM_ProjectedWindow)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
