// Ablation: the low-dimensional special cases (paper Section 6: "special
// cases of skyline are known to have good solutions, as for two- and
// three-dimensional skylines"). Compares the O(1)-state 2-dim scan and
// the 3-dim staircase sweep against full SFS and BNL. Expected shape: the
// special cases need no window at all (zero extra pages at any
// allocation) and spend O(n) dominance tests; general SFS matches their
// I/O once the window holds the skyline but pays window-scan CPU.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void BM_Special2D(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, 2);
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkyline2D(table, spec, SortOptions{}, ExecContext(), "abl_2d_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_Special3D(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, 3);
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkyline3D(table, spec, SortOptions{}, ExecContext(), "abl_3d_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_GeneralSfs2D(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, 2);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_2d_sfs", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_GeneralSfs3D(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, 3);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "abl_3d_sfs", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_GeneralBnl2D(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, 2);
  BnlOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineBnl(table, spec, options, ExecContext(), "abl_2d_bnl", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

BENCHMARK(BM_Special2D)->Unit(::benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Special3D)->Unit(::benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_GeneralSfs2D)
    ->Arg(1)
    ->Arg(8)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_GeneralSfs3D)
    ->Arg(1)
    ->Arg(8)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_GeneralBnl2D)
    ->Arg(1)
    ->Arg(8)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
