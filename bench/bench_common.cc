#include "bench_common.h"

#include <cstdlib>
#include <map>
#include <memory>

#include "common/logging.h"

namespace skyline {
namespace bench {

uint64_t BenchRows() {
  static const uint64_t kRows = [] {
    double scale = 1.0;
    if (const char* s = std::getenv("SKYLINE_BENCH_SCALE")) {
      scale = std::atof(s);
      if (scale <= 0) scale = 1.0;
    }
    return static_cast<uint64_t>(100'000 * scale);
  }();
  return kRows;
}

Env* BenchEnv() {
  static Env* const kEnv = NewMemEnv().release();
  return kEnv;
}

namespace {

const Table& CachedTable(const std::string& key,
                         const GeneratorOptions& options) {
  static auto* const kCache = new std::map<std::string, std::unique_ptr<Table>>;
  auto it = kCache->find(key);
  if (it == kCache->end()) {
    auto result = GenerateTable(BenchEnv(), "bench_" + key, options);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    it = kCache
             ->emplace(key,
                       std::make_unique<Table>(std::move(result).value()))
             .first;
  }
  return *it->second;
}

}  // namespace

const Table& PaperTable() {
  GeneratorOptions options;
  options.num_rows = BenchRows();
  options.seed = 2003;  // fixed for reproducibility
  return CachedTable("paper", options);
}

const Table& DistributionTable(Distribution distribution) {
  GeneratorOptions options;
  options.num_rows = BenchRows();
  options.distribution = distribution;
  options.seed = 2003;
  return CachedTable("dist_" + std::to_string(static_cast<int>(distribution)),
                     options);
}

const Table& DistributionTableDims(Distribution distribution, int dims) {
  GeneratorOptions options;
  options.num_rows = BenchRows();
  options.num_attributes = dims;
  options.payload_bytes = 100 - static_cast<size_t>(dims) * 4;
  options.distribution = distribution;
  options.seed = 2003;
  return CachedTable("dist" + std::to_string(static_cast<int>(distribution)) +
                         "_d" + std::to_string(dims),
                     options);
}

const Table& SmallDomainTable(int dims) {
  GeneratorOptions options;
  options.num_rows = BenchRows();
  options.num_attributes = dims;
  options.small_domain = true;
  options.domain_lo = 0;
  options.domain_hi = 9;
  options.seed = 2003;
  return CachedTable("small" + std::to_string(dims), options);
}

const Table& MixedPaperTable(Distribution distribution) {
  GeneratorOptions options;
  options.num_rows = BenchRows();
  options.num_attributes = 6;
  options.attribute_types = {ColumnType::kFloat64, ColumnType::kFloat64,
                             ColumnType::kInt64,   ColumnType::kInt64,
                             ColumnType::kInt32,   ColumnType::kInt32};
  options.payload_bytes = 60;
  options.payload_cardinality = 16;
  options.distribution = distribution;
  options.seed = 2003;
  return CachedTable(
      "mixed" + std::to_string(static_cast<int>(distribution)), options);
}

SkylineSpec MaxSpec(const Table& table, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(table.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

SkylineSpec MixedSpec(const Table& table, int dims, bool payload_diff) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  if (payload_diff) criteria.push_back({"payload", Directive::kDiff});
  auto result = SkylineSpec::Make(table.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ReportRunStats(::benchmark::State& state, const SkylineRunStats& stats) {
  state.counters["skyline"] = static_cast<double>(stats.output_rows);
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["extra_pages"] = static_cast<double>(stats.ExtraPages());
  state.counters["spilled"] = static_cast<double>(stats.spilled_tuples);
  state.counters["dom_cmp"] = static_cast<double>(stats.window_comparisons);
  state.counters["sort_s"] = stats.sort_seconds;
  state.counters["filter_s"] = stats.filter_seconds;
  state.counters["zone_pruned"] =
      static_cast<double>(stats.table_zone_blocks_pruned);
  state.counters["dict_hits"] = static_cast<double>(stats.dict_probe_hits);
}

}  // namespace bench
}  // namespace skyline
