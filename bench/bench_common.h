#ifndef SKYLINE_BENCH_BENCH_COMMON_H_
#define SKYLINE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "core/skyline.h"
#include "env/env.h"

namespace skyline {
namespace bench {

/// Base table size. The paper uses 1M tuples; the default here is 100k so
/// every figure regenerates in seconds. Set SKYLINE_BENCH_SCALE=10 to run
/// at full paper scale.
uint64_t BenchRows();

/// Returns the process-wide bench Env (in-memory).
Env* BenchEnv();

/// Returns (building and caching on first use) the paper-shaped table:
/// BenchRows() 100-byte tuples, ten int32 attributes uniform over the full
/// int32 range, pairwise independent, plus a 60-byte string.
const Table& PaperTable();

/// Cached table with the given distribution (same shape otherwise).
const Table& DistributionTable(Distribution distribution);

/// Cached table whose attribute count equals the skyline dimensionality,
/// so correlation/anti-correlation acts on exactly the criteria in use
/// (a 10-attribute anti-correlated table is nearly independent on any
/// 3-attribute projection).
const Table& DistributionTableDims(Distribution distribution, int dims);

/// Cached small-domain table (domains [0,9], `dims` attributes, 60-byte
/// payload) for the dimensional-reduction experiment.
const Table& SmallDomainTable(int dims);

/// Skyline spec over the first `dims` attributes of `table`, all MAX.
SkylineSpec MaxSpec(const Table& table, int dims);

/// Publishes the standard counters from a run onto a benchmark state.
void ReportRunStats(::benchmark::State& state, const SkylineRunStats& stats);

}  // namespace bench
}  // namespace skyline

#endif  // SKYLINE_BENCH_BENCH_COMMON_H_
