#ifndef SKYLINE_BENCH_BENCH_COMMON_H_
#define SKYLINE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "core/skyline.h"
#include "env/env.h"

namespace skyline {
namespace bench {

/// Base table size. The paper uses 1M tuples; the default here is 100k so
/// every figure regenerates in seconds. Set SKYLINE_BENCH_SCALE=10 to run
/// at full paper scale.
uint64_t BenchRows();

/// Returns the process-wide bench Env (in-memory).
Env* BenchEnv();

/// Returns (building and caching on first use) the paper-shaped table:
/// BenchRows() 100-byte tuples, ten int32 attributes uniform over the full
/// int32 range, pairwise independent, plus a 60-byte string.
const Table& PaperTable();

/// Cached table with the given distribution (same shape otherwise).
const Table& DistributionTable(Distribution distribution);

/// Cached table whose attribute count equals the skyline dimensionality,
/// so correlation/anti-correlation acts on exactly the criteria in use
/// (a 10-attribute anti-correlated table is nearly independent on any
/// 3-attribute projection).
const Table& DistributionTableDims(Distribution distribution, int dims);

/// Cached small-domain table (domains [0,9], `dims` attributes, 60-byte
/// payload) for the dimensional-reduction experiment.
const Table& SmallDomainTable(int dims);

/// Cached paper-shaped table whose tuple is NOT all-int32: 100 bytes with
/// six attributes spanning float64/float64/int64/int64/int32/int32
/// (8+8+8+8+4+4 = 40 bytes) plus a 60-byte payload drawn from a bounded
/// pool, so the payload works as a dictionary-encoded DIFF column. Specs
/// over it exercise every order-key transform at once.
const Table& MixedPaperTable(Distribution distribution);

/// Skyline spec over the first `dims` attributes of `table`, all MAX.
SkylineSpec MaxSpec(const Table& table, int dims);

/// Mixed-workload spec: MAX over the first `dims` attributes (mixed
/// float64/int64/int32 lanes on the mixed table), plus a
/// dictionary-encoded payload DIFF criterion when `payload_diff`.
SkylineSpec MixedSpec(const Table& table, int dims, bool payload_diff);

/// Publishes the standard counters from a run onto a benchmark state.
void ReportRunStats(::benchmark::State& state, const SkylineRunStats& stats);

}  // namespace bench
}  // namespace skyline

#endif  // SKYLINE_BENCH_BENCH_COMMON_H_
