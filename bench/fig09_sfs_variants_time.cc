// Figure 9: elapsed time vs window size for the three SFS variants over a
// 7-dimensional skyline — basic SFS (nested presort), SFS w/E (entropy
// presort), and SFS w/E,P (entropy presort + window projection). Times
// include the presort, as in the paper. Expected shape: w/E below basic at
// small windows (better reduction factor, cheaper single-key sort); w/E,P
// flattens out at a smaller window (denser window entries).

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 7;

void RunSfs(::benchmark::State& state, Presort presort, bool projection) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  options.presort = presort;
  options.use_projection = projection;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineSfs(table, spec, options, ExecContext(), "fig09_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    ::benchmark::DoNotOptimize(result->row_count());
  }
  ReportRunStats(state, stats);
}

void BM_SFS_Basic(::benchmark::State& state) {
  RunSfs(state, Presort::kNested, false);
}
void BM_SFS_Entropy(::benchmark::State& state) {
  RunSfs(state, Presort::kEntropy, false);
}
void BM_SFS_EntropyProj(::benchmark::State& state) {
  RunSfs(state, Presort::kEntropy, true);
}

void WindowArgs(::benchmark::internal::Benchmark* b) {
  for (int pages : {2, 4, 8, 16, 32, 64, 128, 256, 512}) b->Arg(pages);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_SFS_Basic)->Apply(WindowArgs);
BENCHMARK(BM_SFS_Entropy)->Apply(WindowArgs);
BENCHMARK(BM_SFS_EntropyProj)->Apply(WindowArgs);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
