// Figure 10: extra-page I/O vs window size for the three SFS variants
// (7-dim skyline). "Extra pages" counts temp pages written across all
// filter passes plus their re-reads, excluding the initial scan — exactly
// the paper's measure. Expected shape: w/E well below basic before the
// one-pass point; w/E,P drops to zero at a smaller window; all reach zero
// once the window holds the (projected) skyline.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 7;

void RunSfsIo(::benchmark::State& state, Presort presort, bool projection) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  options.presort = presort;
  options.use_projection = projection;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineSfs(table, spec, options, ExecContext(), "fig10_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  state.counters["pages_written"] =
      static_cast<double>(stats.temp_io.pages_written);
  state.counters["pages_reread"] =
      static_cast<double>(stats.temp_io.pages_read);
}

void BM_IO_SFS_Basic(::benchmark::State& state) {
  RunSfsIo(state, Presort::kNested, false);
}
void BM_IO_SFS_Entropy(::benchmark::State& state) {
  RunSfsIo(state, Presort::kEntropy, false);
}
void BM_IO_SFS_EntropyProj(::benchmark::State& state) {
  RunSfsIo(state, Presort::kEntropy, true);
}

void WindowArgs(::benchmark::internal::Benchmark* b) {
  for (int pages : {2, 4, 8, 16, 32, 64, 128, 256, 512}) b->Arg(pages);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_IO_SFS_Basic)->Apply(WindowArgs);
BENCHMARK(BM_IO_SFS_Entropy)->Apply(WindowArgs);
BENCHMARK(BM_IO_SFS_EntropyProj)->Apply(WindowArgs);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
