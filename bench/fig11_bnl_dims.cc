// Figure 11: BNL elapsed time vs window size at 5, 6, and 7 skyline
// dimensions, for random input order and reverse-entropy (w/RE) input
// order. Expected shape: times rise with dimensionality (larger skylines,
// weaker window replacement); w/RE is pathological; past a point, larger
// windows make BNL *slower* (CPU-bound window scans) — the behaviour that
// makes BNL hard to cost in an optimizer. As in the paper, the w/RE sweep
// is curtailed (fewer points) because those runs are very slow.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void RunBnl(::benchmark::State& state, bool reverse_entropy) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  EntropyOrdering entropy(&spec, table);
  ReverseOrdering reversed(&entropy);
  BnlOptions options;
  options.window_pages = static_cast<size_t>(state.range(1));
  if (reverse_entropy) options.input_ordering = &reversed;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineBnl(table, spec, options, ExecContext(), "fig11_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  state.counters["replacements"] =
      static_cast<double>(stats.window_replacements);
}

void BM_BNL_Random(::benchmark::State& state) { RunBnl(state, false); }
void BM_BNL_ReverseEntropy(::benchmark::State& state) { RunBnl(state, true); }

void BnlArgs(::benchmark::internal::Benchmark* b) {
  for (int dims : {5, 6, 7}) {
    for (int pages : {2, 8, 32, 128, 512}) b->Args({dims, pages});
  }
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

void BnlReArgs(::benchmark::internal::Benchmark* b) {
  // Curtailed, as in the paper: w/RE runs are extremely slow.
  for (int dims : {5, 6}) {
    for (int pages : {2, 8, 32}) b->Args({dims, pages});
  }
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_BNL_Random)->Apply(BnlArgs);
BENCHMARK(BM_BNL_ReverseEntropy)->Apply(BnlReArgs);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
