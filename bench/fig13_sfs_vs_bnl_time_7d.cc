// Figure 13: elapsed time, SFS vs BNL vs BNL w/RE, 7-dimensional skyline,
// across window sizes. SFS here is the full w/E,P variant (as the paper
// uses from this figure on) and its time includes the presort. Expected
// shape: SFS below BNL across the sweep and stable as the window grows;
// BNL w/RE far above both.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 7;

void BM_SFS(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineSfs(table, spec, options, ExecContext(), "fig13_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void RunBnl(::benchmark::State& state, bool reverse_entropy) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  EntropyOrdering entropy(&spec, table);
  ReverseOrdering reversed(&entropy);
  BnlOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  if (reverse_entropy) options.input_ordering = &reversed;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineBnl(table, spec, options, ExecContext(), "fig13_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_BNL(::benchmark::State& state) { RunBnl(state, false); }
void BM_BNL_RE(::benchmark::State& state) { RunBnl(state, true); }

void WindowArgs(::benchmark::internal::Benchmark* b) {
  for (int pages : {2, 8, 32, 128, 512}) b->Arg(pages);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

void CurtailedArgs(::benchmark::internal::Benchmark* b) {
  for (int pages : {2, 8, 32}) b->Arg(pages);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_SFS)->Apply(WindowArgs);
BENCHMARK(BM_BNL)->Apply(WindowArgs);
BENCHMARK(BM_BNL_RE)->Apply(CurtailedArgs);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
