// Figure 14: extra-page I/O, SFS vs BNL (and BNL w/RE), 5-dimensional
// skyline, across window sizes. Expected shape (log-scale in the paper):
// SFS's curve falls more steeply than BNL's with larger windows (more
// efficient window use) and hits zero sooner thanks to projection; BNL
// w/RE is horrible — window replacement is defeated, so few tuples are
// discarded per pass.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 5;

void BM_IO_SFS(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineSfs(table, spec, options, ExecContext(), "fig14_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void RunBnlIo(::benchmark::State& state, bool reverse_entropy) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  EntropyOrdering entropy(&spec, table);
  ReverseOrdering reversed(&entropy);
  BnlOptions options;
  options.window_pages = static_cast<size_t>(state.range(0));
  if (reverse_entropy) options.input_ordering = &reversed;
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineBnl(table, spec, options, ExecContext(), "fig14_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_IO_BNL(::benchmark::State& state) { RunBnlIo(state, false); }
void BM_IO_BNL_RE(::benchmark::State& state) { RunBnlIo(state, true); }

void WindowArgs(::benchmark::internal::Benchmark* b) {
  for (int pages : {2, 4, 8, 16, 32, 64, 128}) b->Arg(pages);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

void CurtailedArgs(::benchmark::internal::Benchmark* b) {
  for (int pages : {2, 8, 32}) b->Arg(pages);
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_IO_SFS)->Apply(WindowArgs);
BENCHMARK(BM_IO_BNL)->Apply(WindowArgs);
BENCHMARK(BM_IO_BNL_RE)->Apply(CurtailedArgs);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
