// Machine-readable benchmark for the parallel SFS engine.
//
// Runs the full SFS computation (presort + filter) over an anti-correlated
// 5-dimensional table at each thread count and writes one JSON document —
// BENCH_sfs.json by default — so CI and scripts can track rows/sec without
// scraping human-oriented benchmark output. The document carries
// "schema_version" and embeds a full RunReport (stats + metrics + trace
// spans) per run alongside the original flat keys.
//
// Usage: parallel_sfs_bench [output.json]
//   SKYLINE_BENCH_SCALE=10   paper-scale table (1M rows)
//   SKYLINE_BENCH_THREADS=1,2,4,8   thread counts to sweep
//   SKYLINE_BENCH_REPS=3     repetitions per config (best wall time wins)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "core/dominance_batch.h"

namespace skyline {
namespace bench {
namespace {

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts;
  if (const char* s = std::getenv("SKYLINE_BENCH_THREADS")) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const long v = std::atol(item.c_str());
      if (v > 0) counts.push_back(static_cast<size_t>(v));
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

int Reps() {
  if (const char* s = std::getenv("SKYLINE_BENCH_REPS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<int>(v);
  }
  return 3;
}

struct RunResult {
  size_t threads_requested = 0;
  SkylineRunStats stats;
  double wall_seconds = 0;
  /// Telemetry from the winning repetition, embedded into its RunReport.
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<TraceSink> trace;
};

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sfs.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  constexpr int kDims = 5;
  const Table& table =
      DistributionTableDims(Distribution::kAntiCorrelated, kDims);
  const SkylineSpec spec = MaxSpec(table, kDims);
  const int reps = Reps();

  std::vector<RunResult> results;
  for (size_t threads : ThreadCounts()) {
    RunResult best;
    best.threads_requested = threads;
    best.wall_seconds = -1;
    for (int rep = 0; rep < reps; ++rep) {
      SkylineComputeOptions options;
      options.sfs.threads = threads;
      auto metrics = std::make_unique<MetricsRegistry>();
      auto trace = std::make_unique<TraceSink>();
      ExecContext ctx;
      ctx.metrics = metrics.get();
      ctx.trace = trace.get();
      SkylineRunStats stats;
      const auto start = std::chrono::steady_clock::now();
      auto result = ComputeSkyline(SkylineAlgorithm::kSfs, table, spec, ctx,
                                   "bench_psfs_out", &stats, options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SKYLINE_CHECK(result.ok()) << result.status().ToString();
      if (best.wall_seconds < 0 || wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.stats = stats;
        best.metrics = std::move(metrics);
        best.trace = std::move(trace);
      }
    }
    std::cerr << "threads=" << threads << " wall=" << best.wall_seconds
              << "s rows/s="
              << static_cast<uint64_t>(table.row_count() / best.wall_seconds)
              << " skyline=" << best.stats.output_rows << "\n";
    results.push_back(std::move(best));
  }

  // Mixed-type paper workload: the 100-byte tuple whose attributes span
  // float64/int64/int32 plus a dictionary-encoded 60-byte payload DIFF.
  // Before the universal order-key transform this spec fell back to the
  // row-at-a-time comparator; now it lowers to the columnar kernel. Run
  // it both ways (forcing the row path via the test hook) to record the
  // fallback -> fast-path win.
  constexpr int kMixedDims = 5;
  const Table& mixed = MixedPaperTable(Distribution::kAntiCorrelated);
  const SkylineSpec mixed_spec =
      MixedSpec(mixed, kMixedDims, /*payload_diff=*/true);
  const size_t mixed_threads = ThreadCounts().back();
  struct MixedResult {
    const char* kernel_mode;
    SkylineRunStats stats;
    double wall_seconds = -1;
  };
  std::vector<MixedResult> mixed_results;
  for (const bool force_row : {true, false}) {
    SetForceRowDominancePath(force_row);
    MixedResult best;
    best.kernel_mode = force_row ? "row_fallback" : "columnar";
    for (int rep = 0; rep < reps; ++rep) {
      SkylineComputeOptions options;
      options.sfs.threads = mixed_threads;
      ExecContext ctx;
      SkylineRunStats stats;
      const auto start = std::chrono::steady_clock::now();
      auto result = ComputeSkyline(SkylineAlgorithm::kSfs, mixed, mixed_spec,
                                   ctx, "bench_psfs_mixed_out", &stats,
                                   options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SKYLINE_CHECK(result.ok()) << result.status().ToString();
      if (best.wall_seconds < 0 || wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.stats = stats;
      }
    }
    SetForceRowDominancePath(false);
    std::cerr << "mixed kernel=" << best.kernel_mode
              << " wall=" << best.wall_seconds << "s rows/s="
              << static_cast<uint64_t>(mixed.row_count() / best.wall_seconds)
              << " skyline=" << best.stats.output_rows << "\n";
    mixed_results.push_back(std::move(best));
  }

  JsonWriter json;
  json.BeginObject();
  json.KeyValue("schema_version", RunReport::kSchemaVersion);
  json.KeyValue("benchmark", "parallel_sfs");
  json.KeyValue("distribution", "anti_correlated");
  json.KeyValue("dimensions", kDims);
  json.KeyValue("rows", table.row_count());
  json.KeyValue("repetitions", reps);
  json.KeyValue("hardware_threads", std::thread::hardware_concurrency());
  json.Key("runs");
  json.BeginArray();
  for (const RunResult& r : results) {
    const SkylineRunStats& s = r.stats;
    json.BeginObject();
    json.KeyValue("threads", static_cast<uint64_t>(r.threads_requested));
    json.KeyValue("threads_used", static_cast<uint64_t>(s.threads_used));
    json.KeyValue("sort_threads_used",
                  static_cast<uint64_t>(s.sort_stats.threads_used));
    json.KeyValue("wall_seconds", r.wall_seconds);
    json.KeyValue("rows_per_sec",
                  static_cast<uint64_t>(table.row_count() / r.wall_seconds));
    json.KeyValue("sort_seconds", s.sort_seconds);
    json.KeyValue("filter_seconds", s.filter_seconds);
    json.KeyValue("block_scan_seconds", s.block_scan_seconds);
    json.KeyValue("block_merge_seconds", s.block_merge_seconds);
    json.KeyValue("passes", s.passes);
    json.KeyValue("window_comparisons", s.window_comparisons);
    json.KeyValue("merge_comparisons", s.merge_comparisons);
    json.KeyValue("batch_comparisons", s.batch_comparisons);
    json.KeyValue("window_blocks_pruned", s.window_blocks_pruned);
    json.KeyValue("merge_blocks_pruned", s.merge_blocks_pruned);
    json.KeyValue("table_zone_blocks_pruned", s.table_zone_blocks_pruned);
    json.KeyValue("column_file_blocks_read", s.column_file_blocks_read);
    json.KeyValue("dict_probe_hits", s.dict_probe_hits);
    json.KeyValue("zone_map_source", s.zone_map_source);
    json.KeyValue("dominance_kernel", s.dominance_kernel);
    json.KeyValue(
        "comparisons_per_sec",
        static_cast<uint64_t>(r.wall_seconds > 0
                                  ? static_cast<double>(s.window_comparisons) /
                                        r.wall_seconds
                                  : 0));
    json.KeyValue("output_rows", s.output_rows);
    // The versioned observability artifact for the winning repetition:
    // full stats, aggregated metrics, and the trace span log.
    RunReport report;
    report.tool = "parallel_sfs_bench";
    report.algorithm = "sfs";
    report.stats = s;
    report.wall_seconds = r.wall_seconds;
    report.numbers.emplace_back(
        "threads_requested", static_cast<double>(r.threads_requested));
    report.metrics = r.metrics.get();
    report.trace = r.trace.get();
    json.Key("report");
    AppendRunReportObject(&json, report);
    json.EndObject();
  }
  json.EndArray();
  json.Key("mixed_workload");
  json.BeginObject();
  json.KeyValue("rows", mixed.row_count());
  json.KeyValue("dimensions", kMixedDims);
  json.KeyValue("attribute_types", "f64,f64,i64,i64,i32");
  json.KeyValue("payload_diff", "dict60");
  json.KeyValue("threads", static_cast<uint64_t>(mixed_threads));
  if (mixed_results.size() == 2 && mixed_results[1].wall_seconds > 0) {
    json.KeyValue("row_over_columnar_speedup",
                  mixed_results[0].wall_seconds /
                      mixed_results[1].wall_seconds);
  }
  json.Key("runs");
  json.BeginArray();
  for (const MixedResult& r : mixed_results) {
    const SkylineRunStats& s = r.stats;
    json.BeginObject();
    json.KeyValue("kernel_mode", r.kernel_mode);
    json.KeyValue("dominance_kernel", s.dominance_kernel);
    json.KeyValue("wall_seconds", r.wall_seconds);
    json.KeyValue("rows_per_sec",
                  static_cast<uint64_t>(mixed.row_count() / r.wall_seconds));
    json.KeyValue("filter_seconds", s.filter_seconds);
    json.KeyValue("window_comparisons", s.window_comparisons);
    json.KeyValue("batch_comparisons", s.batch_comparisons);
    json.KeyValue("window_blocks_pruned", s.window_blocks_pruned);
    json.KeyValue("dict_probe_hits", s.dict_probe_hits);
    json.KeyValue("output_rows", s.output_rows);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.EndObject();
  out << json.TakeString();
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace skyline

int main(int argc, char** argv) { return skyline::bench::Main(argc, argv); }
