// Machine-readable benchmark for the parallel SFS engine.
//
// Runs the full SFS computation (presort + filter) over an anti-correlated
// 5-dimensional table at each thread count and writes one JSON document —
// BENCH_sfs.json by default — so CI and scripts can track rows/sec without
// scraping human-oriented benchmark output. The document carries
// "schema_version" and embeds a full RunReport (stats + metrics + trace
// spans) per run alongside the original flat keys.
//
// Usage: parallel_sfs_bench [output.json]
//   SKYLINE_BENCH_SCALE=10   paper-scale table (1M rows)
//   SKYLINE_BENCH_THREADS=1,2,4,8   thread counts to sweep
//   SKYLINE_BENCH_REPS=3     repetitions per config (best wall time wins)
//   SKYLINE_BENCH_SCHEMES=1  add the partition-scheme sweep (simulated
//                            shards; "partition_schemes" JSON section)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "core/dominance_batch.h"
#include "core/partition.h"
#include "core/scoring.h"
#include "core/sfs_parallel.h"
#include "relation/column_store.h"
#include "sort/external_sort.h"
#include "storage/temp_file_manager.h"

namespace skyline {
namespace bench {
namespace {

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts;
  if (const char* s = std::getenv("SKYLINE_BENCH_THREADS")) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const long v = std::atol(item.c_str());
      if (v > 0) counts.push_back(static_cast<size_t>(v));
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

int Reps() {
  if (const char* s = std::getenv("SKYLINE_BENCH_REPS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<int>(v);
  }
  return 3;
}

struct RunResult {
  size_t threads_requested = 0;
  SkylineRunStats stats;
  double wall_seconds = 0;
  /// Telemetry from the winning repetition, embedded into its RunReport.
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<TraceSink> trace;
};

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sfs.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  constexpr int kDims = 5;
  const Table& table =
      DistributionTableDims(Distribution::kAntiCorrelated, kDims);
  const SkylineSpec spec = MaxSpec(table, kDims);
  const int reps = Reps();

  std::vector<RunResult> results;
  for (size_t threads : ThreadCounts()) {
    RunResult best;
    best.threads_requested = threads;
    best.wall_seconds = -1;
    for (int rep = 0; rep < reps; ++rep) {
      SkylineComputeOptions options;
      options.sfs.threads = threads;
      auto metrics = std::make_unique<MetricsRegistry>();
      auto trace = std::make_unique<TraceSink>();
      ExecContext ctx;
      ctx.metrics = metrics.get();
      ctx.trace = trace.get();
      SkylineRunStats stats;
      const auto start = std::chrono::steady_clock::now();
      auto result = ComputeSkyline(SkylineAlgorithm::kSfs, table, spec, ctx,
                                   "bench_psfs_out", &stats, options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SKYLINE_CHECK(result.ok()) << result.status().ToString();
      if (best.wall_seconds < 0 || wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.stats = stats;
        best.metrics = std::move(metrics);
        best.trace = std::move(trace);
      }
    }
    std::cerr << "threads=" << threads << " wall=" << best.wall_seconds
              << "s rows/s="
              << static_cast<uint64_t>(table.row_count() / best.wall_seconds)
              << " skyline=" << best.stats.output_rows << "\n";
    if (best.stats.DegradedParallelism()) {
      // Honesty over silence: a speedup chart from this host would flatten
      // not because the algorithm stopped scaling but because the host
      // could not grant the requested workers.
      LogWarning("requested " +
                 std::to_string(best.stats.threads_requested) +
                 " threads but ran with " +
                 std::to_string(best.stats.threads_used) +
                 " (degraded parallelism; speedup figures at this point "
                 "reflect the host, not the algorithm)");
    }
    results.push_back(std::move(best));
  }

  // Mixed-type paper workload: the 100-byte tuple whose attributes span
  // float64/int64/int32 plus a dictionary-encoded 60-byte payload DIFF.
  // Before the universal order-key transform this spec fell back to the
  // row-at-a-time comparator; now it lowers to the columnar kernel. Run
  // it both ways (forcing the row path via the test hook) to record the
  // fallback -> fast-path win.
  constexpr int kMixedDims = 5;
  const Table& mixed = MixedPaperTable(Distribution::kAntiCorrelated);
  const SkylineSpec mixed_spec =
      MixedSpec(mixed, kMixedDims, /*payload_diff=*/true);
  const size_t mixed_threads = ThreadCounts().back();
  struct MixedResult {
    const char* kernel_mode;
    SkylineRunStats stats;
    double wall_seconds = -1;
  };
  std::vector<MixedResult> mixed_results;
  for (const bool force_row : {true, false}) {
    SetForceRowDominancePath(force_row);
    MixedResult best;
    best.kernel_mode = force_row ? "row_fallback" : "columnar";
    for (int rep = 0; rep < reps; ++rep) {
      SkylineComputeOptions options;
      options.sfs.threads = mixed_threads;
      ExecContext ctx;
      SkylineRunStats stats;
      const auto start = std::chrono::steady_clock::now();
      auto result = ComputeSkyline(SkylineAlgorithm::kSfs, mixed, mixed_spec,
                                   ctx, "bench_psfs_mixed_out", &stats,
                                   options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SKYLINE_CHECK(result.ok()) << result.status().ToString();
      if (best.wall_seconds < 0 || wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.stats = stats;
      }
    }
    SetForceRowDominancePath(false);
    std::cerr << "mixed kernel=" << best.kernel_mode
              << " wall=" << best.wall_seconds << "s rows/s="
              << static_cast<uint64_t>(mixed.row_count() / best.wall_seconds)
              << " skyline=" << best.stats.output_rows << "\n";
    mixed_results.push_back(std::move(best));
  }

  // ---- Index sweep (SKYLINE_BENCH_INDEX=1) ----
  // Correlated data is BBS's home turf: a tiny skyline lets zone-corner
  // dominance prune nearly every subtree, so the index path reads a small
  // fraction of the column-file blocks that full-scan SFS touches. The
  // sweep records the one-time sidecar build cost next to the per-query
  // win so the break-even point stays visible.
  struct IndexResult {
    const char* algorithm = "";
    SkylineRunStats stats;
    double wall_seconds = -1;
  };
  std::vector<IndexResult> index_results;
  double index_cluster_seconds = 0;
  double index_column_file_seconds = 0;
  double index_build_seconds = 0;
  uint64_t index_total_blocks = 0;
  std::unique_ptr<Table> index_table;
  const bool run_index = std::getenv("SKYLINE_BENCH_INDEX") != nullptr;
  if (run_index) {
    // The index path's deployment shape: z-order cluster the table once,
    // then build the sidecars against the clustered layout. All three
    // one-time costs are recorded next to the per-query win.
    const Table& raw =
        DistributionTableDims(Distribution::kCorrelated, kDims);
    {
      const auto start = std::chrono::steady_clock::now();
      auto clustered = ClusterTableZOrder(raw, "bench_psfs_index_table");
      index_cluster_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SKYLINE_CHECK(clustered.ok()) << clustered.status().ToString();
      index_table =
          std::make_unique<Table>(std::move(clustered).value());
    }
    const Table& correlated = *index_table;
    const SkylineSpec corr_spec = MaxSpec(correlated, kDims);
    index_total_blocks = (correlated.row_count() + 63) / 64;

    auto timed = [](auto&& fn) {
      const auto start = std::chrono::steady_clock::now();
      const Status st = fn();
      SKYLINE_CHECK(st.ok()) << st.ToString();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    index_column_file_seconds =
        timed([&] { return WriteTableColumnFile(correlated); });
    index_build_seconds =
        timed([&] { return WriteTableBlockIndex(correlated); });
    std::cerr << "index build: cluster " << index_cluster_seconds
              << "s, column file " << index_column_file_seconds
              << "s, z-order index " << index_build_seconds << "s\n";

    std::vector<char> reference_rows;
    for (const SkylineAlgorithm algorithm :
         {SkylineAlgorithm::kSfs, SkylineAlgorithm::kBbs}) {
      IndexResult best;
      best.algorithm = SkylineAlgorithmName(algorithm);
      for (int rep = 0; rep < reps; ++rep) {
        ExecContext ctx;
        SkylineRunStats stats;
        const auto start = std::chrono::steady_clock::now();
        auto result = ComputeSkyline(algorithm, correlated, corr_spec, ctx,
                                     "bench_psfs_index_out", &stats);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        SKYLINE_CHECK(result.ok()) << result.status().ToString();
        if (best.wall_seconds < 0 || wall < best.wall_seconds) {
          best.wall_seconds = wall;
          best.stats = stats;
        }
        if (rep == 0) {
          // Cross-algorithm byte-identity: the index path must emit the
          // exact SFS bytes, not merely the same multiset.
          std::vector<char> rows;
          SKYLINE_CHECK(result.value().ReadAllRows(&rows).ok());
          if (algorithm == SkylineAlgorithm::kSfs) {
            reference_rows = std::move(rows);
          } else {
            SKYLINE_CHECK(rows == reference_rows)
                << "BBS output diverged from SFS bytes";
          }
        }
      }
      std::cerr << "index algo=" << best.algorithm
                << " wall=" << best.wall_seconds
                << "s blocks_skipped=" << best.stats.index_blocks_skipped
                << "/" << index_total_blocks
                << " skyline=" << best.stats.output_rows << "\n";
      index_results.push_back(std::move(best));
    }
  }

  // ---- Partition-scheme sweep (SKYLINE_BENCH_SCHEMES=1) ----
  // Simulated shards: the filter is driven directly with a forced block
  // count, so the merge-work numbers are partition-count effects, not
  // host-core effects — an 8-way sweep measures the same comparisons on a
  // laptop and in CI. Wall times here are *not* speedup figures.
  struct SchemeResult {
    const char* scheme = "";
    const char* merge_mode = "";
    SkylineRunStats stats;
    double wall_seconds = 0;
    bool byte_identical = true;
  };
  std::vector<SchemeResult> scheme_results;
  constexpr size_t kSimulatedShards = 8;
  const bool run_schemes = std::getenv("SKYLINE_BENCH_SCHEMES") != nullptr;
  if (run_schemes) {
    Env* env = BenchEnv();
    TempFileManager temp_files(env, "bench_psfs_schemes");
    const auto ordering = MakeNestedSkylineOrdering(spec);
    auto sorted_or =
        SortHeapFile(env, &temp_files, table.path(), spec.schema().row_width(),
                     *ordering, SortOptions{}, ExecContext(), nullptr);
    SKYLINE_CHECK(sorted_or.ok()) << sorted_or.status().ToString();
    const std::string sorted = std::move(sorted_or).value();
    const size_t width = spec.schema().row_width();

    auto run_one = [&](PartitionSchemeKind kind, ParallelMergeMode mode,
                       size_t rep_count, std::vector<char>* rows_out,
                       SkylineRunStats* stats) {
      ParallelSfsOptions popt;
      popt.threads = kSimulatedShards;  // forced shard count, not a clamp
      popt.min_block_rows = 1;
      popt.partition = kind;
      popt.merge_mode = mode;
      popt.representatives = rep_count;
      rows_out->clear();
      const auto start = std::chrono::steady_clock::now();
      const Status st = ParallelSfsFilter(
          env, sorted, spec, popt,
          [&](const char* row) {
            rows_out->insert(rows_out->end(), row, row + width);
            return Status::OK();
          },
          stats);
      SKYLINE_CHECK(st.ok()) << st.ToString();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };

    // The recorded baseline is the v1 configuration: stride partitions,
    // all-pairs merge, no representatives.
    std::vector<char> baseline_rows;
    SchemeResult baseline;
    baseline.scheme = PartitionSchemeName(PartitionSchemeKind::kStride);
    baseline.merge_mode = "all_pairs";
    baseline.wall_seconds =
        run_one(PartitionSchemeKind::kStride, ParallelMergeMode::kAllPairs, 0,
                &baseline_rows, &baseline.stats);
    scheme_results.push_back(baseline);

    std::vector<char> rows;
    for (PartitionSchemeKind kind :
         {PartitionSchemeKind::kStride, PartitionSchemeKind::kGrid,
          PartitionSchemeKind::kAngular}) {
      SchemeResult r;
      r.scheme = PartitionSchemeName(kind);
      r.merge_mode = "filtered_cascade";
      r.wall_seconds = run_one(kind, ParallelMergeMode::kFilteredCascade,
                               ParallelSfsOptions().representatives, &rows,
                               &r.stats);
      r.byte_identical = rows == baseline_rows;
      SKYLINE_CHECK(r.byte_identical)
          << "scheme " << r.scheme << " diverged from the baseline skyline";
      std::cerr << "scheme=" << r.scheme
                << " merge_comparisons=" << r.stats.merge_comparisons
                << " (all_pairs=" << baseline.stats.merge_comparisons
                << ", reduction="
                << (r.stats.merge_comparisons > 0
                        ? static_cast<double>(
                              baseline.stats.merge_comparisons) /
                              static_cast<double>(r.stats.merge_comparisons)
                        : 0.0)
                << "x)\n";
      scheme_results.push_back(std::move(r));
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.KeyValue("schema_version", RunReport::kSchemaVersion);
  json.KeyValue("benchmark", "parallel_sfs");
  json.KeyValue("distribution", "anti_correlated");
  json.KeyValue("dimensions", kDims);
  json.KeyValue("rows", table.row_count());
  json.KeyValue("repetitions", reps);
  json.KeyValue("hardware_threads", std::thread::hardware_concurrency());
  json.Key("runs");
  json.BeginArray();
  for (const RunResult& r : results) {
    const SkylineRunStats& s = r.stats;
    json.BeginObject();
    json.KeyValue("threads", static_cast<uint64_t>(r.threads_requested));
    json.KeyValue("threads_requested", s.threads_requested);
    json.KeyValue("threads_used", static_cast<uint64_t>(s.threads_used));
    json.KeyValue("degraded_parallelism", s.DegradedParallelism());
    json.KeyValue("sort_threads_used",
                  static_cast<uint64_t>(s.sort_stats.threads_used));
    json.KeyValue("wall_seconds", r.wall_seconds);
    json.KeyValue("rows_per_sec",
                  static_cast<uint64_t>(table.row_count() / r.wall_seconds));
    json.KeyValue("sort_seconds", s.sort_seconds);
    json.KeyValue("filter_seconds", s.filter_seconds);
    json.KeyValue("block_scan_seconds", s.block_scan_seconds);
    json.KeyValue("block_merge_seconds", s.block_merge_seconds);
    json.KeyValue("passes", s.passes);
    json.KeyValue("window_comparisons", s.window_comparisons);
    json.KeyValue("merge_comparisons", s.merge_comparisons);
    json.KeyValue("batch_comparisons", s.batch_comparisons);
    json.KeyValue("window_blocks_pruned", s.window_blocks_pruned);
    json.KeyValue("merge_blocks_pruned", s.merge_blocks_pruned);
    json.KeyValue("partition_scheme", s.partition_scheme);
    json.KeyValue("merge_candidates", s.merge_candidates);
    json.KeyValue("representative_prunes", s.representative_prunes);
    json.KeyValue("cascade_levels", s.cascade_levels);
    json.KeyValue("scan_avg_busy_workers", s.scan_avg_busy_workers);
    json.KeyValue("merge_avg_busy_workers", s.merge_avg_busy_workers);
    json.KeyValue("scan_merge_overlap_seconds", s.scan_merge_overlap_seconds);
    json.KeyValue("table_zone_blocks_pruned", s.table_zone_blocks_pruned);
    json.KeyValue("column_file_blocks_read", s.column_file_blocks_read);
    json.KeyValue("dict_probe_hits", s.dict_probe_hits);
    json.KeyValue("zone_map_source", s.zone_map_source);
    json.KeyValue("dominance_kernel", s.dominance_kernel);
    json.KeyValue(
        "comparisons_per_sec",
        static_cast<uint64_t>(r.wall_seconds > 0
                                  ? static_cast<double>(s.window_comparisons) /
                                        r.wall_seconds
                                  : 0));
    json.KeyValue("output_rows", s.output_rows);
    // The versioned observability artifact for the winning repetition:
    // full stats, aggregated metrics, and the trace span log.
    RunReport report;
    report.tool = "parallel_sfs_bench";
    report.algorithm = "sfs";
    report.stats = s;
    report.wall_seconds = r.wall_seconds;
    report.numbers.emplace_back(
        "threads_requested", static_cast<double>(r.threads_requested));
    report.metrics = r.metrics.get();
    report.trace = r.trace.get();
    json.Key("report");
    AppendRunReportObject(&json, report);
    json.EndObject();
  }
  json.EndArray();
  json.Key("mixed_workload");
  json.BeginObject();
  json.KeyValue("rows", mixed.row_count());
  json.KeyValue("dimensions", kMixedDims);
  json.KeyValue("attribute_types", "f64,f64,i64,i64,i32");
  json.KeyValue("payload_diff", "dict60");
  json.KeyValue("threads", static_cast<uint64_t>(mixed_threads));
  if (mixed_results.size() == 2 && mixed_results[1].wall_seconds > 0) {
    json.KeyValue("row_over_columnar_speedup",
                  mixed_results[0].wall_seconds /
                      mixed_results[1].wall_seconds);
  }
  json.Key("runs");
  json.BeginArray();
  for (const MixedResult& r : mixed_results) {
    const SkylineRunStats& s = r.stats;
    json.BeginObject();
    json.KeyValue("kernel_mode", r.kernel_mode);
    json.KeyValue("dominance_kernel", s.dominance_kernel);
    json.KeyValue("wall_seconds", r.wall_seconds);
    json.KeyValue("rows_per_sec",
                  static_cast<uint64_t>(mixed.row_count() / r.wall_seconds));
    json.KeyValue("filter_seconds", s.filter_seconds);
    json.KeyValue("window_comparisons", s.window_comparisons);
    json.KeyValue("batch_comparisons", s.batch_comparisons);
    json.KeyValue("window_blocks_pruned", s.window_blocks_pruned);
    json.KeyValue("dict_probe_hits", s.dict_probe_hits);
    json.KeyValue("output_rows", s.output_rows);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (run_index && index_table != nullptr) {
    json.Key("index");
    json.BeginObject();
    json.KeyValue("distribution", "correlated");
    json.KeyValue("dimensions", kDims);
    json.KeyValue("rows", index_table->row_count());
    json.KeyValue("total_blocks", index_total_blocks);
    json.KeyValue("cluster_seconds", index_cluster_seconds);
    json.KeyValue("column_file_build_seconds", index_column_file_seconds);
    json.KeyValue("index_build_seconds", index_build_seconds);
    if (index_results.size() == 2 && index_results[1].wall_seconds > 0) {
      json.KeyValue("sfs_over_bbs_speedup",
                    index_results[0].wall_seconds /
                        index_results[1].wall_seconds);
    }
    json.Key("runs");
    json.BeginArray();
    for (const IndexResult& r : index_results) {
      const SkylineRunStats& s = r.stats;
      json.BeginObject();
      json.KeyValue("algorithm", r.algorithm);
      json.KeyValue("wall_seconds", r.wall_seconds);
      json.KeyValue("rows_per_sec",
                    static_cast<uint64_t>(index_table->row_count() /
                                          r.wall_seconds));
      json.KeyValue("index_nodes_visited", s.index_nodes_visited);
      json.KeyValue("index_blocks_skipped", s.index_blocks_skipped);
      json.KeyValue("heap_peak", s.heap_peak);
      if (index_total_blocks > 0) {
        json.KeyValue("blocks_skipped_fraction",
                      static_cast<double>(s.index_blocks_skipped) /
                          static_cast<double>(index_total_blocks));
      }
      json.KeyValue("window_comparisons", s.window_comparisons);
      json.KeyValue("output_rows", s.output_rows);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  if (run_schemes) {
    const uint64_t all_pairs_merge = scheme_results.front().stats.merge_comparisons;
    json.Key("partition_schemes");
    json.BeginObject();
    json.KeyValue("simulated_shards", static_cast<uint64_t>(kSimulatedShards));
    json.KeyValue("note",
                  "shards are simulated (forced block count); "
                  "merge-work counters are partition effects, wall times "
                  "are not speedup figures");
    json.KeyValue("all_pairs_merge_comparisons", all_pairs_merge);
    json.Key("runs");
    json.BeginArray();
    for (const SchemeResult& r : scheme_results) {
      const SkylineRunStats& s = r.stats;
      json.BeginObject();
      json.KeyValue("scheme", r.scheme);
      json.KeyValue("merge_mode", r.merge_mode);
      json.KeyValue("wall_seconds", r.wall_seconds);
      json.KeyValue("merge_candidates", s.merge_candidates);
      json.KeyValue("merge_comparisons", s.merge_comparisons);
      json.KeyValue("batch_comparisons", s.batch_comparisons);
      json.KeyValue("merge_blocks_pruned", s.merge_blocks_pruned);
      json.KeyValue("representative_prunes", s.representative_prunes);
      json.KeyValue("cascade_levels", s.cascade_levels);
      json.KeyValue("scan_avg_busy_workers", s.scan_avg_busy_workers);
      json.KeyValue("merge_avg_busy_workers", s.merge_avg_busy_workers);
      json.KeyValue("scan_merge_overlap_seconds",
                    s.scan_merge_overlap_seconds);
      json.KeyValue("dict_probe_hits", s.dict_probe_hits);
      json.KeyValue("output_rows", s.output_rows);
      json.KeyValue("byte_identical_to_baseline", r.byte_identical);
      if (s.merge_comparisons > 0) {
        json.KeyValue("merge_reduction_vs_all_pairs",
                      static_cast<double>(all_pairs_merge) /
                          static_cast<double>(s.merge_comparisons));
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  out << json.TakeString();
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace skyline

int main(int argc, char** argv) { return skyline::bench::Main(argc, argv); }
