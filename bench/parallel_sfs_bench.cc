// Machine-readable benchmark for the parallel SFS engine.
//
// Runs the full SFS computation (presort + filter) over an anti-correlated
// 5-dimensional table at each thread count and writes one JSON document —
// BENCH_sfs.json by default — so CI and scripts can track rows/sec without
// scraping human-oriented benchmark output. The document carries
// "schema_version" and embeds a full RunReport (stats + metrics + trace
// spans) per run alongside the original flat keys.
//
// Usage: parallel_sfs_bench [output.json]
//   SKYLINE_BENCH_SCALE=10   paper-scale table (1M rows)
//   SKYLINE_BENCH_THREADS=1,2,4,8   thread counts to sweep
//   SKYLINE_BENCH_REPS=3     repetitions per config (best wall time wins)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"

namespace skyline {
namespace bench {
namespace {

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts;
  if (const char* s = std::getenv("SKYLINE_BENCH_THREADS")) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const long v = std::atol(item.c_str());
      if (v > 0) counts.push_back(static_cast<size_t>(v));
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

int Reps() {
  if (const char* s = std::getenv("SKYLINE_BENCH_REPS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<int>(v);
  }
  return 3;
}

struct RunResult {
  size_t threads_requested = 0;
  SkylineRunStats stats;
  double wall_seconds = 0;
  /// Telemetry from the winning repetition, embedded into its RunReport.
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<TraceSink> trace;
};

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sfs.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  constexpr int kDims = 5;
  const Table& table =
      DistributionTableDims(Distribution::kAntiCorrelated, kDims);
  const SkylineSpec spec = MaxSpec(table, kDims);
  const int reps = Reps();

  std::vector<RunResult> results;
  for (size_t threads : ThreadCounts()) {
    RunResult best;
    best.threads_requested = threads;
    best.wall_seconds = -1;
    for (int rep = 0; rep < reps; ++rep) {
      SkylineComputeOptions options;
      options.sfs.threads = threads;
      auto metrics = std::make_unique<MetricsRegistry>();
      auto trace = std::make_unique<TraceSink>();
      ExecContext ctx;
      ctx.metrics = metrics.get();
      ctx.trace = trace.get();
      SkylineRunStats stats;
      const auto start = std::chrono::steady_clock::now();
      auto result = ComputeSkyline(SkylineAlgorithm::kSfs, table, spec, ctx,
                                   "bench_psfs_out", &stats, options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SKYLINE_CHECK(result.ok()) << result.status().ToString();
      if (best.wall_seconds < 0 || wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.stats = stats;
        best.metrics = std::move(metrics);
        best.trace = std::move(trace);
      }
    }
    std::cerr << "threads=" << threads << " wall=" << best.wall_seconds
              << "s rows/s="
              << static_cast<uint64_t>(table.row_count() / best.wall_seconds)
              << " skyline=" << best.stats.output_rows << "\n";
    results.push_back(std::move(best));
  }

  JsonWriter json;
  json.BeginObject();
  json.KeyValue("schema_version", RunReport::kSchemaVersion);
  json.KeyValue("benchmark", "parallel_sfs");
  json.KeyValue("distribution", "anti_correlated");
  json.KeyValue("dimensions", kDims);
  json.KeyValue("rows", table.row_count());
  json.KeyValue("repetitions", reps);
  json.KeyValue("hardware_threads", std::thread::hardware_concurrency());
  json.Key("runs");
  json.BeginArray();
  for (const RunResult& r : results) {
    const SkylineRunStats& s = r.stats;
    json.BeginObject();
    json.KeyValue("threads", static_cast<uint64_t>(r.threads_requested));
    json.KeyValue("threads_used", static_cast<uint64_t>(s.threads_used));
    json.KeyValue("sort_threads_used",
                  static_cast<uint64_t>(s.sort_stats.threads_used));
    json.KeyValue("wall_seconds", r.wall_seconds);
    json.KeyValue("rows_per_sec",
                  static_cast<uint64_t>(table.row_count() / r.wall_seconds));
    json.KeyValue("sort_seconds", s.sort_seconds);
    json.KeyValue("filter_seconds", s.filter_seconds);
    json.KeyValue("block_scan_seconds", s.block_scan_seconds);
    json.KeyValue("block_merge_seconds", s.block_merge_seconds);
    json.KeyValue("passes", s.passes);
    json.KeyValue("window_comparisons", s.window_comparisons);
    json.KeyValue("merge_comparisons", s.merge_comparisons);
    json.KeyValue("batch_comparisons", s.batch_comparisons);
    json.KeyValue("window_blocks_pruned", s.window_blocks_pruned);
    json.KeyValue("merge_blocks_pruned", s.merge_blocks_pruned);
    json.KeyValue("dominance_kernel", s.dominance_kernel);
    json.KeyValue(
        "comparisons_per_sec",
        static_cast<uint64_t>(r.wall_seconds > 0
                                  ? static_cast<double>(s.window_comparisons) /
                                        r.wall_seconds
                                  : 0));
    json.KeyValue("output_rows", s.output_rows);
    // The versioned observability artifact for the winning repetition:
    // full stats, aggregated metrics, and the trace span log.
    RunReport report;
    report.tool = "parallel_sfs_bench";
    report.algorithm = "sfs";
    report.stats = s;
    report.wall_seconds = r.wall_seconds;
    report.numbers.emplace_back(
        "threads_requested", static_cast<double>(r.threads_requested));
    report.metrics = r.metrics.get();
    report.trace = r.trace.get();
    json.Key("report");
    AppendRunReportObject(&json, report);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  out << json.TakeString();
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace skyline

int main(int argc, char** argv) { return skyline::bench::Main(argc, argv); }
