// Machine-readable benchmark for the parallel SFS engine.
//
// Runs the full SFS computation (presort + filter) over an anti-correlated
// 5-dimensional table at each thread count and writes one JSON document —
// BENCH_sfs.json by default — so CI and scripts can track rows/sec without
// scraping human-oriented benchmark output.
//
// Usage: parallel_sfs_bench [output.json]
//   SKYLINE_BENCH_SCALE=10   paper-scale table (1M rows)
//   SKYLINE_BENCH_THREADS=1,2,4,8   thread counts to sweep
//   SKYLINE_BENCH_REPS=3     repetitions per config (best wall time wins)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"

namespace skyline {
namespace bench {
namespace {

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts;
  if (const char* s = std::getenv("SKYLINE_BENCH_THREADS")) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const long v = std::atol(item.c_str());
      if (v > 0) counts.push_back(static_cast<size_t>(v));
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

int Reps() {
  if (const char* s = std::getenv("SKYLINE_BENCH_REPS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<int>(v);
  }
  return 3;
}

struct RunResult {
  size_t threads_requested = 0;
  SkylineRunStats stats;
  double wall_seconds = 0;
};

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sfs.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  constexpr int kDims = 5;
  const Table& table =
      DistributionTableDims(Distribution::kAntiCorrelated, kDims);
  const SkylineSpec spec = MaxSpec(table, kDims);
  const int reps = Reps();

  std::vector<RunResult> results;
  for (size_t threads : ThreadCounts()) {
    RunResult best;
    best.threads_requested = threads;
    best.wall_seconds = -1;
    for (int rep = 0; rep < reps; ++rep) {
      SfsOptions options;
      options.threads = threads;
      SkylineRunStats stats;
      const auto start = std::chrono::steady_clock::now();
      auto result = ComputeSkylineSfs(table, spec, options,
                                      "bench_psfs_out", &stats);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SKYLINE_CHECK(result.ok()) << result.status().ToString();
      if (best.wall_seconds < 0 || wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.stats = stats;
      }
    }
    std::cerr << "threads=" << threads << " wall=" << best.wall_seconds
              << "s rows/s="
              << static_cast<uint64_t>(table.row_count() / best.wall_seconds)
              << " skyline=" << best.stats.output_rows << "\n";
    results.push_back(best);
  }

  out << "{\n"
      << "  \"benchmark\": \"parallel_sfs\",\n"
      << "  \"distribution\": \"anti_correlated\",\n"
      << "  \"dimensions\": " << kDims << ",\n"
      << "  \"rows\": " << table.row_count() << ",\n"
      << "  \"repetitions\": " << reps << ",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const SkylineRunStats& s = r.stats;
    out << "    {\n"
        << "      \"threads\": " << r.threads_requested << ",\n"
        << "      \"threads_used\": " << s.threads_used << ",\n"
        << "      \"sort_threads_used\": " << s.sort_stats.threads_used
        << ",\n"
        << "      \"wall_seconds\": " << r.wall_seconds << ",\n"
        << "      \"rows_per_sec\": "
        << static_cast<uint64_t>(table.row_count() / r.wall_seconds) << ",\n"
        << "      \"sort_seconds\": " << s.sort_seconds << ",\n"
        << "      \"filter_seconds\": " << s.filter_seconds << ",\n"
        << "      \"block_scan_seconds\": " << s.block_scan_seconds << ",\n"
        << "      \"block_merge_seconds\": " << s.block_merge_seconds << ",\n"
        << "      \"passes\": " << s.passes << ",\n"
        << "      \"window_comparisons\": " << s.window_comparisons << ",\n"
        << "      \"merge_comparisons\": " << s.merge_comparisons << ",\n"
        << "      \"batch_comparisons\": " << s.batch_comparisons << ",\n"
        << "      \"window_blocks_pruned\": " << s.window_blocks_pruned
        << ",\n"
        << "      \"merge_blocks_pruned\": " << s.merge_blocks_pruned << ",\n"
        << "      \"dominance_kernel\": \"" << s.dominance_kernel << "\",\n"
        << "      \"comparisons_per_sec\": "
        << static_cast<uint64_t>(
               r.wall_seconds > 0
                   ? static_cast<double>(s.window_comparisons) / r.wall_seconds
                   : 0)
        << ",\n"
        << "      \"output_rows\": " << s.output_rows << "\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace skyline

int main(int argc, char** argv) { return skyline::bench::Main(argc, argv); }
