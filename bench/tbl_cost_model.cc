// Optimizer validation table (paper Section 6: skyline needs a
// cardinality estimator and a cost model to live inside a query
// optimizer). For each window allocation this bench reports the cost
// model's *predicted* passes and spill bound next to the measured run —
// the pass prediction should be exact-or-off-by-one (it is exact given
// the true skyline cardinality; the residual error is the cardinality
// estimator's).

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void BM_CostModelVsMeasured(::benchmark::State& state) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  SfsOptions options;
  options.window_pages = static_cast<size_t>(state.range(1));
  options.use_projection = false;

  const SfsCostEstimate estimate =
      EstimateSfsCost(table.row_count(), spec, options);
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, options, ExecContext(), "tbl_cost_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  state.counters["pred_sky"] = estimate.skyline_cardinality;
  state.counters["pred_passes"] = static_cast<double>(estimate.passes);
  state.counters["pred_spill_bound"] = estimate.spilled_tuples_bound;
  state.counters["pred_extra_pages_bound"] = estimate.extra_pages_bound;
  state.counters["passes_exact_given_sky"] = static_cast<double>(
      SfsPassesForSkyline(stats.output_rows, estimate.window_capacity));
}

void Args(::benchmark::internal::Benchmark* b) {
  for (int dims : {4, 5, 6, 7}) {
    for (int pages : {1, 2, 8, 32}) b->Args({dims, pages});
  }
  b->Unit(::benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_CostModelVsMeasured)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
