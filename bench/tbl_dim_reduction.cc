// Section 5 dimensional reduction: with attribute domains 0..9 and a
// 4-dimensional skyline, the paper's GROUP BY / MAX pre-pass shrinks the
// 1M-tuple table to 99,826 tuples (~10%), so the SFS filter runs on a 10%
// input. This bench reproduces the reduction ratio and compares full SFS
// against dimensional-reduction-then-SFS (the reduced output is already in
// nested order, so the second phase runs with Presort::kNone).

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void BM_DimReduction(::benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const Table& table = SmallDomainTable(dims);
  SkylineSpec spec = MaxSpec(table, dims);
  DimReduceStats stats;
  for (auto _ : state) {
    auto result = DimensionalReduction(table, spec, SortOptions{},
                                       ExecContext(),
                                       "tbl_dimred_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  state.counters["input_rows"] = static_cast<double>(stats.input_rows);
  state.counters["reduced_rows"] = static_cast<double>(stats.output_rows);
  state.counters["ratio"] = stats.ReductionRatio();
}

void BM_SfsDirect(::benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const Table& table = SmallDomainTable(dims);
  SkylineSpec spec = MaxSpec(table, dims);
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result = ComputeSkylineSfs(table, spec, SfsOptions{},
                                    ExecContext(),
                                    "tbl_dimred_direct", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
}

void BM_SfsAfterReduction(::benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const Table& table = SmallDomainTable(dims);
  SkylineSpec spec = MaxSpec(table, dims);
  SkylineRunStats stats;
  DimReduceStats red_stats;
  for (auto _ : state) {
    auto reduced = DimensionalReduction(table, spec, SortOptions{},
                                        ExecContext(),
                                        "tbl_dimred_red", &red_stats);
    SKYLINE_CHECK(reduced.ok()) << reduced.status().ToString();
    SfsOptions options;
    options.presort = Presort::kNone;  // reduction output is nested-sorted
    auto result = ComputeSkylineSfs(*reduced, spec, options,
                                    ExecContext(),
                                    "tbl_dimred_sky", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  state.counters["reduced_rows"] = static_cast<double>(red_stats.output_rows);
}

BENCHMARK(BM_DimReduction)
    ->Arg(4)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SfsDirect)->Arg(4)->Unit(::benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SfsAfterReduction)
    ->Arg(4)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
