// Incremental maintenance microbenchmark (paper Section 2's index-
// fragility discussion): cost of keeping a skyline current under a stream
// of inserts, including the "single insertion that dominates the current
// skyline" event the paper calls out — cheap here (one O(|skyline|)
// eviction sweep), versus the recompute a precomputed skyline index would
// need. Counters report the final skyline size and total evictions.

#include <cstring>
#include <limits>

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void BM_MaintainInsertStream(::benchmark::State& state) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  std::vector<char> rows;
  SKYLINE_CHECK_OK(table.ReadAllRows(&rows));
  const size_t width = table.schema().row_width();

  uint64_t final_size = 0;
  uint64_t evictions = 0;
  for (auto _ : state) {
    SkylineMaintainer maintainer(&spec);
    for (uint64_t i = 0; i < table.row_count(); ++i) {
      maintainer.Insert(rows.data() + i * width);
    }
    final_size = maintainer.size();
    evictions = maintainer.evictions();
  }
  state.counters["skyline"] = static_cast<double>(final_size);
  state.counters["evictions"] = static_cast<double>(evictions);
  state.counters["inserts_per_s"] = ::benchmark::Counter(
      static_cast<double>(table.row_count()),
      ::benchmark::Counter::kIsIterationInvariantRate);
}

void BM_DominatingInsertEvent(::benchmark::State& state) {
  // The paper's invalidation event: insert a tuple beating everything.
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  std::vector<char> rows;
  SKYLINE_CHECK_OK(table.ReadAllRows(&rows));
  const size_t width = table.schema().row_width();
  SkylineMaintainer maintainer(&spec);
  for (uint64_t i = 0; i < table.row_count(); ++i) {
    maintainer.Insert(rows.data() + i * width);
  }
  std::vector<char> champion(width, 0);
  const int32_t top = std::numeric_limits<int32_t>::max();
  for (const auto& vc : spec.value_columns()) {
    std::memcpy(champion.data() + spec.schema().offset(vc.column), &top, 4);
  }
  for (auto _ : state) {
    SkylineMaintainer copy = maintainer;  // measure the event on a fresh set
    copy.Insert(champion.data());
    ::benchmark::DoNotOptimize(copy.size());
  }
  state.counters["evicted_members"] =
      static_cast<double>(maintainer.size());
}

BENCHMARK(BM_MaintainInsertStream)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_DominatingInsertEvent)
    ->Arg(5)
    ->Arg(7)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
