// Section 5 reported skyline sizes: the paper's 1M-tuple table yields
// 1,651 / 5,357 / 14,081 skyline tuples at 5 / 6 / 7 dimensions. This
// bench measures the observed skyline size per dimensionality and compares
// it with the cardinality estimator (exact expected-maxima recurrence and
// the (ln n)^{d-1}/(d-1)! asymptotic) — footnote 2 and the optimizer
// discussion of Section 6.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void BM_SkylineSize(::benchmark::State& state) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  SkylineRunStats stats;
  for (auto _ : state) {
    auto result =
        ComputeSkylineSfs(table, spec, SfsOptions{}, ExecContext(), "tbl_sizes_out", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportRunStats(state, stats);
  state.counters["estimate_exact"] =
      ExpectedSkylineSize(table.row_count(), dims);
  state.counters["estimate_asym"] =
      SkylineSizeAsymptotic(table.row_count(), dims);
}

BENCHMARK(BM_SkylineSize)
    ->DenseRange(2, 8, 1)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
