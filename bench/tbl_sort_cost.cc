// Section 5 presort cost: the paper sorts 1M tuples with a 1,000-page
// buffer in 57 s for the 7-attribute nested sort vs 37 s for the
// single-key entropy sort — single-attribute sorting is cheaper. This
// bench times both presorts alone (no filtering) on the paper-shaped
// table. Expected shape: entropy < nested.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

constexpr int kDims = 7;

void RunSort(::benchmark::State& state, const RowOrdering& ordering) {
  const Table& table = PaperTable();
  SortStats stats;
  for (auto _ : state) {
    TempFileManager temp_files(BenchEnv(), "tbl_sort_tmp");
    SortOptions options;  // 1,000 buffer pages, as in the paper
    auto result =
        SortHeapFile(BenchEnv(), &temp_files, table.path(),
                     table.schema().row_width(), ordering, options, ExecContext(), &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  state.counters["runs"] = static_cast<double>(stats.runs_generated);
  state.counters["merge_levels"] = static_cast<double>(stats.merge_levels);
  state.counters["sort_io_pages"] = static_cast<double>(stats.io.TotalPages());
}

void BM_NestedSort(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  auto ordering = MakeNestedSkylineOrdering(spec);
  RunSort(state, *ordering);
}

void BM_EntropySort(::benchmark::State& state) {
  const Table& table = PaperTable();
  SkylineSpec spec = MaxSpec(table, kDims);
  EntropyOrdering ordering(&spec, table);
  RunSort(state, ordering);
}

BENCHMARK(BM_NestedSort)->Unit(::benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_EntropySort)->Unit(::benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
