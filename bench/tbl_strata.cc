// Section 5 strata: with a 500-page window, the paper computes the first
// four strata of the 4-dimensional skyline (sizes 460 / 1,430 / 2,766 /
// 4,444) in 118 s, and of the 5-dimensional skyline (1,651 / 5,749 /
// 11,879 / 19,020) in 723 s. This bench runs the multi-window SFS strata
// adaptation at both dimensionalities and reports per-stratum sizes;
// expected shape: sizes grow with depth, 5-dim strata several times larger
// than 4-dim, cost dominated by the deeper windows. The iterative
// labeller is measured alongside as the unbounded-stratum alternative.

#include "bench_common.h"

namespace skyline {
namespace bench {
namespace {

void ReportStrata(::benchmark::State& state, const StrataStats& stats) {
  for (size_t i = 0; i < stats.stratum_sizes.size(); ++i) {
    state.counters["s" + std::to_string(i)] =
        static_cast<double>(stats.stratum_sizes[i]);
  }
  state.counters["sort_s"] = stats.sort_seconds;
  state.counters["filter_s"] = stats.filter_seconds;
  state.counters["dom_cmp"] = static_cast<double>(stats.window_comparisons);
}

void BM_StrataMultiWindow(::benchmark::State& state) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  StrataOptions options;
  options.num_strata = 4;
  options.window_pages = 500;  // the paper's allocation
  StrataStats stats;
  for (auto _ : state) {
    auto result = ComputeStrataSfs(table, spec, options, ExecContext(), "tbl_strata", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportStrata(state, stats);
}

void BM_StrataIterative(::benchmark::State& state) {
  const Table& table = PaperTable();
  const int dims = static_cast<int>(state.range(0));
  SkylineSpec spec = MaxSpec(table, dims);
  SfsOptions sfs_options;
  sfs_options.window_pages = 500;
  StrataStats stats;
  for (auto _ : state) {
    auto result = LabelStrataIterative(table, spec, sfs_options, ExecContext(), 4,
                                       "tbl_strata_it", &stats);
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
  }
  ReportStrata(state, stats);
}

BENCHMARK(BM_StrataMultiWindow)
    ->Arg(4)
    ->Arg(5)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_StrataIterative)
    ->Arg(4)
    ->Arg(5)
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace skyline

BENCHMARK_MAIN();
