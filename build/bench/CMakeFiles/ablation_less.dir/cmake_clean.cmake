file(REMOVE_RECURSE
  "CMakeFiles/ablation_less.dir/ablation_less.cc.o"
  "CMakeFiles/ablation_less.dir/ablation_less.cc.o.d"
  "ablation_less"
  "ablation_less.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_less.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
