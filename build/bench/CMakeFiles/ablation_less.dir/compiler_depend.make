# Empty compiler generated dependencies file for ablation_less.
# This may be replaced when dependencies are built.
