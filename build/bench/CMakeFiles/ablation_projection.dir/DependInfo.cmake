
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_projection.cc" "bench/CMakeFiles/ablation_projection.dir/ablation_projection.cc.o" "gcc" "bench/CMakeFiles/ablation_projection.dir/ablation_projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/skyline_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
