file(REMOVE_RECURSE
  "CMakeFiles/ablation_projection.dir/ablation_projection.cc.o"
  "CMakeFiles/ablation_projection.dir/ablation_projection.cc.o.d"
  "ablation_projection"
  "ablation_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
