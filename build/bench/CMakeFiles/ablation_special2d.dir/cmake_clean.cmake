file(REMOVE_RECURSE
  "CMakeFiles/ablation_special2d.dir/ablation_special2d.cc.o"
  "CMakeFiles/ablation_special2d.dir/ablation_special2d.cc.o.d"
  "ablation_special2d"
  "ablation_special2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_special2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
