# Empty compiler generated dependencies file for ablation_special2d.
# This may be replaced when dependencies are built.
