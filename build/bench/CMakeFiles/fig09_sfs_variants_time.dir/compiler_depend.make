# Empty compiler generated dependencies file for fig09_sfs_variants_time.
# This may be replaced when dependencies are built.
