# Empty compiler generated dependencies file for fig10_sfs_variants_io.
# This may be replaced when dependencies are built.
