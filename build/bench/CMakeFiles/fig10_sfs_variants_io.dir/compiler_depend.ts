# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_sfs_variants_io.
