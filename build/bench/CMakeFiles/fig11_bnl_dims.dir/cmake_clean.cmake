file(REMOVE_RECURSE
  "CMakeFiles/fig11_bnl_dims.dir/fig11_bnl_dims.cc.o"
  "CMakeFiles/fig11_bnl_dims.dir/fig11_bnl_dims.cc.o.d"
  "fig11_bnl_dims"
  "fig11_bnl_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bnl_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
