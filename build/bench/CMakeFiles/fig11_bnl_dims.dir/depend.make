# Empty dependencies file for fig11_bnl_dims.
# This may be replaced when dependencies are built.
