file(REMOVE_RECURSE
  "CMakeFiles/fig12_sfs_vs_bnl_time_5d.dir/fig12_sfs_vs_bnl_time_5d.cc.o"
  "CMakeFiles/fig12_sfs_vs_bnl_time_5d.dir/fig12_sfs_vs_bnl_time_5d.cc.o.d"
  "fig12_sfs_vs_bnl_time_5d"
  "fig12_sfs_vs_bnl_time_5d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sfs_vs_bnl_time_5d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
