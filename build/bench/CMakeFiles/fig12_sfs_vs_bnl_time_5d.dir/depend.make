# Empty dependencies file for fig12_sfs_vs_bnl_time_5d.
# This may be replaced when dependencies are built.
