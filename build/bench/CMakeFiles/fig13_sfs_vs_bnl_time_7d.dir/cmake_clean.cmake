file(REMOVE_RECURSE
  "CMakeFiles/fig13_sfs_vs_bnl_time_7d.dir/fig13_sfs_vs_bnl_time_7d.cc.o"
  "CMakeFiles/fig13_sfs_vs_bnl_time_7d.dir/fig13_sfs_vs_bnl_time_7d.cc.o.d"
  "fig13_sfs_vs_bnl_time_7d"
  "fig13_sfs_vs_bnl_time_7d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sfs_vs_bnl_time_7d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
