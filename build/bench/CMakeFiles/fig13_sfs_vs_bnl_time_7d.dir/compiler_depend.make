# Empty compiler generated dependencies file for fig13_sfs_vs_bnl_time_7d.
# This may be replaced when dependencies are built.
