# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig13_sfs_vs_bnl_time_7d.
