file(REMOVE_RECURSE
  "CMakeFiles/fig14_sfs_vs_bnl_io_5d.dir/fig14_sfs_vs_bnl_io_5d.cc.o"
  "CMakeFiles/fig14_sfs_vs_bnl_io_5d.dir/fig14_sfs_vs_bnl_io_5d.cc.o.d"
  "fig14_sfs_vs_bnl_io_5d"
  "fig14_sfs_vs_bnl_io_5d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sfs_vs_bnl_io_5d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
