# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_sfs_vs_bnl_io_5d.
