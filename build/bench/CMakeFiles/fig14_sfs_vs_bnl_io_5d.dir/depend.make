# Empty dependencies file for fig14_sfs_vs_bnl_io_5d.
# This may be replaced when dependencies are built.
