file(REMOVE_RECURSE
  "CMakeFiles/fig15_sfs_vs_bnl_io_7d.dir/fig15_sfs_vs_bnl_io_7d.cc.o"
  "CMakeFiles/fig15_sfs_vs_bnl_io_7d.dir/fig15_sfs_vs_bnl_io_7d.cc.o.d"
  "fig15_sfs_vs_bnl_io_7d"
  "fig15_sfs_vs_bnl_io_7d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sfs_vs_bnl_io_7d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
