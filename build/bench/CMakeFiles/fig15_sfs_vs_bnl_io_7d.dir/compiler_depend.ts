# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig15_sfs_vs_bnl_io_7d.
