# Empty dependencies file for fig15_sfs_vs_bnl_io_7d.
# This may be replaced when dependencies are built.
