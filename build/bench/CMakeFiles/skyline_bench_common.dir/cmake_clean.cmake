file(REMOVE_RECURSE
  "CMakeFiles/skyline_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/skyline_bench_common.dir/bench_common.cc.o.d"
  "libskyline_bench_common.a"
  "libskyline_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
