file(REMOVE_RECURSE
  "libskyline_bench_common.a"
)
