# Empty compiler generated dependencies file for skyline_bench_common.
# This may be replaced when dependencies are built.
