file(REMOVE_RECURSE
  "CMakeFiles/tbl_cost_model.dir/tbl_cost_model.cc.o"
  "CMakeFiles/tbl_cost_model.dir/tbl_cost_model.cc.o.d"
  "tbl_cost_model"
  "tbl_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
