file(REMOVE_RECURSE
  "CMakeFiles/tbl_dim_reduction.dir/tbl_dim_reduction.cc.o"
  "CMakeFiles/tbl_dim_reduction.dir/tbl_dim_reduction.cc.o.d"
  "tbl_dim_reduction"
  "tbl_dim_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_dim_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
