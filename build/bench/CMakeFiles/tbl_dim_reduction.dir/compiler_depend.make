# Empty compiler generated dependencies file for tbl_dim_reduction.
# This may be replaced when dependencies are built.
