file(REMOVE_RECURSE
  "CMakeFiles/tbl_maintenance.dir/tbl_maintenance.cc.o"
  "CMakeFiles/tbl_maintenance.dir/tbl_maintenance.cc.o.d"
  "tbl_maintenance"
  "tbl_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
