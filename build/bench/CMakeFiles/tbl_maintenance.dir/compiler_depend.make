# Empty compiler generated dependencies file for tbl_maintenance.
# This may be replaced when dependencies are built.
