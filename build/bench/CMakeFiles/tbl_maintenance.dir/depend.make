# Empty dependencies file for tbl_maintenance.
# This may be replaced when dependencies are built.
