file(REMOVE_RECURSE
  "CMakeFiles/tbl_skyline_sizes.dir/tbl_skyline_sizes.cc.o"
  "CMakeFiles/tbl_skyline_sizes.dir/tbl_skyline_sizes.cc.o.d"
  "tbl_skyline_sizes"
  "tbl_skyline_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_skyline_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
