# Empty compiler generated dependencies file for tbl_skyline_sizes.
# This may be replaced when dependencies are built.
