file(REMOVE_RECURSE
  "CMakeFiles/tbl_sort_cost.dir/tbl_sort_cost.cc.o"
  "CMakeFiles/tbl_sort_cost.dir/tbl_sort_cost.cc.o.d"
  "tbl_sort_cost"
  "tbl_sort_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_sort_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
