# Empty dependencies file for tbl_sort_cost.
# This may be replaced when dependencies are built.
