file(REMOVE_RECURSE
  "CMakeFiles/tbl_strata.dir/tbl_strata.cc.o"
  "CMakeFiles/tbl_strata.dir/tbl_strata.cc.o.d"
  "tbl_strata"
  "tbl_strata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_strata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
