# Empty compiler generated dependencies file for tbl_strata.
# This may be replaced when dependencies are built.
