file(REMOVE_RECURSE
  "CMakeFiles/csv_skyline.dir/csv_skyline.cpp.o"
  "CMakeFiles/csv_skyline.dir/csv_skyline.cpp.o.d"
  "csv_skyline"
  "csv_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
