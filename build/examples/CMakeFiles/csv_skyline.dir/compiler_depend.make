# Empty compiler generated dependencies file for csv_skyline.
# This may be replaced when dependencies are built.
