file(REMOVE_RECURSE
  "CMakeFiles/top_n_pipeline.dir/top_n_pipeline.cpp.o"
  "CMakeFiles/top_n_pipeline.dir/top_n_pipeline.cpp.o.d"
  "top_n_pipeline"
  "top_n_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/top_n_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
