# Empty compiler generated dependencies file for top_n_pipeline.
# This may be replaced when dependencies are built.
