file(REMOVE_RECURSE
  "CMakeFiles/skyline_common.dir/common/logging.cc.o"
  "CMakeFiles/skyline_common.dir/common/logging.cc.o.d"
  "CMakeFiles/skyline_common.dir/common/random.cc.o"
  "CMakeFiles/skyline_common.dir/common/random.cc.o.d"
  "CMakeFiles/skyline_common.dir/common/status.cc.o"
  "CMakeFiles/skyline_common.dir/common/status.cc.o.d"
  "libskyline_common.a"
  "libskyline_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
