file(REMOVE_RECURSE
  "libskyline_common.a"
)
