# Empty compiler generated dependencies file for skyline_common.
# This may be replaced when dependencies are built.
