
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bnl.cc" "src/CMakeFiles/skyline_core.dir/core/bnl.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/bnl.cc.o.d"
  "/root/repo/src/core/cardinality.cc" "src/CMakeFiles/skyline_core.dir/core/cardinality.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/cardinality.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/skyline_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/dim_reduce.cc" "src/CMakeFiles/skyline_core.dir/core/dim_reduce.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/dim_reduce.cc.o.d"
  "/root/repo/src/core/divide_conquer.cc" "src/CMakeFiles/skyline_core.dir/core/divide_conquer.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/divide_conquer.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/CMakeFiles/skyline_core.dir/core/dominance.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/dominance.cc.o.d"
  "/root/repo/src/core/less.cc" "src/CMakeFiles/skyline_core.dir/core/less.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/less.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/CMakeFiles/skyline_core.dir/core/maintenance.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/maintenance.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/CMakeFiles/skyline_core.dir/core/naive.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/naive.cc.o.d"
  "/root/repo/src/core/scoring.cc" "src/CMakeFiles/skyline_core.dir/core/scoring.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/scoring.cc.o.d"
  "/root/repo/src/core/sfs.cc" "src/CMakeFiles/skyline_core.dir/core/sfs.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/sfs.cc.o.d"
  "/root/repo/src/core/skyline_spec.cc" "src/CMakeFiles/skyline_core.dir/core/skyline_spec.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/skyline_spec.cc.o.d"
  "/root/repo/src/core/special2d.cc" "src/CMakeFiles/skyline_core.dir/core/special2d.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/special2d.cc.o.d"
  "/root/repo/src/core/special3d.cc" "src/CMakeFiles/skyline_core.dir/core/special3d.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/special3d.cc.o.d"
  "/root/repo/src/core/strata.cc" "src/CMakeFiles/skyline_core.dir/core/strata.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/strata.cc.o.d"
  "/root/repo/src/core/window.cc" "src/CMakeFiles/skyline_core.dir/core/window.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/window.cc.o.d"
  "/root/repo/src/core/winnow.cc" "src/CMakeFiles/skyline_core.dir/core/winnow.cc.o" "gcc" "src/CMakeFiles/skyline_core.dir/core/winnow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyline_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
