file(REMOVE_RECURSE
  "libskyline_core.a"
)
