# Empty dependencies file for skyline_core.
# This may be replaced when dependencies are built.
