file(REMOVE_RECURSE
  "CMakeFiles/skyline_env.dir/env/env.cc.o"
  "CMakeFiles/skyline_env.dir/env/env.cc.o.d"
  "CMakeFiles/skyline_env.dir/env/mem_env.cc.o"
  "CMakeFiles/skyline_env.dir/env/mem_env.cc.o.d"
  "CMakeFiles/skyline_env.dir/env/posix_env.cc.o"
  "CMakeFiles/skyline_env.dir/env/posix_env.cc.o.d"
  "libskyline_env.a"
  "libskyline_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
