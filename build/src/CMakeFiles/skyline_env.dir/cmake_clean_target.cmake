file(REMOVE_RECURSE
  "libskyline_env.a"
)
