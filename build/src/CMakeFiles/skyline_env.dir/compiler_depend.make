# Empty compiler generated dependencies file for skyline_env.
# This may be replaced when dependencies are built.
