
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/limit.cc" "src/CMakeFiles/skyline_exec.dir/exec/limit.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/limit.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/skyline_exec.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/skyline_exec.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/query.cc" "src/CMakeFiles/skyline_exec.dir/exec/query.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/query.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/CMakeFiles/skyline_exec.dir/exec/scan.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/scan.cc.o.d"
  "/root/repo/src/exec/select.cc" "src/CMakeFiles/skyline_exec.dir/exec/select.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/select.cc.o.d"
  "/root/repo/src/exec/skyline_op.cc" "src/CMakeFiles/skyline_exec.dir/exec/skyline_op.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/skyline_op.cc.o.d"
  "/root/repo/src/exec/sort_op.cc" "src/CMakeFiles/skyline_exec.dir/exec/sort_op.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/sort_op.cc.o.d"
  "/root/repo/src/exec/winnow_op.cc" "src/CMakeFiles/skyline_exec.dir/exec/winnow_op.cc.o" "gcc" "src/CMakeFiles/skyline_exec.dir/exec/winnow_op.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
