file(REMOVE_RECURSE
  "CMakeFiles/skyline_exec.dir/exec/limit.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/limit.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/operator.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/operator.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/project.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/project.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/query.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/query.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/scan.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/scan.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/select.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/select.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/skyline_op.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/skyline_op.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/sort_op.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/sort_op.cc.o.d"
  "CMakeFiles/skyline_exec.dir/exec/winnow_op.cc.o"
  "CMakeFiles/skyline_exec.dir/exec/winnow_op.cc.o.d"
  "libskyline_exec.a"
  "libskyline_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
