file(REMOVE_RECURSE
  "libskyline_exec.a"
)
