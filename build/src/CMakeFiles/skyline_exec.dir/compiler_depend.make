# Empty compiler generated dependencies file for skyline_exec.
# This may be replaced when dependencies are built.
