
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/csv.cc" "src/CMakeFiles/skyline_relation.dir/relation/csv.cc.o" "gcc" "src/CMakeFiles/skyline_relation.dir/relation/csv.cc.o.d"
  "/root/repo/src/relation/generator.cc" "src/CMakeFiles/skyline_relation.dir/relation/generator.cc.o" "gcc" "src/CMakeFiles/skyline_relation.dir/relation/generator.cc.o.d"
  "/root/repo/src/relation/histogram.cc" "src/CMakeFiles/skyline_relation.dir/relation/histogram.cc.o" "gcc" "src/CMakeFiles/skyline_relation.dir/relation/histogram.cc.o.d"
  "/root/repo/src/relation/row.cc" "src/CMakeFiles/skyline_relation.dir/relation/row.cc.o" "gcc" "src/CMakeFiles/skyline_relation.dir/relation/row.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/CMakeFiles/skyline_relation.dir/relation/schema.cc.o" "gcc" "src/CMakeFiles/skyline_relation.dir/relation/schema.cc.o.d"
  "/root/repo/src/relation/table.cc" "src/CMakeFiles/skyline_relation.dir/relation/table.cc.o" "gcc" "src/CMakeFiles/skyline_relation.dir/relation/table.cc.o.d"
  "/root/repo/src/relation/table_io.cc" "src/CMakeFiles/skyline_relation.dir/relation/table_io.cc.o" "gcc" "src/CMakeFiles/skyline_relation.dir/relation/table_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyline_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
