file(REMOVE_RECURSE
  "CMakeFiles/skyline_relation.dir/relation/csv.cc.o"
  "CMakeFiles/skyline_relation.dir/relation/csv.cc.o.d"
  "CMakeFiles/skyline_relation.dir/relation/generator.cc.o"
  "CMakeFiles/skyline_relation.dir/relation/generator.cc.o.d"
  "CMakeFiles/skyline_relation.dir/relation/histogram.cc.o"
  "CMakeFiles/skyline_relation.dir/relation/histogram.cc.o.d"
  "CMakeFiles/skyline_relation.dir/relation/row.cc.o"
  "CMakeFiles/skyline_relation.dir/relation/row.cc.o.d"
  "CMakeFiles/skyline_relation.dir/relation/schema.cc.o"
  "CMakeFiles/skyline_relation.dir/relation/schema.cc.o.d"
  "CMakeFiles/skyline_relation.dir/relation/table.cc.o"
  "CMakeFiles/skyline_relation.dir/relation/table.cc.o.d"
  "CMakeFiles/skyline_relation.dir/relation/table_io.cc.o"
  "CMakeFiles/skyline_relation.dir/relation/table_io.cc.o.d"
  "libskyline_relation.a"
  "libskyline_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
