file(REMOVE_RECURSE
  "libskyline_relation.a"
)
