# Empty dependencies file for skyline_relation.
# This may be replaced when dependencies are built.
