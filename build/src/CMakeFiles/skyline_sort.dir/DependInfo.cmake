
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sort/comparator.cc" "src/CMakeFiles/skyline_sort.dir/sort/comparator.cc.o" "gcc" "src/CMakeFiles/skyline_sort.dir/sort/comparator.cc.o.d"
  "/root/repo/src/sort/external_sort.cc" "src/CMakeFiles/skyline_sort.dir/sort/external_sort.cc.o" "gcc" "src/CMakeFiles/skyline_sort.dir/sort/external_sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyline_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
