file(REMOVE_RECURSE
  "CMakeFiles/skyline_sort.dir/sort/comparator.cc.o"
  "CMakeFiles/skyline_sort.dir/sort/comparator.cc.o.d"
  "CMakeFiles/skyline_sort.dir/sort/external_sort.cc.o"
  "CMakeFiles/skyline_sort.dir/sort/external_sort.cc.o.d"
  "libskyline_sort.a"
  "libskyline_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
