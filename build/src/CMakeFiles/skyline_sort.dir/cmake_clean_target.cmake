file(REMOVE_RECURSE
  "libskyline_sort.a"
)
