# Empty dependencies file for skyline_sort.
# This may be replaced when dependencies are built.
