file(REMOVE_RECURSE
  "CMakeFiles/skyline_sql.dir/sql/executor.cc.o"
  "CMakeFiles/skyline_sql.dir/sql/executor.cc.o.d"
  "CMakeFiles/skyline_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/skyline_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/skyline_sql.dir/sql/parser.cc.o"
  "CMakeFiles/skyline_sql.dir/sql/parser.cc.o.d"
  "libskyline_sql.a"
  "libskyline_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
