file(REMOVE_RECURSE
  "libskyline_sql.a"
)
