# Empty compiler generated dependencies file for skyline_sql.
# This may be replaced when dependencies are built.
