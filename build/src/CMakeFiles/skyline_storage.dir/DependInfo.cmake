
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/skyline_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/skyline_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/skyline_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/skyline_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/temp_file_manager.cc" "src/CMakeFiles/skyline_storage.dir/storage/temp_file_manager.cc.o" "gcc" "src/CMakeFiles/skyline_storage.dir/storage/temp_file_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyline_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
