file(REMOVE_RECURSE
  "CMakeFiles/skyline_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/skyline_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/skyline_storage.dir/storage/page.cc.o"
  "CMakeFiles/skyline_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/skyline_storage.dir/storage/temp_file_manager.cc.o"
  "CMakeFiles/skyline_storage.dir/storage/temp_file_manager.cc.o.d"
  "libskyline_storage.a"
  "libskyline_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
