file(REMOVE_RECURSE
  "libskyline_storage.a"
)
