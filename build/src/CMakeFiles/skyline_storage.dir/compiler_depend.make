# Empty compiler generated dependencies file for skyline_storage.
# This may be replaced when dependencies are built.
