
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bnl_test.cc" "tests/CMakeFiles/skyline_tests.dir/bnl_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/bnl_test.cc.o.d"
  "/root/repo/tests/cardinality_test.cc" "tests/CMakeFiles/skyline_tests.dir/cardinality_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/cardinality_test.cc.o.d"
  "/root/repo/tests/common_util_test.cc" "tests/CMakeFiles/skyline_tests.dir/common_util_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/common_util_test.cc.o.d"
  "/root/repo/tests/comparator_test.cc" "tests/CMakeFiles/skyline_tests.dir/comparator_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/comparator_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/skyline_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/skyline_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/dim_reduce_test.cc" "tests/CMakeFiles/skyline_tests.dir/dim_reduce_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/dim_reduce_test.cc.o.d"
  "/root/repo/tests/divide_conquer_test.cc" "tests/CMakeFiles/skyline_tests.dir/divide_conquer_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/divide_conquer_test.cc.o.d"
  "/root/repo/tests/dominance_test.cc" "tests/CMakeFiles/skyline_tests.dir/dominance_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/dominance_test.cc.o.d"
  "/root/repo/tests/env_test.cc" "tests/CMakeFiles/skyline_tests.dir/env_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/env_test.cc.o.d"
  "/root/repo/tests/error_injection_test.cc" "tests/CMakeFiles/skyline_tests.dir/error_injection_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/error_injection_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/skyline_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/external_sort_test.cc" "tests/CMakeFiles/skyline_tests.dir/external_sort_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/external_sort_test.cc.o.d"
  "/root/repo/tests/faulty_env.cc" "tests/CMakeFiles/skyline_tests.dir/faulty_env.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/faulty_env.cc.o.d"
  "/root/repo/tests/fuzz_differential_test.cc" "tests/CMakeFiles/skyline_tests.dir/fuzz_differential_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/fuzz_differential_test.cc.o.d"
  "/root/repo/tests/generator_test.cc" "tests/CMakeFiles/skyline_tests.dir/generator_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/generator_test.cc.o.d"
  "/root/repo/tests/heap_file_test.cc" "tests/CMakeFiles/skyline_tests.dir/heap_file_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/heap_file_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/skyline_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/skyline_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/less_test.cc" "tests/CMakeFiles/skyline_tests.dir/less_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/less_test.cc.o.d"
  "/root/repo/tests/maintenance_test.cc" "tests/CMakeFiles/skyline_tests.dir/maintenance_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/maintenance_test.cc.o.d"
  "/root/repo/tests/naive_test.cc" "tests/CMakeFiles/skyline_tests.dir/naive_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/naive_test.cc.o.d"
  "/root/repo/tests/page_test.cc" "tests/CMakeFiles/skyline_tests.dir/page_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/page_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/skyline_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/skyline_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/skyline_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/row_test.cc" "tests/CMakeFiles/skyline_tests.dir/row_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/row_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/skyline_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/scoring_test.cc" "tests/CMakeFiles/skyline_tests.dir/scoring_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/scoring_test.cc.o.d"
  "/root/repo/tests/sfs_extensions_test.cc" "tests/CMakeFiles/skyline_tests.dir/sfs_extensions_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/sfs_extensions_test.cc.o.d"
  "/root/repo/tests/sfs_test.cc" "tests/CMakeFiles/skyline_tests.dir/sfs_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/sfs_test.cc.o.d"
  "/root/repo/tests/skyline_spec_test.cc" "tests/CMakeFiles/skyline_tests.dir/skyline_spec_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/skyline_spec_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/skyline_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/special2d_test.cc" "tests/CMakeFiles/skyline_tests.dir/special2d_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/special2d_test.cc.o.d"
  "/root/repo/tests/special3d_test.cc" "tests/CMakeFiles/skyline_tests.dir/special3d_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/special3d_test.cc.o.d"
  "/root/repo/tests/sql_csv_integration_test.cc" "tests/CMakeFiles/skyline_tests.dir/sql_csv_integration_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/sql_csv_integration_test.cc.o.d"
  "/root/repo/tests/sql_executor_test.cc" "tests/CMakeFiles/skyline_tests.dir/sql_executor_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/sql_executor_test.cc.o.d"
  "/root/repo/tests/sql_lexer_test.cc" "tests/CMakeFiles/skyline_tests.dir/sql_lexer_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/sql_lexer_test.cc.o.d"
  "/root/repo/tests/sql_parser_test.cc" "tests/CMakeFiles/skyline_tests.dir/sql_parser_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/sql_parser_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/skyline_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/strata_test.cc" "tests/CMakeFiles/skyline_tests.dir/strata_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/strata_test.cc.o.d"
  "/root/repo/tests/table_io_test.cc" "tests/CMakeFiles/skyline_tests.dir/table_io_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/table_io_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/skyline_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/table_test.cc.o.d"
  "/root/repo/tests/temp_file_manager_test.cc" "tests/CMakeFiles/skyline_tests.dir/temp_file_manager_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/temp_file_manager_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/skyline_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/window_test.cc" "tests/CMakeFiles/skyline_tests.dir/window_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/window_test.cc.o.d"
  "/root/repo/tests/winnow_test.cc" "tests/CMakeFiles/skyline_tests.dir/winnow_test.cc.o" "gcc" "tests/CMakeFiles/skyline_tests.dir/winnow_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skyline_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skyline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
