# Empty dependencies file for skyline_tests.
# This may be replaced when dependencies are built.
