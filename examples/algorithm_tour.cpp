// Algorithm tour: runs every skyline algorithm in the library over the
// same generated data set and prints a comparison table — a miniature of
// the paper's Section 5 evaluation, handy for sanity-checking a build and
// for seeing the knobs in one place.
//
// Run: ./algorithm_tour [rows]    (default 50000)

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/skyline.h"

namespace {

using namespace skyline;

void Report(const char* name, uint64_t skyline_rows, double seconds,
            const SkylineRunStats* stats) {
  std::printf("  %-28s %8llu %9.3f", name,
              static_cast<unsigned long long>(skyline_rows), seconds);
  if (stats != nullptr) {
    std::printf(" %7llu %12llu %11llu",
                static_cast<unsigned long long>(stats->passes),
                static_cast<unsigned long long>(stats->ExtraPages()),
                static_cast<unsigned long long>(stats->window_comparisons));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Env* env = Env::Memory();
  const uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;

  GeneratorOptions gen;
  gen.num_rows = rows;
  gen.seed = 7;
  auto table = GenerateTable(env, "tour", gen);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  constexpr int kDims = 5;
  auto spec_result = SkylineSpec::Make(table->schema(),
                                       {{"a0", Directive::kMax},
                                        {"a1", Directive::kMax},
                                        {"a2", Directive::kMax},
                                        {"a3", Directive::kMax},
                                        {"a4", Directive::kMax}});
  SKYLINE_CHECK(spec_result.ok());
  const SkylineSpec& spec = *spec_result;

  std::printf("%llu uniform tuples, %d-dimensional skyline.\n",
              static_cast<unsigned long long>(rows), kDims);
  std::printf("Expected skyline size (estimator): %.0f exact, %.0f asymptotic\n\n",
              ExpectedSkylineSize(rows, kDims),
              SkylineSizeAsymptotic(rows, kDims));
  std::printf("  %-28s %8s %9s %7s %12s %11s\n", "algorithm", "skyline",
              "seconds", "passes", "extra_pages", "dom_tests");

  const size_t window_pages = 8;  // small enough to exercise multi-pass

  {
    SfsOptions options;
    options.window_pages = window_pages;
    options.presort = Presort::kNested;
    options.use_projection = false;
    SkylineRunStats stats;
    Stopwatch timer;
    auto sky = ComputeSkylineSfs(*table, spec, options, ExecContext(), "tour_sfs0", &stats);
    SKYLINE_CHECK(sky.ok());
    Report("SFS (nested sort)", sky->row_count(), timer.ElapsedSeconds(),
           &stats);
  }
  {
    SfsOptions options;
    options.window_pages = window_pages;
    options.presort = Presort::kEntropy;
    options.use_projection = false;
    SkylineRunStats stats;
    Stopwatch timer;
    auto sky = ComputeSkylineSfs(*table, spec, options, ExecContext(), "tour_sfs1", &stats);
    SKYLINE_CHECK(sky.ok());
    Report("SFS w/E (entropy sort)", sky->row_count(), timer.ElapsedSeconds(),
           &stats);
  }
  {
    SfsOptions options;
    options.window_pages = window_pages;
    SkylineRunStats stats;
    Stopwatch timer;
    auto sky = ComputeSkylineSfs(*table, spec, options, ExecContext(), "tour_sfs2", &stats);
    SKYLINE_CHECK(sky.ok());
    Report("SFS w/E,P (+ projection)", sky->row_count(),
           timer.ElapsedSeconds(), &stats);
  }
  {
    LessOptions options;
    options.window_pages = window_pages;
    LessStats stats;
    Stopwatch timer;
    auto sky = ComputeSkylineLess(*table, spec, options, ExecContext(), "tour_less", &stats);
    SKYLINE_CHECK(sky.ok());
    Report("LESS (eliminate in sort)", sky->row_count(),
           timer.ElapsedSeconds(), &stats.run);
  }
  {
    BnlOptions options;
    options.window_pages = window_pages;
    SkylineRunStats stats;
    Stopwatch timer;
    auto sky = ComputeSkylineBnl(*table, spec, options, ExecContext(), "tour_bnl", &stats);
    SKYLINE_CHECK(sky.ok());
    Report("BNL (random input)", sky->row_count(), timer.ElapsedSeconds(),
           &stats);
  }
  {
    EntropyOrdering entropy(&spec, *table);
    ReverseOrdering reversed(&entropy);
    BnlOptions options;
    options.window_pages = window_pages;
    options.input_ordering = &reversed;
    SkylineRunStats stats;
    Stopwatch timer;
    auto sky = ComputeSkylineBnl(*table, spec, options, ExecContext(), "tour_bnlre", &stats);
    SKYLINE_CHECK(sky.ok());
    Report("BNL w/RE (worst-case input)", sky->row_count(),
           timer.ElapsedSeconds(), &stats);
  }
  {
    Stopwatch timer;
    auto sky = DivideConquerSkylineRows(*table, spec);
    SKYLINE_CHECK(sky.ok());
    Report("divide & conquer (in-mem)",
           sky->size() / table->schema().row_width(), timer.ElapsedSeconds(),
           nullptr);
  }
  if (rows <= 20'000) {
    Stopwatch timer;
    auto sky = NaiveSkylineRows(*table, spec);
    SKYLINE_CHECK(sky.ok());
    Report("naive O(n^2) oracle", sky->size() / table->schema().row_width(),
           timer.ElapsedSeconds(), nullptr);
  } else {
    std::printf("  %-28s %8s  (skipped at this scale; run with rows<=20000)\n",
                "naive O(n^2) oracle", "-");
  }

  std::printf(
      "\nAll algorithms return the same skyline; they differ in passes,\n"
      "extra I/O, CPU (dominance tests), and output pipelining.\n");
  return 0;
}
