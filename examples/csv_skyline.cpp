// csv_skyline: a command-line skyline tool for CSV files — the quickest
// way to use the library on real data.
//
//   ./csv_skyline <file.csv> <criteria>
//   ./csv_skyline hotels.csv "price:min,rating:max,city:diff"
//
// Criteria: comma-separated `column:max|min|diff` entries. The result is
// written to stdout as CSV. With no arguments, a demo over the paper's
// restaurant guide runs instead.

#include <cstdio>
#include <string>
#include <vector>

#include "core/skyline.h"

namespace {

using namespace skyline;

Result<std::vector<Criterion>> ParseCriteria(const std::string& text) {
  std::vector<Criterion> criteria;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("bad criterion '" + item +
                                     "', want column:max|min|diff");
    }
    const std::string column = item.substr(0, colon);
    const std::string dir = item.substr(colon + 1);
    Directive directive;
    if (dir == "max") {
      directive = Directive::kMax;
    } else if (dir == "min") {
      directive = Directive::kMin;
    } else if (dir == "diff") {
      directive = Directive::kDiff;
    } else {
      return Status::InvalidArgument("bad directive '" + dir +
                                     "', want max, min, or diff");
    }
    criteria.push_back({column, directive});
    start = comma + 1;
    if (comma == text.size()) break;
  }
  return criteria;
}

Status RunFile(const std::string& csv_path, const std::string& criteria_text) {
  Env* env = Env::Memory();
  SKYLINE_ASSIGN_OR_RETURN(Table table,
                           ReadCsvFile(env, csv_path, "csv_input"));
  std::fprintf(stderr, "loaded %llu rows, schema %s\n",
               static_cast<unsigned long long>(table.row_count()),
               table.schema().ToString().c_str());
  SKYLINE_ASSIGN_OR_RETURN(std::vector<Criterion> criteria,
                           ParseCriteria(criteria_text));
  SKYLINE_ASSIGN_OR_RETURN(SkylineSpec spec,
                           SkylineSpec::Make(table.schema(), criteria));
  SkylineRunStats stats;
  SKYLINE_ASSIGN_OR_RETURN(
      Table sky, ComputeSkylineSfs(table, spec, SfsOptions{}, ExecContext(), "csv_sky",
                                   &stats));
  SKYLINE_ASSIGN_OR_RETURN(std::string csv, TableToCsv(sky));
  std::fputs(csv.c_str(), stdout);
  std::fprintf(stderr,
               "%llu skyline rows of %llu (%llu pass%s, %.3f s sort + %.3f s "
               "filter)\n",
               static_cast<unsigned long long>(stats.output_rows),
               static_cast<unsigned long long>(stats.input_rows),
               static_cast<unsigned long long>(stats.passes),
               stats.passes == 1 ? "" : "es", stats.sort_seconds,
               stats.filter_seconds);
  return Status::OK();
}

Status RunDemo() {
  std::fprintf(stderr, "no arguments: running the built-in demo\n\n");
  const std::string csv =
      "restaurant,S,F,D,price\n"
      "Summer Moon,21,25,19,47.50\n"
      "Zakopane,24,20,21,56.00\n"
      "Brearton Grill,15,18,20,62.00\n"
      "Yamanote,22,22,17,51.50\n"
      "Fenton & Pickle,16,14,10,17.50\n"
      "Briar Patch BBQ,14,13,3,22.50\n";
  Env* env = Env::Memory();
  SKYLINE_ASSIGN_OR_RETURN(Table table, CsvToTable(env, "demo", csv));
  SKYLINE_ASSIGN_OR_RETURN(
      SkylineSpec spec,
      SkylineSpec::Make(table.schema(), {{"S", Directive::kMax},
                                         {"F", Directive::kMax},
                                         {"D", Directive::kMax},
                                         {"price", Directive::kMin}}));
  SKYLINE_ASSIGN_OR_RETURN(
      Table sky,
      ComputeSkylineSfs(table, spec, SfsOptions{}, ExecContext(), "demo_sky", nullptr));
  SKYLINE_ASSIGN_OR_RETURN(std::string out, TableToCsv(sky));
  std::fputs(out.c_str(), stdout);
  std::fprintf(stderr, "\nusage: csv_skyline <file.csv> "
                       "\"colA:max,colB:min,colC:diff\"\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Status st = argc >= 3 ? RunFile(argv[1], argv[2]) : RunDemo();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
