// Hotel finder: a realistic preference query over a generated hotel table,
// exercising the Query pipeline (selection below skyline, DIFF grouping,
// projection, limit) and skyline strata as a "show me more options" fall-
// back — the use cases the paper motivates in Sections 1 and 4.4.
//
// Run: ./hotel_finder

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/skyline.h"
#include "exec/query.h"

namespace {

using namespace skyline;

constexpr int kNumHotels = 50'000;
constexpr int kNumCities = 8;
const char* const kCityNames[kNumCities] = {
    "Toronto", "Buffalo", "Williamsburg", "York",
    "Waterloo", "Kingston", "Ottawa", "Hamilton"};

Result<Table> BuildHotels(Env* env) {
  SKYLINE_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({ColumnDef::FixedString("name", 24),
                    ColumnDef::Int32("city"), ColumnDef::Int32("stars"),
                    ColumnDef::Int32("rating"),      // 0..100 guest score
                    ColumnDef::Int32("price"),       // dollars per night
                    ColumnDef::Int32("dist_m")}));   // metres to centre
  TableBuilder builder(env, "hotels", schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  Random rng(1729);
  RowBuffer row(&builder.schema());
  for (int i = 0; i < kNumHotels; ++i) {
    const int stars = static_cast<int>(rng.Uniform(5)) + 1;
    // Price correlates with stars plus noise; rating loosely too. This
    // makes dominated hotels plentiful but keeps the skyline interesting.
    const int price =
        40 + stars * 45 + static_cast<int>(rng.Uniform(120)) - 30;
    const int rating = std::min<int>(
        100, 35 + stars * 8 + static_cast<int>(rng.Uniform(30)));
    row.SetString(0, "hotel_" + std::to_string(i));
    row.SetInt32(1, static_cast<int32_t>(rng.Uniform(kNumCities)));
    row.SetInt32(2, stars);
    row.SetInt32(3, rating);
    row.SetInt32(4, std::max(25, price));
    row.SetInt32(5, static_cast<int32_t>(rng.Uniform(8000)) + 100);
    SKYLINE_RETURN_IF_ERROR(builder.Append(row));
  }
  return builder.Finish();
}

Status FindBestHotels(Env* env, const Table& hotels) {
  std::printf(
      "Best-value hotels per city, at most $250/night, within 4 km:\n"
      "(skyline of rating max, price min, dist_m min, grouped by city)\n\n");
  Query query(env, &hotels, "hotel_query");
  query
      .Where([](const RowView& row) {
        return row.GetInt32(4) <= 250 && row.GetInt32(5) <= 4000;
      })
      .SkylineOf({{"city", Directive::kDiff},
                  {"rating", Directive::kMax},
                  {"price", Directive::kMin},
                  {"dist_m", Directive::kMin}})
      .Project({"city", "name", "stars", "rating", "price", "dist_m"});
  int count = 0;
  int last_city = -1;
  SKYLINE_RETURN_IF_ERROR(query.Run([&](const RowView& row) {
    const int city = row.GetInt32(0);
    if (city != last_city) {
      std::printf("%s:\n", kCityNames[city]);
      last_city = city;
    }
    if (count < 9999) {
      std::printf("  %-12s %d* rating %3d  $%3d  %4dm\n",
                  row.GetString(1).c_str(), row.GetInt32(2), row.GetInt32(3),
                  row.GetInt32(4), row.GetInt32(5));
    }
    ++count;
    return Status::OK();
  }));
  std::printf("\n%d skyline hotels in total.\n\n", count);
  return Status::OK();
}

Status ShowStrataFallback(Env* env, const Table& hotels) {
  // Suppose the user has already rejected the skyline choices for one
  // city; strata provide the "next best" layers (paper Section 4.4).
  SKYLINE_ASSIGN_OR_RETURN(
      SkylineSpec spec,
      SkylineSpec::Make(hotels.schema(), {{"rating", Directive::kMax},
                                          {"price", Directive::kMin}}));
  StrataOptions options;
  options.num_strata = 3;
  StrataStats stats;
  SKYLINE_ASSIGN_OR_RETURN(
      std::vector<Table> strata,
      ComputeStrataSfs(hotels, spec, options, ExecContext(), "hotel_strata", &stats));
  std::printf("Global rating/price strata (next-best layers):\n");
  for (size_t level = 0; level < strata.size(); ++level) {
    std::printf("  stratum s%zu: %llu hotels\n", level,
                static_cast<unsigned long long>(strata[level].row_count()));
  }
  std::printf(
      "\nA user who dislikes every s0 hotel can be offered s1, then s2 —\n"
      "no re-computation, all three strata came from one filtering pass.\n");
  (void)env;
  return Status::OK();
}

}  // namespace

int main() {
  Env* env = Env::Memory();
  auto hotels = BuildHotels(env);
  if (!hotels.ok()) {
    std::fprintf(stderr, "%s\n", hotels.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated %llu hotels across %d cities.\n\n",
              static_cast<unsigned long long>(hotels->row_count()),
              kNumCities);
  Status st = FindBestHotels(env, *hotels);
  if (st.ok()) st = ShowStrataFallback(env, *hotels);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
