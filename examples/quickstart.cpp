// Quickstart: the paper's running example. Build the GoodEats restaurant
// guide (Figure 1), ask for the best restaurants under
//
//   SELECT * FROM GoodEats SKYLINE OF S max, F max, D max, price min
//
// (Figure 4), and print the skyline (Figure 2).
//
// Run: ./quickstart

#include <cstdio>

#include "core/skyline.h"

namespace {

void PrintRow(const skyline::RowView& row) {
  std::printf("  %-16s %3d %3d %3d  %6.2f\n", row.GetString(0).c_str(),
              row.GetInt32(1), row.GetInt32(2), row.GetInt32(3),
              row.GetFloat64(4));
}

}  // namespace

int main() {
  using namespace skyline;

  // An in-memory Env keeps the example self-contained; swap in
  // Env::Posix() and real paths for on-disk tables.
  Env* env = Env::Memory();

  auto guide = MakeGoodEatsTable(env, "good_eats");
  if (!guide.ok()) {
    std::fprintf(stderr, "building table: %s\n",
                 guide.status().ToString().c_str());
    return 1;
  }

  std::printf("GoodEats guide (%llu restaurants):\n",
              static_cast<unsigned long long>(guide->row_count()));
  std::printf("  %-16s %3s %3s %3s  %6s\n", "restaurant", "S", "F", "D",
              "price");
  std::vector<char> rows;
  SKYLINE_CHECK_OK(guide->ReadAllRows(&rows));
  for (uint64_t i = 0; i < guide->row_count(); ++i) {
    PrintRow(RowView(&guide->schema(),
                     rows.data() + i * guide->schema().row_width()));
  }

  // The skyline criteria: best service, food, and decor; lowest price.
  auto spec = SkylineSpec::Make(guide->schema(), {{"S", Directive::kMax},
                                                  {"F", Directive::kMax},
                                                  {"D", Directive::kMax},
                                                  {"price", Directive::kMin}});
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQuery: %s\n", spec->ToString().c_str());

  SkylineRunStats stats;
  auto sky = ComputeSkylineSfs(*guide, *spec, SfsOptions{}, ExecContext(), "sky", &stats);
  if (!sky.ok()) {
    std::fprintf(stderr, "skyline: %s\n", sky.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSkyline (%llu choices, %llu pass%s, %llu dominance tests):\n",
              static_cast<unsigned long long>(sky->row_count()),
              static_cast<unsigned long long>(stats.passes),
              stats.passes == 1 ? "" : "es",
              static_cast<unsigned long long>(stats.window_comparisons));
  SKYLINE_CHECK_OK(sky->ReadAllRows(&rows));
  for (uint64_t i = 0; i < sky->row_count(); ++i) {
    PrintRow(RowView(&sky->schema(),
                     rows.data() + i * sky->schema().row_width()));
  }
  std::printf(
      "\nEvery other restaurant is dominated: some skyline choice is at\n"
      "least as good on every criterion and strictly better on one.\n");
  return 0;
}
