// skyline_client: thin CLI for the skyline query server. Connects to
// 127.0.0.1:<port>, sends one request frame (4-byte big-endian length +
// JSON; see src/server/protocol.h), prints the JSON response to stdout,
// and exits 0 iff the response says "ok": true.
//
//   ./skyline_client --port=7654 "SELECT * FROM hotels SKYLINE OF price MIN"
//   ./skyline_client --port=7654 --timeout-ms=1000 "SELECT ..."
//   ./skyline_client --port=7654 --op=ping
//   ./skyline_client --port=7654 --op=stats
//   ./skyline_client --port=7654 --op=shutdown
//
// --no-rows / --no-report trim the response (useful when only the
// counters or only the rows matter).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "server/protocol.h"

namespace {

using namespace skyline;

Result<int> Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("cannot connect to 127.0.0.1:" +
                           std::to_string(port));
  }
  return fd;
}

Status RunOnce(uint16_t port, const std::string& op, const std::string& sql,
               long timeout_ms, bool include_rows, bool include_report,
               bool* ok_out) {
  JsonWriter request;
  request.BeginObject();
  request.KeyValue("op", op);
  if (op == "query") {
    request.KeyValue("sql", sql);
    if (timeout_ms >= 0) {
      request.KeyValue("timeout_ms", static_cast<int64_t>(timeout_ms));
    }
    request.KeyValue("include_rows", include_rows);
    request.KeyValue("include_report", include_report);
  }
  request.EndObject();

  SKYLINE_ASSIGN_OR_RETURN(int fd, Connect(port));
  Status st = WriteFrame(fd, request.str());
  std::string payload;
  if (st.ok()) st = ReadFrame(fd, &payload);
  ::close(fd);
  SKYLINE_RETURN_IF_ERROR(st);

  std::fwrite(payload.data(), 1, payload.size(), stdout);
  if (payload.empty() || payload.back() != '\n') std::printf("\n");

  // Exit status mirrors the response verdict so shell scripts can gate on
  // it without parsing JSON.
  auto parsed = ParseJson(payload);
  *ok_out = parsed.ok() && parsed.value().GetBool("ok", false);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7654;
  std::string op = "query";
  std::string sql;
  long timeout_ms = -1;
  bool include_rows = true;
  bool include_report = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--op=", 0) == 0) {
      op = arg.substr(5);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      timeout_ms = std::atol(arg.c_str() + 13);
    } else if (arg == "--no-rows") {
      include_rows = false;
    } else if (arg == "--no-report") {
      include_report = false;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: skyline_client [--port=N] [--op=query|ping|stats|"
                   "shutdown]\n"
                   "                      [--timeout-ms=N] [--no-rows] "
                   "[--no-report] [\"SQL\"]\n");
      return 2;
    } else {
      sql = arg;
    }
  }
  if (op == "query" && sql.empty()) {
    std::fprintf(stderr, "error: --op=query needs a SQL statement\n");
    return 2;
  }
  bool response_ok = false;
  Status st = RunOnce(port, op, sql, timeout_ms, include_rows, include_report,
                      &response_ok);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return response_ok ? 0 : 3;
}
