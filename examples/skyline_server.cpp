// skyline_server: the skyline-as-a-service daemon. Loads CSV files into a
// process-wide Engine (tables, result cache, and maintenance state stay
// resident), then serves the SQL dialect over a length-prefixed JSON TCP
// protocol (src/server/protocol.h) until interrupted or — with
// --allow-shutdown — until a client sends {"op": "shutdown"}.
//
//   ./skyline_server --port=7654 hotels.csv restaurants.csv
//   ./skyline_server --port=0 --allow-shutdown      # demo GoodEats table,
//                                                   # ephemeral port
//
// The bound port is printed as `listening on 127.0.0.1:<port>` so scripts
// using --port=0 can scrape it. Pair with skyline_client:
//
//   ./skyline_client --port=7654 "SELECT * FROM hotels SKYLINE OF price MIN"
//   ./skyline_client --port=7654 "INSERT INTO hotels VALUES (...)"
//   ./skyline_client --port=7654 --op=stats

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "relation/csv.h"
#include "relation/generator.h"
#include "server/server.h"
#include "sql/engine.h"

namespace {

using namespace skyline;

std::sig_atomic_t g_interrupted = 0;
void OnSignal(int) { g_interrupted = 1; }

std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

Status Run(uint16_t port, bool allow_shutdown,
           const std::vector<std::string>& csv_files) {
  Env* env = Env::Memory();
  Engine::Options engine_options;
  engine_options.env = env;
  Engine engine(engine_options);

  if (csv_files.empty()) {
    // Demo table: the paper's GoodEats guide.
    SKYLINE_ASSIGN_OR_RETURN(Table guide, MakeGoodEatsTable(env, "goodeats"));
    SKYLINE_RETURN_IF_ERROR(engine.CreateTable("GoodEats", std::move(guide)));
    std::fprintf(stderr, "no CSV files: serving the demo GoodEats table\n");
  }
  for (const std::string& path : csv_files) {
    const std::string name = FileStem(path);
    SKYLINE_ASSIGN_OR_RETURN(Table table,
                             ReadCsvFile(env, path, "csv_" + name));
    const uint64_t rows = table.row_count();
    SKYLINE_RETURN_IF_ERROR(engine.CreateTable(name, std::move(table)));
    std::fprintf(stderr, "loaded table '%s' (%llu rows) from %s\n",
                 name.c_str(), static_cast<unsigned long long>(rows),
                 path.c_str());
  }

  SkylineServer::Options server_options;
  server_options.engine = &engine;
  server_options.port = port;
  server_options.allow_remote_shutdown = allow_shutdown;
  SkylineServer server(server_options);
  SKYLINE_RETURN_IF_ERROR(server.Start());
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  // A connection handler cannot join its own thread, so a remote shutdown
  // only raises a flag; this owner loop is what actually stops the server.
  while (!server.shutdown_requested() && g_interrupted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const SkylineServer::Counters c = server.counters();
  const Engine::CacheCounters cc = engine.cache_counters();
  std::fprintf(stderr,
               "served %llu queries (%llu ok, %llu error, %llu rejected, "
               "%llu timed out); cache %llu hits / %llu misses\n",
               static_cast<unsigned long long>(c.queries_started),
               static_cast<unsigned long long>(c.queries_ok),
               static_cast<unsigned long long>(c.queries_error),
               static_cast<unsigned long long>(c.admission_rejected),
               static_cast<unsigned long long>(c.queries_timed_out),
               static_cast<unsigned long long>(cc.hits),
               static_cast<unsigned long long>(cc.misses));
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7654;
  bool allow_shutdown = false;
  std::vector<std::string> csv_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg == "--allow-shutdown") {
      allow_shutdown = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: skyline_server [--port=N] [--allow-shutdown] "
                   "[file.csv ...]\n"
                   "       --port=0 binds an ephemeral port (printed on "
                   "stdout)\n");
      return 2;
    } else {
      csv_files.push_back(arg);
    }
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  Status st = Run(port, allow_shutdown, csv_files);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
