// sql_shell: the paper's proposed SQL surface (Figure 3), runnable over
// CSV files.
//
//   ./sql_shell data.csv "SELECT * FROM data SKYLINE OF price MIN, rating MAX"
//   ./sql_shell a.csv b.csv
//       "SELECT name FROM b WHERE stars > 3 SKYLINE OF price MIN LIMIT 10"
//   (shell line continuation elided; pass files then one query string)
//
// Each CSV becomes a table named after its file stem. With no arguments a
// demo session over the GoodEats guide runs, including the paper's
// Figure 4 query verbatim.

#include <cstdio>
#include <string>
#include <vector>

#include "core/skyline.h"
#include "sql/executor.h"

namespace {

using namespace skyline;

std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

void PrintHeader(const Schema& schema) {
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    std::printf("%s%s", c > 0 ? " | " : "", schema.column(c).name.c_str());
  }
  std::printf("\n");
}

void PrintRow(const RowView& row) {
  const Schema& schema = row.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) std::printf(" | ");
    switch (schema.column(c).type) {
      case ColumnType::kInt32:
        std::printf("%d", row.GetInt32(c));
        break;
      case ColumnType::kInt64:
        std::printf("%lld", static_cast<long long>(row.GetInt64(c)));
        break;
      case ColumnType::kFloat64:
        std::printf("%g", row.GetFloat64(c));
        break;
      case ColumnType::kFixedString:
        std::printf("%s", row.GetString(c).c_str());
        break;
    }
  }
  std::printf("\n");
}

Status RunQuery(const Catalog& catalog, const std::string& sql) {
  std::fprintf(stderr, "sql> %s\n", sql.c_str());
  // `EXPLAIN <query>` prints the operator plan instead of executing.
  if (sql.size() > 8 &&
      (sql.rfind("EXPLAIN ", 0) == 0 || sql.rfind("explain ", 0) == 0)) {
    SKYLINE_ASSIGN_OR_RETURN(std::string plan,
                             ExplainSql(catalog, sql.substr(8)));
    std::fputs(plan.c_str(), stdout);
    std::fprintf(stderr, "\n");
    return Status::OK();
  }
  bool printed_header = false;
  int rows = 0;
  SKYLINE_RETURN_IF_ERROR(
      ExecuteSql(catalog, sql, SqlOptions{}, [&](const RowView& row) {
        if (!printed_header) {
          PrintHeader(row.schema());
          printed_header = true;
        }
        PrintRow(row);
        ++rows;
        return Status::OK();
      }));
  std::fprintf(stderr, "(%d row%s)\n\n", rows, rows == 1 ? "" : "s");
  return Status::OK();
}

Status RunFiles(int argc, char** argv) {
  Env* env = Env::Memory();
  Catalog catalog(env);
  std::vector<Table> tables;
  tables.reserve(static_cast<size_t>(argc));
  // All arguments but the last are CSV files; the last is the query.
  for (int i = 1; i < argc - 1; ++i) {
    const std::string path = argv[i];
    const std::string name = FileStem(path);
    SKYLINE_ASSIGN_OR_RETURN(Table table,
                             ReadCsvFile(env, path, "csv_" + name));
    std::fprintf(stderr, "loaded table '%s' (%llu rows) from %s\n",
                 name.c_str(),
                 static_cast<unsigned long long>(table.row_count()),
                 path.c_str());
    tables.push_back(std::move(table));
    catalog.Register(name, &tables.back());
  }
  std::fprintf(stderr, "\n");
  return RunQuery(catalog, argv[argc - 1]);
}

Status RunDemo() {
  std::fprintf(stderr, "no arguments: demo session over the paper's "
                       "GoodEats guide\n\n");
  Env* env = Env::Memory();
  SKYLINE_ASSIGN_OR_RETURN(Table guide, MakeGoodEatsTable(env, "goodeats"));
  Catalog catalog(env);
  catalog.Register("GoodEats", &guide);
  // Figure 4 of the paper, verbatim.
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      catalog,
      "select * from GoodEats skyline of S max, F max, D max, price min"));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      catalog, "SELECT restaurant, price FROM GoodEats WHERE price < 55 "
               "SKYLINE OF F MAX, price MIN"));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      catalog,
      "SELECT restaurant FROM GoodEats SKYLINE OF D DIFF, price MIN LIMIT 3"));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      catalog,
      "EXPLAIN SELECT restaurant FROM GoodEats WHERE price < 60 "
      "SKYLINE OF S MAX, price MIN ORDER BY price LIMIT 3"));
  std::fprintf(stderr,
               "usage: sql_shell <file.csv>... \"<query>\"\n"
               "       (each CSV becomes a table named after its stem)\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Status st = argc >= 3 ? RunFiles(argc, argv) : RunDemo();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
