// sql_shell: the paper's proposed SQL surface (Figure 3), runnable over
// CSV files.
//
//   ./sql_shell data.csv "SELECT * FROM data SKYLINE OF price MIN, rating MAX"
//   ./sql_shell a.csv b.csv
//       "SELECT name FROM b WHERE stars > 3 SKYLINE OF price MIN LIMIT 10"
//   (shell line continuation elided; pass files then one query string)
//
// Each CSV becomes a table named after its file stem, registered in a
// skyline::Engine; queries run through a skyline::Session — the same
// Engine/Session stack the query server uses — so the full dialect works,
// including INSERT INTO ... VALUES and DELETE FROM (which rewrite the
// table to a new version and patch or repair any cached skylines). With no
// arguments a demo session over the GoodEats guide runs, including the
// paper's Figure 4 query verbatim.
//
// `--stats=json|text|off` (default off) attaches metrics + trace sinks to
// the execution context and prints a per-query RunReport to stderr — the
// versioned JSON observability document, or a human-readable summary.
// `--trace=FILE` writes a Chrome/Perfetto trace.json of the recorded spans
// after each query (load it in chrome://tracing or ui.perfetto.dev).
// Prefix a query with EXPLAIN for the plan, or EXPLAIN ANALYZE to run it
// and print the plan annotated with per-operator runtime stats.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/skyline.h"
#include "relation/column_store.h"
#include "sql/engine.h"

namespace {

using namespace skyline;

enum class StatsMode { kOff, kText, kJson };

std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

void PrintHeader(const Schema& schema) {
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    std::printf("%s%s", c > 0 ? " | " : "", schema.column(c).name.c_str());
  }
  std::printf("\n");
}

void PrintRow(const RowView& row) {
  const Schema& schema = row.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) std::printf(" | ");
    switch (schema.column(c).type) {
      case ColumnType::kInt32:
        std::printf("%d", row.GetInt32(c));
        break;
      case ColumnType::kInt64:
        std::printf("%lld", static_cast<long long>(row.GetInt64(c)));
        break;
      case ColumnType::kFloat64:
        std::printf("%g", row.GetFloat64(c));
        break;
      case ColumnType::kFixedString:
        std::printf("%s", row.GetString(c).c_str());
        break;
    }
  }
  std::printf("\n");
}

Status RunQuery(Engine* engine, const std::string& sql, StatsMode stats_mode,
                const std::string& trace_path) {
  std::fprintf(stderr, "sql> %s\n", sql.c_str());
  MetricsRegistry metrics;
  TraceSink trace;
  Session session(engine);
  if (stats_mode != StatsMode::kOff) {
    session.exec().metrics = &metrics;
  }
  // The trace sink attaches whenever either consumer wants it: the
  // RunReport span summary (--stats) or the Chrome trace file (--trace).
  if (stats_mode != StatsMode::kOff || !trace_path.empty()) {
    session.exec().trace = &trace;
  }
  bool printed_header = false;
  int rows = 0;
  Session::Outcome outcome;
  const auto start = std::chrono::steady_clock::now();
  SKYLINE_RETURN_IF_ERROR(session.Execute(
      sql,
      [&](const RowView& row) {
        if (!printed_header) {
          PrintHeader(row.schema());
          printed_header = true;
        }
        PrintRow(row);
        ++rows;
        return Status::OK();
      },
      &outcome));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (outcome.info.explain != ExplainMode::kNone) {
    // EXPLAIN / EXPLAIN ANALYZE print the (annotated) plan instead of rows.
    std::fputs(outcome.info.plan_text.c_str(), stdout);
    std::fprintf(stderr, "\n");
  } else if (outcome.write) {
    std::fprintf(stderr, "(%llu row%s affected; table at version %llu)\n\n",
                 static_cast<unsigned long long>(outcome.rows_affected),
                 outcome.rows_affected == 1 ? "" : "s",
                 static_cast<unsigned long long>(outcome.mutation.version));
  } else {
    std::fprintf(stderr, "(%d row%s%s)\n\n", rows, rows == 1 ? "" : "s",
                 outcome.cache_hit ? ", cached" : "");
  }
  if (!trace_path.empty()) {
    const std::string doc = trace.ExportChromeTrace();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot write trace file " + trace_path);
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr,
                 "wrote trace to %s (%llu spans recorded, %llu dropped)\n",
                 trace_path.c_str(),
                 static_cast<unsigned long long>(trace.recorded()),
                 static_cast<unsigned long long>(trace.dropped()));
  }
  if (stats_mode != StatsMode::kOff &&
      outcome.info.explain != ExplainMode::kPlan) {
    // Per-run counters land in `metrics` under "skyline.<algorithm>.*"
    // when the skyline stream is exhausted; spans land in `trace`.
    RunReport report;
    report.tool = "sql_shell";
    report.wall_seconds = wall;
    report.labels.emplace_back("query", sql);
    if (outcome.cache_eligible) {
      report.labels.emplace_back("result_cache",
                                 outcome.cache_hit ? "hit" : "miss");
    }
    report.numbers.emplace_back("rows_printed", static_cast<double>(rows));
    report.metrics = &metrics;
    report.trace = &trace;
    report.plan = std::move(outcome.info.plan);
    const std::string rendered = stats_mode == StatsMode::kJson
                                     ? RenderRunReportJson(report)
                                     : RenderRunReportText(report);
    std::fputs(rendered.c_str(), stderr);
    std::fprintf(stderr, "\n");
  }
  return Status::OK();
}

Status RunFiles(const std::vector<std::string>& args, StatsMode stats_mode,
                const std::string& trace_path) {
  Env* env = Env::Memory();
  Engine::Options engine_options;
  engine_options.env = env;
  // The engine writes the columnar + z-order index sidecars at load time
  // (and again after every mutation): every query in this session then
  // starts from ready-made zone maps instead of rescanning the heap file.
  Engine engine(engine_options);
  // All arguments but the last are CSV files; the last is the query.
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    const std::string& path = args[i];
    const std::string name = FileStem(path);
    SKYLINE_ASSIGN_OR_RETURN(Table table,
                             ReadCsvFile(env, path, "csv_" + name));
    const uint64_t rows = table.row_count();
    SKYLINE_RETURN_IF_ERROR(engine.CreateTable(name, std::move(table)));
    std::fprintf(stderr, "loaded table '%s' (%llu rows) from %s\n",
                 name.c_str(), static_cast<unsigned long long>(rows),
                 path.c_str());
  }
  std::fprintf(stderr, "\n");
  return RunQuery(&engine, args.back(), stats_mode, trace_path);
}

Status RunDemo(StatsMode stats_mode, const std::string& trace_path) {
  std::fprintf(stderr, "no arguments: demo session over the paper's "
                       "GoodEats guide\n\n");
  Env* env = Env::Memory();
  Engine::Options engine_options;
  engine_options.env = env;
  Engine engine(engine_options);
  SKYLINE_ASSIGN_OR_RETURN(Table guide, MakeGoodEatsTable(env, "goodeats"));
  SKYLINE_RETURN_IF_ERROR(engine.CreateTable("GoodEats", std::move(guide)));
  // Figure 4 of the paper, verbatim.
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      &engine,
      "select * from GoodEats skyline of S max, F max, D max, price min",
      stats_mode, trace_path));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      &engine,
      "SELECT restaurant, price FROM GoodEats WHERE price < 55 "
      "SKYLINE OF F MAX, price MIN",
      stats_mode, trace_path));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      &engine,
      "SELECT restaurant FROM GoodEats SKYLINE OF D DIFF, price MIN LIMIT 3",
      stats_mode, trace_path));
  // A write: the guide gains an entry, cached skylines are patched, and
  // the re-run Figure 4 query reflects it.
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      &engine,
      "INSERT INTO GoodEats VALUES ('Summit Bistro', 25, 26, 22, 21.50)",
      stats_mode, trace_path));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      &engine,
      "select * from GoodEats skyline of S max, F max, D max, price min",
      stats_mode, trace_path));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      &engine,
      "EXPLAIN SELECT restaurant FROM GoodEats WHERE price < 60 "
      "SKYLINE OF S MAX, price MIN ORDER BY price LIMIT 3",
      stats_mode, trace_path));
  SKYLINE_RETURN_IF_ERROR(RunQuery(
      &engine,
      "EXPLAIN ANALYZE SELECT restaurant FROM GoodEats "
      "SKYLINE OF S MAX, price MIN",
      stats_mode, trace_path));
  std::fprintf(stderr,
               "usage: sql_shell [--stats=json|text|off] [--trace=FILE] "
               "<file.csv>... \"<query>\"\n"
               "       (each CSV becomes a table named after its stem;\n"
               "        --trace writes a Chrome/Perfetto trace.json per "
               "query)\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  StatsMode stats_mode = StatsMode::kOff;
  std::string trace_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--stats=", 0) == 0) {
      const std::string value = arg.substr(8);
      if (value == "json") {
        stats_mode = StatsMode::kJson;
      } else if (value == "text") {
        stats_mode = StatsMode::kText;
      } else if (value == "off") {
        stats_mode = StatsMode::kOff;
      } else {
        std::fprintf(stderr,
                     "unknown --stats value '%s' (want json, text, or off)\n",
                     value.c_str());
        return 2;
      }
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) {
        std::fprintf(stderr, "--trace needs a file path\n");
        return 2;
      }
    } else {
      args.push_back(arg);
    }
  }
  Status st = args.size() >= 2 ? RunFiles(args, stats_mode, trace_path)
                               : RunDemo(stats_mode, trace_path);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
