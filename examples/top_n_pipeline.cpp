// Top-N pipelining: demonstrates the property that distinguishes SFS from
// BNL in a query engine — its *output* is pipelined, so a LIMIT above the
// skyline operator stops the filter pass as soon as N tuples are
// confirmed, while BNL must effectively finish before emitting anything
// (paper Sections 4.2 and 4.4).
//
// Run: ./top_n_pipeline

#include <cstdio>

#include "common/stopwatch.h"
#include "core/skyline.h"
#include "exec/query.h"

namespace {

using namespace skyline;

Result<Table> BuildListings(Env* env) {
  GeneratorOptions options;
  options.num_rows = 200'000;
  options.num_attributes = 6;
  options.payload_bytes = 60;
  options.seed = 31;
  return GenerateTable(env, "listings", options);
}

Result<uint64_t> RunTopN(Env* env, const Table& table,
                         SkylineAlgorithm algorithm, uint64_t n,
                         double* seconds, SkylineRunStats* stats_out) {
  auto scan = std::make_unique<TableScanOperator>(&table);
  SKYLINE_ASSIGN_OR_RETURN(
      std::unique_ptr<SkylineOperator> sky,
      SkylineOperator::Make(std::move(scan), env, "topn_tmp",
                            {{"a0", Directive::kMax},
                             {"a1", Directive::kMax},
                             {"a2", Directive::kMax},
                             {"a3", Directive::kMax},
                             {"a4", Directive::kMax},
                             {"a5", Directive::kMax}},
                            algorithm));
  SkylineOperator* sky_ptr = sky.get();
  LimitOperator limit(std::move(sky), n);
  Stopwatch timer;
  SKYLINE_RETURN_IF_ERROR(limit.Open());
  while (limit.Next() != nullptr) {
  }
  SKYLINE_RETURN_IF_ERROR(limit.status());
  *seconds = timer.ElapsedSeconds();
  *stats_out = sky_ptr->stats();
  return limit.emitted();
}

}  // namespace

int main() {
  Env* env = Env::Memory();
  auto listings = BuildListings(env);
  if (!listings.ok()) {
    std::fprintf(stderr, "%s\n", listings.status().ToString().c_str());
    return 1;
  }
  std::printf("Table: %llu rows, 6-dimensional skyline. Query: top 10 of\n"
              "the skyline, as a LIMIT above the skyline operator.\n\n",
              static_cast<unsigned long long>(listings->row_count()));

  for (auto [algorithm, name] :
       {std::pair{SkylineAlgorithm::kSfs, "SFS (pipelined output)"},
        std::pair{SkylineAlgorithm::kBnl, "BNL (blocking output)"}}) {
    double seconds = 0;
    SkylineRunStats stats;
    auto emitted = RunTopN(env, *listings, algorithm, 10, &seconds, &stats);
    if (!emitted.ok()) {
      std::fprintf(stderr, "%s\n", emitted.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s %llu rows in %.3f s", name,
                static_cast<unsigned long long>(*emitted), seconds);
    if (algorithm == SkylineAlgorithm::kSfs) {
      std::printf("  (filter confirmed only %llu tuples before stopping)",
                  static_cast<unsigned long long>(stats.output_rows));
    } else {
      std::printf("  (computed all %llu skyline tuples first)",
                  static_cast<unsigned long long>(stats.output_rows));
    }
    std::printf("\n");
  }

  std::printf(
      "\nBoth operators block on *input* (SFS must presort), but only SFS\n"
      "streams results: after the sort, the first skyline tuple costs one\n"
      "window test, so LIMIT 10 touches a tiny prefix of the data.\n");
  return 0;
}
