#!/usr/bin/env python3
"""Performance regression gate for the parallel-SFS benchmark.

Compares a freshly produced BENCH_sfs.json (scripts/run_bench.sh or a
direct parallel_sfs_bench run) against the committed baseline at the
repository root. Two families of checks per thread count present in both
files:

  * filter throughput: fresh rows_per_sec must stay above
    baseline * --throughput-floor (default 0.40 — generous because CI
    containers share cores and the committed numbers may come from a
    different machine; the gate catches order-of-magnitude regressions,
    not single-digit noise).
  * comparison counts: window_comparisons is deterministic for the seeded
    anti-correlated table, so fresh/baseline must stay within
    --comparison-tolerance (default 1.10) of each other in ratio;
    merge_comparisons additionally fails when exactly one side is zero
    (a merge path silently appearing or disappearing).

The gate refuses to compare runs of different table sizes: a changed
`rows` means the committed baseline is stale and must be re-recorded with
scripts/run_bench.sh.

Usage: bench_gate.py --baseline BENCH_sfs.json --fresh fresh.json
Exit status: 0 pass, 1 regression, 2 usage/stale-baseline error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def runs_by_threads(doc):
    return {run["threads"]: run for run in doc.get("runs", [])}


def ratio_within(a, b, tolerance):
    if a == 0 and b == 0:
        return True
    if a == 0 or b == 0:
        return False
    ratio = a / b if a > b else b / a
    return ratio <= tolerance


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_sfs.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--throughput-floor", type=float, default=0.40,
                        help="fresh rows_per_sec must be >= baseline * floor"
                             " (default %(default)s)")
    parser.add_argument("--comparison-tolerance", type=float, default=1.10,
                        help="max fresh/baseline ratio for comparison counts"
                             " (default %(default)s)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    if baseline.get("rows") != fresh.get("rows"):
        print(f"bench_gate: table size mismatch — baseline rows="
              f"{baseline.get('rows')} vs fresh rows={fresh.get('rows')}; "
              f"re-record the baseline with scripts/run_bench.sh",
              file=sys.stderr)
        return 2
    if baseline.get("distribution") != fresh.get("distribution"):
        print(f"bench_gate: distribution mismatch — "
              f"{baseline.get('distribution')} vs "
              f"{fresh.get('distribution')}; re-record the baseline",
              file=sys.stderr)
        return 2

    base_runs = runs_by_threads(baseline)
    fresh_runs = runs_by_threads(fresh)
    shared = sorted(set(base_runs) & set(fresh_runs))
    if not shared:
        print("bench_gate: no common thread counts between baseline and "
              "fresh runs", file=sys.stderr)
        return 2

    failures = []
    for threads in shared:
        base, new = base_runs[threads], fresh_runs[threads]

        floor = base["rows_per_sec"] * args.throughput_floor
        if new["rows_per_sec"] < floor:
            failures.append(
                f"threads={threads}: rows_per_sec {new['rows_per_sec']:.0f} "
                f"< floor {floor:.0f} "
                f"(baseline {base['rows_per_sec']:.0f} * "
                f"{args.throughput_floor})")

        if not ratio_within(new["window_comparisons"],
                            base["window_comparisons"],
                            args.comparison_tolerance):
            failures.append(
                f"threads={threads}: window_comparisons "
                f"{new['window_comparisons']} vs baseline "
                f"{base['window_comparisons']} exceeds tolerance "
                f"{args.comparison_tolerance}")

        base_merge = base["merge_comparisons"]
        new_merge = new["merge_comparisons"]
        if (base_merge == 0) != (new_merge == 0):
            failures.append(
                f"threads={threads}: merge path changed — merge_comparisons "
                f"baseline {base_merge} vs fresh {new_merge}")
        elif not ratio_within(new_merge, base_merge,
                              args.comparison_tolerance):
            failures.append(
                f"threads={threads}: merge_comparisons {new_merge} vs "
                f"baseline {base_merge} exceeds tolerance "
                f"{args.comparison_tolerance}")

        print(f"bench_gate: threads={threads} rows_per_sec "
              f"{new['rows_per_sec']:.0f} (baseline "
              f"{base['rows_per_sec']:.0f}), window_comparisons "
              f"{new['window_comparisons']} (baseline "
              f"{base['window_comparisons']}), merge_comparisons "
              f"{new_merge} (baseline {base_merge})")

    only_base = sorted(set(base_runs) - set(fresh_runs))
    if only_base:
        print(f"bench_gate: note — baseline thread counts {only_base} not "
              f"present in the fresh run (not compared)")

    if failures:
        print("bench_gate: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"bench_gate: PASS ({len(shared)} thread configs compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
