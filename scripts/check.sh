#!/usr/bin/env bash
# Tier-1 verification gate: builds the repo and runs the full test suite
# twice — a plain Release build, then an AddressSanitizer+UBSanitizer build
# (-DSKYLINE_SANITIZE=ON) that catches the memory bugs a green Release run
# can hide (the columnar dominance kernels deliberately read whole SIMD
# vectors at block tails, so every such read must stay inside the padded
# allocation) — and finally the concurrency-sensitive observability tests
# (trace sink, metrics shards, thread pool, execution context) under
# ThreadSanitizer (-DSKYLINE_SANITIZE=thread).
#
# A benchmark regression gate runs last: a fresh parallel_sfs_bench sweep
# (2 repetitions) is compared against the committed BENCH_sfs.json by
# scripts/bench_gate.py — throughput must stay above a generous floor and
# the deterministic comparison counts must match within tolerance.
#
# Usage: scripts/check.sh [build-dir-prefix]
#   SKYLINE_CHECK_JOBS=N    parallelism for build and ctest (default nproc)
#   SKYLINE_CHECK_BENCH=0   skip the benchmark regression gate (default 1)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo_root/build}"
jobs="${SKYLINE_CHECK_JOBS:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j"$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
}

echo "== check: plain build =="
run_suite "$prefix"

echo "== check: ASan/UBSan build =="
# halt_on_error is the default via -fno-sanitize-recover=all; detect leaks
# stays on so window/index ownership mistakes surface too.
UBSAN_OPTIONS="print_stacktrace=1" \
run_suite "${prefix}-sanitize" -DSKYLINE_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug

echo "== check: TSan build (trace/metrics/thread-pool concurrency) =="
# TSan over the full suite is slow and duplicates ASan's coverage of the
# single-threaded tests; scope it to the suites that exercise cross-thread
# telemetry and the pool itself, plus the column-file/zone-cache suites
# (the process-wide TableZoneCache and the shared merge dictionaries are
# touched from pool threads). Partition* covers the scheme-parallel scans,
# the representative pre-prune, and the filtered-cascade merge levels.
# BlockIndex*/Bbs* exercise the z-order index sidecar through the shared
# zone cache and the BBS access path that consumes it. EngineSession*/
# Server*/Maintenance* cover the concurrent query server: the shared
# result cache, the versioned-table swap under mixed read/write sessions,
# and the thread-per-connection admission/shutdown paths.
cmake -B "${prefix}-tsan" -S "$repo_root" \
  -DSKYLINE_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug
cmake --build "${prefix}-tsan" -j"$jobs" --target skyline_tests
TSAN_OPTIONS="halt_on_error=1" \
  "${prefix}-tsan/tests/skyline_tests" \
  --gtest_filter='Trace*:Metrics*:RunReport*:ExecContext*:ThreadPool*:Partition*:SfsParallel*:ColumnFile*:TableZoneCache*:ZonePrefilter*:BlockIndex*:Bbs*:EngineSession*:Server*:Maintenance*'

echo "== check: server smoke test (ephemeral port, scripted client) =="
# End-to-end over a real socket with the example binaries: start the
# server on an ephemeral port, run a cold query, a cache-hit re-run, an
# INSERT, a post-insert query, and stats, then shut it down cleanly.
cmake --build "$prefix" -j"$jobs" --target skyline_server_bin skyline_client_bin
smoke_out="$(mktemp /tmp/skyline_smoke.XXXXXX)"
"$prefix/examples/skyline_server" --port=0 --allow-shutdown >"$smoke_out" 2>/dev/null &
smoke_pid=$!
trap 'kill "$smoke_pid" 2>/dev/null; rm -f "$smoke_out"' EXIT
for _ in $(seq 50); do
  smoke_port="$(sed -n 's/listening on 127.0.0.1:\([0-9]*\)/\1/p' "$smoke_out")"
  [[ -n "$smoke_port" ]] && break
  sleep 0.1
done
[[ -n "$smoke_port" ]] || { echo "server did not come up"; kill "$smoke_pid"; exit 1; }
client="$prefix/examples/skyline_client"
smoke_q="select * from GoodEats skyline of S max, F max, D max, price min"
"$client" --port="$smoke_port" --no-report "$smoke_q" >/dev/null
"$client" --port="$smoke_port" --no-rows "$smoke_q" | grep -q '"result_cache": "hit"'
"$client" --port="$smoke_port" --no-rows --no-report \
  "INSERT INTO GoodEats VALUES ('Smoke Test Cafe', 25, 26, 22, 21.50)" \
  | grep -q '"table_version": 2'
"$client" --port="$smoke_port" --no-report "$smoke_q" | grep -q "Smoke Test Cafe"
"$client" --port="$smoke_port" --op=stats | grep -q '"patched": 1'
"$client" --port="$smoke_port" --op=shutdown >/dev/null
wait "$smoke_pid"
rm -f "$smoke_out"
trap - EXIT
echo "server smoke test passed"

if [[ "${SKYLINE_CHECK_BENCH:-1}" -eq 1 ]]; then
  echo "== check: benchmark regression gate =="
  # Reuse the plain Release build; 2 repetitions keep the gate quick while
  # letting the best-of wall time absorb one noisy run.
  cmake --build "$prefix" -j"$jobs" --target parallel_sfs_bench
  fresh_json="$(mktemp /tmp/bench_gate.XXXXXX.json)"
  trap 'rm -f "$fresh_json"' EXIT
  SKYLINE_BENCH_REPS=2 "$prefix/bench/parallel_sfs_bench" "$fresh_json"
  python3 "$repo_root/scripts/bench_gate.py" \
    --baseline "$repo_root/BENCH_sfs.json" --fresh "$fresh_json"
fi

echo "check.sh: all suites passed"
