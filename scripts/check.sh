#!/usr/bin/env bash
# Tier-1 verification gate: builds the repo and runs the full test suite
# twice — a plain Release build, then an AddressSanitizer+UBSanitizer build
# (-DSKYLINE_SANITIZE=ON) that catches the memory bugs a green Release run
# can hide (the columnar dominance kernels deliberately read whole SIMD
# vectors at block tails, so every such read must stay inside the padded
# allocation).
#
# Usage: scripts/check.sh [build-dir-prefix]
#   SKYLINE_CHECK_JOBS=N   parallelism for build and ctest (default nproc)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo_root/build}"
jobs="${SKYLINE_CHECK_JOBS:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j"$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
}

echo "== check: plain build =="
run_suite "$prefix"

echo "== check: ASan/UBSan build =="
# halt_on_error is the default via -fno-sanitize-recover=all; detect leaks
# stays on so window/index ownership mistakes surface too.
UBSAN_OPTIONS="print_stacktrace=1" \
run_suite "${prefix}-sanitize" -DSKYLINE_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug

echo "check.sh: all suites passed"
