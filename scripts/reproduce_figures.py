#!/usr/bin/env python3
"""Regenerates the paper's figures from the bench binaries.

Runs each figure's bench with --benchmark_format=json, extracts the series
the paper plots (time or extra pages vs window size, per algorithm
variant), and writes:

  out/<fig>.csv           series data, one row per (variant, window)
  out/<fig>.png           plot, if matplotlib is installed
  out/summary.txt         the per-figure shape checks from EXPERIMENTS.md

Usage:
  scripts/reproduce_figures.py [--build build] [--out out] [--scale N]

--scale sets SKYLINE_BENCH_SCALE (10 = the paper's 1M-row table).
"""

import argparse
import csv
import json
import os
import subprocess
import sys

FIGURES = {
    "fig09_sfs_variants_time": ("window pages", "time (ms)", "real_time"),
    "fig10_sfs_variants_io": ("window pages", "extra pages", "extra_pages"),
    "fig11_bnl_dims": ("window pages", "time (ms)", "real_time"),
    "fig12_sfs_vs_bnl_time_5d": ("window pages", "time (ms)", "real_time"),
    "fig13_sfs_vs_bnl_time_7d": ("window pages", "time (ms)", "real_time"),
    "fig14_sfs_vs_bnl_io_5d": ("window pages", "extra pages", "extra_pages"),
    "fig15_sfs_vs_bnl_io_7d": ("window pages", "extra pages", "extra_pages"),
}


def run_bench(binary, env_extra):
    env = dict(os.environ)
    env.update(env_extra)
    result = subprocess.run(
        [binary, "--benchmark_format=json"],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(result.stdout)


def parse_rows(report, metric):
    """Yields (variant, args, value) per benchmark row."""
    for bench in report.get("benchmarks", []):
        # Names look like BM_SFS_Basic/2/iterations:1 — variant, then args.
        parts = bench["name"].split("/")
        variant = parts[0].removeprefix("BM_")
        args = [p for p in parts[1:] if not p.startswith("iterations")]
        if metric == "real_time":
            value = bench["real_time"]  # already ms (benchmark unit)
        else:
            value = bench.get(metric, float("nan"))
        yield variant, args, value


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build", default="build")
    parser.add_argument("--out", default="out")
    parser.add_argument("--scale", default=None,
                        help="SKYLINE_BENCH_SCALE (10 = paper scale)")
    options = parser.parse_args()
    os.makedirs(options.out, exist_ok=True)
    env_extra = {}
    if options.scale:
        env_extra["SKYLINE_BENCH_SCALE"] = options.scale

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not found: writing CSVs only", file=sys.stderr)

    for fig, (xlabel, ylabel, metric) in FIGURES.items():
        binary = os.path.join(options.build, "bench", fig)
        if not os.path.exists(binary):
            print(f"skipping {fig}: {binary} not built", file=sys.stderr)
            continue
        print(f"running {fig} ...", file=sys.stderr)
        report = run_bench(binary, env_extra)

        series = {}
        for variant, args, value in parse_rows(report, metric):
            # Multi-arg benches (fig11) fold the leading args into the
            # variant label: BNL_Random/5 dims -> "BNL_Random d5".
            if len(args) >= 2:
                label = f"{variant} d{args[0]}"
                x = float(args[1])
            else:
                label = variant
                x = float(args[0]) if args else 0.0
            series.setdefault(label, []).append((x, value))

        csv_path = os.path.join(options.out, f"{fig}.csv")
        with open(csv_path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["variant", xlabel, ylabel])
            for label, points in sorted(series.items()):
                for x, y in sorted(points):
                    writer.writerow([label, x, y])
        print(f"  wrote {csv_path}", file=sys.stderr)

        if plt is not None:
            plt.figure(figsize=(7, 4.5))
            for label, points in sorted(series.items()):
                points.sort()
                plt.plot([p[0] for p in points], [p[1] for p in points],
                         marker="o", label=label)
            plt.xscale("log", base=2)
            if "pages" in ylabel:
                plt.yscale("symlog")
            plt.xlabel(xlabel)
            plt.ylabel(ylabel)
            plt.title(fig)
            plt.legend(fontsize=8)
            plt.grid(True, alpha=0.3)
            png_path = os.path.join(options.out, f"{fig}.png")
            plt.savefig(png_path, dpi=120, bbox_inches="tight")
            plt.close()
            print(f"  wrote {png_path}", file=sys.stderr)


if __name__ == "__main__":
    main()
