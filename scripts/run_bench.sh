#!/usr/bin/env bash
# Builds (Release) and runs the parallel-SFS benchmark, leaving a
# machine-readable BENCH_sfs.json at the repository root.
#
# Usage: scripts/run_bench.sh [--schemes] [--index] [build-dir]
#   --schemes                   add the partition-scheme sweep (simulated
#                               shards; emits the "partition_schemes"
#                               section into BENCH_sfs.json)
#   --index                     add the z-order index sweep (correlated
#                               table, sidecar build time, BBS vs SFS with
#                               index_blocks_skipped; "index" JSON section)
#   SKYLINE_BENCH_SCALE=10      run at the paper's 1M-row scale
#   SKYLINE_BENCH_THREADS=...   comma-separated thread counts (default 1,2,4,8)
#   SKYLINE_BENCH_REPS=N        repetitions per config (default 3)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

schemes=0
index=0
args=()
for arg in "$@"; do
  case "$arg" in
    --schemes) schemes=1 ;;
    --index) index=1 ;;
    *) args+=("$arg") ;;
  esac
done
build_dir="${args[0]:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target parallel_sfs_bench -j"$(nproc)"

if [[ "$schemes" -eq 1 ]]; then
  export SKYLINE_BENCH_SCHEMES=1
fi
if [[ "$index" -eq 1 ]]; then
  export SKYLINE_BENCH_INDEX=1
fi
"$build_dir/bench/parallel_sfs_bench" "$repo_root/BENCH_sfs.json"
