#include "common/exec_context.h"

#include "common/thread_pool.h"

namespace skyline {

size_t ExecContext::ResolveThreads(size_t option_threads) const {
  return ClampThreadsToHardware(RequestedThreads(option_threads));
}

}  // namespace skyline
