#ifndef SKYLINE_COMMON_EXEC_CONTEXT_H_
#define SKYLINE_COMMON_EXEC_CONTEXT_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"

namespace skyline {

/// Per-execution environment every algorithm entry point accepts: the one
/// place a server configures worker threads, temp-file placement,
/// telemetry sinks, and cancellation — superseding the thread knobs that
/// used to be duplicated across SfsOptions / SortOptions / SqlOptions.
///
/// The default-constructed context is the zero-overhead configuration:
/// no metrics, no tracing, no cancellation hook, threads deferred to the
/// per-call options. Sinks are borrowed and must outlive every operation
/// run under the context.
///
/// Thread-knob resolution (pinned by exec_context_test):
///  - `ExecContext::threads` unset (nullopt) defers to the per-call
///    option's own field (the deprecated `SfsOptions::threads` etc.);
///    set, it overrides that field.
///  - At either level the *value* 0 means "one worker per hardware
///    thread"; any other value is taken literally.
///  - The result is always clamped to the hardware concurrency
///    (oversubscription is a strict loss for the block-parallel filter).
///  - User-facing thread selection lives in Session::Options::threads
///    (sql/engine.h), which resolves into this struct's optional in
///    exactly one place (Session::BuildSqlOptions); nothing else
///    translates thread knobs.
struct ExecContext {
  /// Worker threads for every phase run under this context. nullopt =
  /// defer to the per-call options; 0 = one per hardware thread.
  std::optional<size_t> threads;

  /// Temp-file namespace for intermediates. Empty = derive from the
  /// operation's output path (the legacy behavior).
  std::string temp_prefix;

  /// Metrics sink; null = metrics off (handles become inert).
  MetricsRegistry* metrics = nullptr;

  /// Trace sink; null = tracing off (spans become a single branch).
  TraceSink* trace = nullptr;

  /// Polled at phase boundaries and every few thousand rows inside the
  /// long loops; returning true aborts the operation with a kCancelled
  /// status. Null = never cancelled. Must be thread-safe: the parallel
  /// phases poll it from pool workers.
  std::function<bool()> cancelled;

  /// Resolves the worker count for an operation whose (deprecated) options
  /// field carries `option_threads`: context override first, then the
  /// option; 0 = hardware; clamped to hardware.
  size_t ResolveThreads(size_t option_threads) const;

  /// The unclamped request ResolveThreads would clamp — what should be
  /// forwarded into nested options fields that re-resolve later (keeps a
  /// literal `1` meaning "sequential" rather than clamping artifacts).
  size_t RequestedThreads(size_t option_threads) const {
    return threads.has_value() ? *threads : option_threads;
  }

  /// `temp_prefix` if set, else `fallback`.
  const std::string& TempPrefixOr(const std::string& fallback) const {
    return temp_prefix.empty() ? fallback : temp_prefix;
  }

  /// OK, or kCancelled if the hook reports cancellation.
  Status CheckCancelled() const {
    if (cancelled && cancelled()) {
      return Status::Cancelled("operation cancelled by ExecContext hook");
    }
    return Status::OK();
  }

  bool has_cancel_hook() const { return static_cast<bool>(cancelled); }
};

}  // namespace skyline

#endif  // SKYLINE_COMMON_EXEC_CONTEXT_H_
