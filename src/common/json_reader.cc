#include "common/json_reader.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace skyline {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser; positions are tracked for error messages.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SKYLINE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  /// Generous bound: protocol documents nest a handful of levels; a
  /// thousand deep is hostile input, not a query.
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("JSON nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      SKYLINE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue::Null();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      SKYLINE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SKYLINE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      if (!members.emplace(std::move(key), std::move(value)).second) {
        return Error("duplicate object key");
      }
      SkipWhitespace();
      if (Consume('}')) return JsonValue::Object(std::move(members));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      SKYLINE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return JsonValue::Array(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Error("truncated escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape digit");
              }
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed
            // through as two 3-byte sequences — the writer never emits
            // them, and request SQL is plain ASCII in practice).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape character");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  JsonParser parser(text);
  return parser.Parse();
}

}  // namespace skyline
