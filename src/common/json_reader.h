#ifndef SKYLINE_COMMON_JSON_READER_H_
#define SKYLINE_COMMON_JSON_READER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace skyline {

/// Minimal JSON document model, the read-side counterpart of JsonWriter.
/// Built for the server's length-prefixed request/response protocol: small
/// documents, strict parsing (trailing garbage is an error), no streaming.
/// Numbers are kept as doubles (the protocol's integers stay well inside
/// the 2^53 exact range); object keys are unique — a repeated key is a
/// parse error rather than a silent overwrite.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; null when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors with defaults, for tolerant request parsing.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document. InvalidArgument (with offset
/// context) on malformed input, trailing non-whitespace, duplicate object
/// keys, or nesting deeper than an internal sanity bound.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace skyline

#endif  // SKYLINE_COMMON_JSON_READER_H_
