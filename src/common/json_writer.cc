#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace skyline {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent() {
  out_.append(2 * needs_comma_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // Value belongs to the already-emitted "key": prefix.
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    out_ += '\n';
    needs_comma_.back() = true;
    Indent();
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  const bool had_members = needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  const bool had_members = needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (needs_comma_.back()) out_ += ',';
  out_ += '\n';
  needs_comma_.back() = true;
  Indent();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\": ";
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
}

void JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

std::string JsonWriter::TakeString() {
  out_ += '\n';
  return std::move(out_);
}

}  // namespace skyline
