#ifndef SKYLINE_COMMON_JSON_WRITER_H_
#define SKYLINE_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace skyline {

/// Minimal streaming JSON writer: objects, arrays, scalars, proper string
/// escaping, two-space indentation. Used by the RunReport renderer and the
/// benchmark emitters so every JSON artifact the repo produces is built —
/// and escaped — one way.
///
/// Usage is push-based and validated only by construction order; the
/// writer keeps just enough state (container stack + "needs comma") to
/// emit syntactically correct documents when Begin/End calls pair up.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Starts `"key": ` inside an object; follow with a value or Begin*.
  void Key(std::string_view key);

  void Value(std::string_view value);  // quoted + escaped
  void Value(const char* value) { Value(std::string_view(value)); }
  void Value(double value);
  void Value(uint64_t value);
  void Value(int64_t value);
  void Value(int value) { Value(static_cast<int64_t>(value)); }
  void Value(unsigned value) { Value(static_cast<uint64_t>(value)); }
  void Value(bool value);

  /// Convenience: Key + Value.
  template <typename T>
  void KeyValue(std::string_view key, T value) {
    Key(key);
    Value(value);
  }

  /// The finished document (call after the last End*). Ends with '\n'.
  std::string TakeString();

  const std::string& str() const { return out_; }

 private:
  void Indent();
  void BeforeValue();

  std::string out_;
  std::vector<bool> needs_comma_;  // per open container
  bool pending_key_ = false;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace skyline

#endif  // SKYLINE_COMMON_JSON_WRITER_H_
