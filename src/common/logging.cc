#include "common/logging.h"

namespace skyline {
namespace logging_internal {

void DieBecause(const char* file, int line, const std::string& message) {
  std::cerr << "[FATAL " << file << ":" << line << "] " << message
            << std::endl;
  std::abort();
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() { DieBecause(file_, line_, stream_.str()); }

}  // namespace logging_internal
}  // namespace skyline
