#include "common/logging.h"

#include <cstdio>
#include <mutex>
#include <utility>

namespace skyline {
namespace {

std::mutex& HandlerMutex() {
  static std::mutex mu;
  return mu;
}

LogHandler& InstalledHandler() {
  static LogHandler handler;  // empty = default stderr writer
  return handler;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "INFO";
}

}  // namespace

LogHandler SetLogHandler(LogHandler handler) {
  std::lock_guard<std::mutex> lock(HandlerMutex());
  LogHandler previous = std::move(InstalledHandler());
  InstalledHandler() = std::move(handler);
  return previous;
}

void LogMessage(LogLevel level, std::string_view message) {
  LogHandler handler;
  {
    // Copy under the lock, call outside it: a handler that logs (or swaps
    // handlers) must not deadlock.
    std::lock_guard<std::mutex> lock(HandlerMutex());
    handler = InstalledHandler();
  }
  if (handler) {
    handler(level, message);
    return;
  }
  std::fprintf(stderr, "[skyline %s] %.*s\n", LevelName(level),
               static_cast<int>(message.size()), message.data());
}

namespace logging_internal {

void DieBecause(const char* file, int line, const std::string& message) {
  std::cerr << "[FATAL " << file << ":" << line << "] " << message
            << std::endl;
  std::abort();
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() { DieBecause(file_, line_, stream_.str()); }

}  // namespace logging_internal
}  // namespace skyline
