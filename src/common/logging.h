#ifndef SKYLINE_COMMON_LOGGING_H_
#define SKYLINE_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace skyline {

/// Severity of a non-fatal engine log message.
enum class LogLevel { kInfo, kWarning, kError };

/// Process-wide sink for non-fatal engine messages (degraded-parallelism
/// warnings, kernel-override notices, ...). The handler runs on the
/// emitting thread and must be thread-safe.
using LogHandler = std::function<void(LogLevel, std::string_view)>;

/// Installs `handler` as the process-wide log sink and returns the previous
/// one. Pass nullptr to restore the default stderr writer. Server-style
/// embedders use this to capture or silence warnings the library emits.
LogHandler SetLogHandler(LogHandler handler);

/// Emits one message through the installed handler (default: one stderr
/// line, "[skyline WARNING] <message>").
void LogMessage(LogLevel level, std::string_view message);

inline void LogInfo(std::string_view message) {
  LogMessage(LogLevel::kInfo, message);
}
inline void LogWarning(std::string_view message) {
  LogMessage(LogLevel::kWarning, message);
}
inline void LogError(std::string_view message) {
  LogMessage(LogLevel::kError, message);
}

namespace logging_internal {

/// Terminates the process after printing `message` with source location.
/// Used by the CHECK macros; never returns.
[[noreturn]] void DieBecause(const char* file, int line,
                             const std::string& message);

/// Stream-collecting helper so CHECK(x) << "context" works.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace logging_internal

/// CHECK-style invariant assertions. Enabled in all build types: these guard
/// programmer contracts (not user input, which goes through Status).
#define SKYLINE_CHECK(condition)                                       \
  if (!(condition))                                                    \
  ::skyline::logging_internal::FatalMessage(__FILE__, __LINE__, #condition)

#define SKYLINE_CHECK_EQ(a, b) SKYLINE_CHECK((a) == (b))
#define SKYLINE_CHECK_NE(a, b) SKYLINE_CHECK((a) != (b))
#define SKYLINE_CHECK_LT(a, b) SKYLINE_CHECK((a) < (b))
#define SKYLINE_CHECK_LE(a, b) SKYLINE_CHECK((a) <= (b))
#define SKYLINE_CHECK_GT(a, b) SKYLINE_CHECK((a) > (b))
#define SKYLINE_CHECK_GE(a, b) SKYLINE_CHECK((a) >= (b))

/// Checks that a Status-returning expression is OK; for init paths and tests
/// where failure is a bug rather than a recoverable condition.
#define SKYLINE_CHECK_OK(expr)                                        \
  do {                                                                \
    ::skyline::Status _st = (expr);                                   \
    SKYLINE_CHECK(_st.ok()) << _st.ToString();                        \
  } while (0)

}  // namespace skyline

#endif  // SKYLINE_COMMON_LOGGING_H_
