#include "common/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

namespace skyline {
namespace {

std::atomic<uint64_t> g_next_registry_uid{1};

/// Bucket index for a nanosecond value: bucket i holds values whose
/// highest set bit is i (i.e. in (2^(i-1), 2^i] up to rounding); value 0
/// lands in bucket 0.
size_t BucketFor(uint64_t nanos) {
  if (nanos == 0) return 0;
  const size_t bit = 63 - static_cast<size_t>(__builtin_clzll(nanos));
  return std::min(bit, MetricsRegistry::kHistogramBuckets - 1);
}

}  // namespace

struct MetricsRegistry::Registered {
  // Dense-id tables. Maps are only touched under the registry mutex, on
  // the (rare) registration path.
  std::map<std::string, uint32_t, std::less<>> counters;
  std::map<std::string, uint32_t, std::less<>> gauges;
  std::map<std::string, uint32_t, std::less<>> histograms;
};

struct MetricsRegistry::Shard {
  struct HistogramCells {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };

  // Only the owning thread writes these cells; Aggregate() reads them
  // concurrently, which relaxed atomics make race-free (each cell is an
  // independent monotonic count — a torn *set* of cells is at worst a
  // slightly stale snapshot, never a data race).
  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
  std::array<HistogramCells, kMaxHistograms> histograms{};
};

void Counter::Add(uint64_t delta) const {
  if (registry_ == nullptr) return;
  registry_->AddCounter(id_, delta);
}

void Gauge::Set(int64_t value) const {
  if (registry_ == nullptr) return;
  registry_->SetGauge(id_, value);
}

void LatencyHistogram::ObserveNanos(uint64_t nanos) const {
  if (registry_ == nullptr) return;
  registry_->ObserveHistogram(id_, nanos);
}

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)),
      registered_(std::make_unique<Registered>()),
      gauge_values_(kMaxGauges) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard* MetricsRegistry::ShardForThisThread() {
  // Registry-uid keyed cache: uids never recur, so an entry for a
  // destroyed registry can never be matched (its dangling shard pointer is
  // never dereferenced), and a thread touching R registries holds R
  // entries for the process lifetime — fine for the handful of registries
  // a process creates.
  thread_local std::vector<std::pair<uint64_t, Shard*>> cache;
  for (const auto& [uid, shard] : cache) {
    if (uid == uid_) return shard;
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  cache.emplace_back(uid_, shard);
  return shard;
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = registered_->counters.find(name);
  if (it != registered_->counters.end()) return Counter(this, it->second);
  if (registered_->counters.size() >= kMaxCounters) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return Counter();
  }
  const uint32_t id = static_cast<uint32_t>(registered_->counters.size());
  registered_->counters.emplace(std::string(name), id);
  return Counter(this, id);
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = registered_->gauges.find(name);
  if (it != registered_->gauges.end()) return Gauge(this, it->second);
  if (registered_->gauges.size() >= kMaxGauges) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return Gauge();
  }
  const uint32_t id = static_cast<uint32_t>(registered_->gauges.size());
  registered_->gauges.emplace(std::string(name), id);
  return Gauge(this, id);
}

LatencyHistogram MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = registered_->histograms.find(name);
  if (it != registered_->histograms.end()) {
    return LatencyHistogram(this, it->second);
  }
  if (registered_->histograms.size() >= kMaxHistograms) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return LatencyHistogram();
  }
  const uint32_t id = static_cast<uint32_t>(registered_->histograms.size());
  registered_->histograms.emplace(std::string(name), id);
  return LatencyHistogram(this, id);
}

void MetricsRegistry::AddCounter(uint32_t id, uint64_t delta) {
  std::atomic<uint64_t>& cell = ShardForThisThread()->counters[id];
  // Single-writer cell: load+store beats fetch_add (no locked RMW).
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(uint32_t id, int64_t value) {
  gauge_values_[id].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::ObserveHistogram(uint32_t id, uint64_t nanos) {
  Shard::HistogramCells& h = ShardForThisThread()->histograms[id];
  h.count.store(h.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + nanos,
              std::memory_order_relaxed);
  if (nanos < h.min.load(std::memory_order_relaxed)) {
    h.min.store(nanos, std::memory_order_relaxed);
  }
  if (nanos > h.max.load(std::memory_order_relaxed)) {
    h.max.store(nanos, std::memory_order_relaxed);
  }
  std::atomic<uint64_t>& bucket = h.buckets[BucketFor(nanos)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Aggregate() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);

  snapshot.counters.reserve(registered_->counters.size());
  for (const auto& [name, id] : registered_->counters) {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[id].load(std::memory_order_relaxed);
    }
    snapshot.counters.push_back({name, static_cast<int64_t>(total)});
  }

  snapshot.gauges.reserve(registered_->gauges.size());
  for (const auto& [name, id] : registered_->gauges) {
    snapshot.gauges.push_back(
        {name, gauge_values_[id].load(std::memory_order_relaxed)});
  }

  snapshot.histograms.reserve(registered_->histograms.size());
  for (const auto& [name, id] : registered_->histograms) {
    HistogramSnapshot h;
    h.name = name;
    h.min_ns = UINT64_MAX;
    h.buckets.assign(kHistogramBuckets, 0);
    for (const auto& shard : shards_) {
      const Shard::HistogramCells& cells = shard->histograms[id];
      h.count += cells.count.load(std::memory_order_relaxed);
      h.sum_ns += cells.sum.load(std::memory_order_relaxed);
      h.min_ns = std::min(h.min_ns, cells.min.load(std::memory_order_relaxed));
      h.max_ns = std::max(h.max_ns, cells.max.load(std::memory_order_relaxed));
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] += cells.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (h.count == 0) h.min_ns = 0;
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

uint64_t HistogramSnapshot::QuantileNanos(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank || (q >= 1.0 && seen >= count)) {
      // Upper bound of bucket b, clamped into the observed range.
      const uint64_t bound = b >= 63 ? UINT64_MAX : (uint64_t{1} << (b + 1));
      return std::clamp(bound, min_ns, max_ns);
    }
  }
  return max_ns;
}

uint64_t HistogramSnapshot::QuantileEstimateNanos(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank) {
      // Bucket b spans (2^(b-1), 2^b] in the header's convention; the
      // aggregation places a value with highest set bit b in bucket b, so
      // the edges here are [2^b, 2^(b+1)).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double hi =
          b >= 63 ? static_cast<double>(max_ns)
                  : std::ldexp(1.0, static_cast<int>(b) + 1);
      const double fraction =
          std::clamp((rank - before) / static_cast<double>(buckets[b]), 0.0, 1.0);
      const double estimate = lo + fraction * (hi - lo);
      const uint64_t nanos =
          estimate <= 0 ? 0 : static_cast<uint64_t>(estimate);
      return std::clamp(nanos, min_ns, max_ns);
    }
  }
  return max_ns;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const Value& v : counters) {
    if (v.name == name) return static_cast<uint64_t>(v.value);
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const Value& v : gauges) {
    if (v.name == name) return v.value;
  }
  return 0;
}

}  // namespace skyline
