#ifndef SKYLINE_COMMON_METRICS_H_
#define SKYLINE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace skyline {

class MetricsRegistry;

/// Handle to a named monotonic counter. Copyable, trivially destructible;
/// a default-constructed (or null-registry) handle is inert, so call sites
/// pay one branch when metrics are off. Increments are lock-free: each
/// thread writes its own shard cell, and readers aggregate across shards.
class Counter {
 public:
  Counter() = default;

  void Add(uint64_t delta) const;
  void Increment() const { Add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, uint32_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
};

/// Handle to a named gauge (last-set wins). Set is rare (configuration
/// facts: resolved thread count, kernel lanes), so it writes a
/// registry-level atomic rather than a shard.
class Gauge {
 public:
  Gauge() = default;

  void Set(int64_t value) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, uint32_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
};

/// Handle to a named latency histogram (power-of-two nanosecond buckets
/// plus count/sum/min/max). Observations go to the calling thread's shard.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  void ObserveNanos(uint64_t nanos) const;
  void ObserveSeconds(double seconds) const {
    if (seconds < 0) return;
    ObserveNanos(static_cast<uint64_t>(seconds * 1e9));
  }

 private:
  friend class MetricsRegistry;
  LatencyHistogram(MetricsRegistry* registry, uint32_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
};

/// Aggregated histogram state as seen by a reader.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  /// Bucket upper bound is 2^i ns; bucket i counts values in (2^(i-1), 2^i].
  std::vector<uint64_t> buckets;

  /// Upper-bound estimate of the q-quantile (q in [0,1]) from the buckets.
  uint64_t QuantileNanos(double q) const;

  /// Interpolated estimate of the q-quantile: assumes observations are
  /// spread uniformly inside their power-of-two bucket and interpolates
  /// the rank linearly between the bucket edges, clamped to the observed
  /// [min_ns, max_ns]. Tighter than QuantileNanos for wide buckets; the
  /// renderers report this as p50/p90/p99.
  uint64_t QuantileEstimateNanos(double q) const;
};

/// One coherent read of the registry.
struct MetricsSnapshot {
  struct Value {
    std::string name;
    int64_t value = 0;
  };
  std::vector<Value> counters;    // sorted by name
  std::vector<Value> gauges;      // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  /// Counter value by exact name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
  /// Gauge value by exact name; 0 when absent.
  int64_t GaugeValue(std::string_view name) const;
};

/// Registry of named metrics with a lock-free update fast path.
///
/// Layout: registration (name → dense id) takes a mutex and happens once
/// per metric; updates write per-thread shards — fixed-size arrays of
/// relaxed atomics a thread allocates on first touch and owns for writing
/// thereafter — so concurrent workers never contend or false-share a
/// cache line with the registry. Aggregate() walks all shards (including
/// those of exited threads, which the registry retains) and sums.
///
/// Capacity is fixed per shard (kMaxCounters/kMaxGauges/kMaxHistograms);
/// registration past capacity returns an inert handle and bumps a
/// `metrics.overflow` count rather than failing the caller.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxCounters = 160;
  static constexpr size_t kMaxGauges = 32;
  static constexpr size_t kMaxHistograms = 32;
  static constexpr size_t kHistogramBuckets = 64;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent by name: registering the same name twice returns a handle
  /// to the same metric.
  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  LatencyHistogram GetHistogram(std::string_view name);

  /// Sums every thread's shard into one coherent snapshot.
  MetricsSnapshot Aggregate() const;

  /// Registrations rejected because a shard table was full.
  uint64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  friend class Counter;
  friend class Gauge;
  friend class LatencyHistogram;

  struct Shard;
  struct Registered;

  Shard* ShardForThisThread();
  void AddCounter(uint32_t id, uint64_t delta);
  void SetGauge(uint32_t id, int64_t value);
  void ObserveHistogram(uint32_t id, uint64_t nanos);

  const uint64_t uid_;  // process-unique, for the thread-local shard cache
  std::atomic<uint64_t> overflow_{0};
  mutable std::mutex mu_;
  std::unique_ptr<Registered> registered_;           // name tables
  std::vector<std::unique_ptr<Shard>> shards_;       // one per writer thread
  std::vector<std::atomic<int64_t>> gauge_values_;   // registry-level
};

}  // namespace skyline

#endif  // SKYLINE_COMMON_METRICS_H_
