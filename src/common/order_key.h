#ifndef SKYLINE_COMMON_ORDER_KEY_H_
#define SKYLINE_COMMON_ORDER_KEY_H_

#include <cstdint>
#include <cstring>

namespace skyline {

// Order-key transforms: every MIN/MAX criterion, regardless of column
// type, lowers to a signed integer key such that "better" is always
// "signed-greater". This is what lets one columnar kernel serve all
// specs — int32 criteria become int32 keys, everything else becomes
// int64 keys, and dominance over any mix reduces to integer compares.
//
//   int32/int64 MAX:  key = v          (bigger is better)
//   int32/int64 MIN:  key = ~v         (order-reversing bijection)
//   float64:          total-order bits first, then the same ~ for MIN
//   string DIFF:      dictionary code (DIFF needs equality only)

/// Totally ordered int64 image of a double: monotone over all finite
/// values and infinities, with -0.0 < +0.0 strictly (keys -1 and 0) and
/// NaNs ordered by payload beyond the infinities. IEEE-754 doubles with
/// the sign bit clear already compare like integers; negative values
/// compare reversed, so flip their magnitude bits and map them below
/// the non-negatives.
inline int64_t Float64TotalOrderKey(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits >> 63) == 0) {
    return static_cast<int64_t>(bits);
  }
  return static_cast<int64_t>(~bits ^ 0x8000000000000000ULL);
}

/// Inverse of Float64TotalOrderKey; used to materialize synthetic
/// "corner" rows from zone-map bounds.
inline double DoubleFromTotalOrderKey(int64_t key) {
  uint64_t bits = static_cast<uint64_t>(key);
  if ((bits >> 63) == 0) {
    // Non-negative keys came from doubles with the sign bit clear.
  } else {
    bits = ~(bits ^ 0x8000000000000000ULL);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// int32 MIN/MAX order key: signed-greater key == better value.
inline int32_t OrderKey32(int32_t v, bool max) { return max ? v : ~v; }

/// int64 MIN/MAX order key.
inline int64_t OrderKey64(int64_t v, bool max) { return max ? v : ~v; }

/// float64 MIN/MAX order key through the total order.
inline int64_t OrderKeyFromDouble(double v, bool max) {
  const int64_t k = Float64TotalOrderKey(v);
  return max ? k : ~k;
}

/// Three-way compare of doubles under the total order (the engine-wide
/// comparison semantics for kFloat64 columns; row and columnar paths
/// must agree bit-for-bit, including NaN and -0.0/+0.0).
inline int CompareDoubleTotalOrder(double a, double b) {
  const int64_t ka = Float64TotalOrderKey(a);
  const int64_t kb = Float64TotalOrderKey(b);
  return ka < kb ? -1 : (ka > kb ? 1 : 0);
}

}  // namespace skyline

#endif  // SKYLINE_COMMON_ORDER_KEY_H_
