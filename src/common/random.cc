#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace skyline {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  SKYLINE_CHECK_GT(n, 0u);
  // Rejection sampling over the largest multiple of n that fits in 64 bits.
  const uint64_t threshold = (0 - n) % n;  // == 2^64 mod n
  uint64_t r = Next();
  while (r < threshold) r = Next();
  return r % n;
}

int32_t Random::UniformInt32() {
  return static_cast<int32_t>(static_cast<uint32_t>(Next() >> 32));
}

int32_t Random::UniformInt32(int32_t lo, int32_t hi) {
  SKYLINE_CHECK_LE(lo, hi);
  const uint64_t span =
      static_cast<uint64_t>(static_cast<int64_t>(hi) - lo) + 1;
  return static_cast<int32_t>(lo + static_cast<int64_t>(Uniform(span)));
}

double Random::UniformDouble() {
  // 53 random mantissa bits scaled to [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

bool Random::OneIn(double p) { return UniformDouble() < p; }

}  // namespace skyline
