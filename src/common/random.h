#ifndef SKYLINE_COMMON_RANDOM_H_
#define SKYLINE_COMMON_RANDOM_H_

#include <cstdint>

namespace skyline {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
/// Used by the data generators and tests so experiments are reproducible
/// across platforms — std::mt19937 distributions are not portable across
/// standard library implementations, so we implement our own draws.
class Random {
 public:
  /// Seeds the state via SplitMix64 so that small seeds (0, 1, 2, ...)
  /// produce well-mixed, independent streams.
  explicit Random(uint64_t seed);

  Random(const Random&) = default;
  Random& operator=(const Random&) = default;

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  uint64_t Uniform(uint64_t n);

  /// Uniform int32 over the full range [INT32_MIN, INT32_MAX], matching the
  /// paper's "-MAXINT to MAXINT" attribute distribution.
  int32_t UniformInt32();

  /// Uniform int32 in [lo, hi] inclusive.
  int32_t UniformInt32(int32_t lo, int32_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal draw (Marsaglia polar method).
  double Gaussian();

  /// Bernoulli draw with probability p of returning true.
  bool OneIn(double p);

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace skyline

#endif  // SKYLINE_COMMON_RANDOM_H_
