#include "common/status.h"

namespace skyline {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace skyline
