#ifndef SKYLINE_COMMON_STATUS_H_
#define SKYLINE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace skyline {

/// Error-handling vocabulary for the whole library. The project does not use
/// exceptions (per the Google style guide); every fallible operation returns
/// a Status, or a Result<T> when it also produces a value.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kIoError,
  kCorruption,
  kNotSupported,
  kInternal,
  /// The operation was aborted by an ExecContext cancellation hook before
  /// completing. Partial outputs must be treated as invalid.
  kCancelled,
};

/// Human-readable name for a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-type status: a code plus an optional message. Cheap to copy in the
/// OK case (empty message). Modeled on absl::Status / rocksdb::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Result<T> carries either a value or an error Status. A lightweight
/// absl::StatusOr analogue sufficient for this library.
template <typename T>
class Result {
 public:
  /// Implicit conversions from both T and Status keep call sites readable:
  ///   Result<int> F() { if (bad) return Status::InvalidArgument("..."); ... }
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    // An OK status without a value is a contract violation; normalize it to
    // an internal error so callers never see ok() with no value.
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  /// Value accessors; must only be called when ok().
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define SKYLINE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::skyline::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise assigns the value to `lhs`.
#define SKYLINE_ASSIGN_OR_RETURN(lhs, expr)      \
  SKYLINE_ASSIGN_OR_RETURN_IMPL_(                \
      SKYLINE_STATUS_CONCAT_(_result_, __LINE__), lhs, expr)

#define SKYLINE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define SKYLINE_STATUS_CONCAT_(a, b) SKYLINE_STATUS_CONCAT_IMPL_(a, b)
#define SKYLINE_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace skyline

#endif  // SKYLINE_COMMON_STATUS_H_
