#include "common/thread_pool.h"

#include <atomic>
#include <algorithm>
#include <chrono>
#include <exception>

#include "common/logging.h"

namespace skyline {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SKYLINE_CHECK(!shutting_down_) << "Submit on a destroyed ThreadPool";
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();  // packaged_task captures exceptions into its future
    const auto elapsed = std::chrono::steady_clock::now() - start;
    busy_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ResolveThreadCount(size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t ClampThreads(size_t threads, size_t hardware) {
  const size_t hw = std::max<size_t>(1, hardware);
  const size_t requested = threads == 0 ? hw : threads;
  return std::min(requested, hw);
}

size_t ClampThreadsToHardware(size_t threads) {
  return ClampThreads(threads, std::thread::hardware_concurrency());
}

namespace {

/// Shared state of one ParallelFor call. Helper tasks hold it by
/// shared_ptr so a helper scheduled long after the loop finished (pool
/// backlog) still runs safely as a no-op.
///
/// The caller's exit condition is deliberately NOT "all helpers exited":
/// with every worker blocked inside its own ParallelFor (nested use), the
/// queued helpers would never get scheduled and such a wait deadlocks.
/// Instead the caller waits until the claim counter is exhausted (or the
/// loop cancelled) and no claimant is still inside `fn` — a helper that
/// never runs never claims work, so it can't be waited on.
struct ParallelForState {
  std::atomic<size_t> next{0};
  size_t count = 0;
  size_t grain = 1;
  const std::function<void(size_t)>* fn = nullptr;

  std::mutex mu;
  std::condition_variable idle;
  /// Claimants currently executing `fn` (guarded by mu). Incremented
  /// *before* the claim so the caller can never observe "counter exhausted,
  /// nobody running" while a helper sits between claiming and running.
  size_t running = 0;
  std::exception_ptr error;
  std::atomic<bool> cancelled{false};

  /// Claims and runs grains until the counter is exhausted (or the loop is
  /// cancelled by an exception elsewhere).
  void RunLoop() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++running;
      }
      const size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) {
        Leave();
        return;
      }
      const size_t end = std::min(count, begin + grain);
      for (size_t i = begin; i < end; ++i) {
        try {
          (*fn)(i);
        } catch (...) {
          cancelled.store(true, std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lock(mu);
            if (!error) error = std::current_exception();
          }
          Leave();
          return;
        }
      }
      Leave();
    }
  }

  bool Done() const {
    return running == 0 && (cancelled.load(std::memory_order_relaxed) ||
                            next.load(std::memory_order_relaxed) >= count);
  }

 private:
  void Leave() {
    std::lock_guard<std::mutex> lock(mu);
    if (--running == 0) idle.notify_all();
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn, size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || pool->num_threads() <= 1 || count <= grain) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->count = count;
  state->grain = grain;
  state->fn = &fn;

  // One helper per worker beyond the caller, never more than could claim a
  // grain. Helpers are fire-and-forget: completion is tracked by the grain
  // counter plus the running-claimant count, NOT by futures or helper
  // exits, so helpers that never get scheduled (saturated pool) cannot
  // block the caller.
  const size_t max_helpers =
      std::min(pool->num_threads(), (count + grain - 1) / grain - 1);
  for (size_t h = 0; h < max_helpers; ++h) {
    // A late helper (scheduled after the loop finished) sees the exhausted
    // counter before ever touching `fn`, so it only reads the shared state
    // it co-owns.
    pool->Submit([state]() { state->RunLoop(); });
  }

  state->RunLoop();  // the caller always participates

  std::unique_lock<std::mutex> lock(state->mu);
  state->idle.wait(lock, [&]() { return state->Done(); });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace skyline
