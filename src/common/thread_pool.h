#ifndef SKYLINE_COMMON_THREAD_POOL_H_
#define SKYLINE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace skyline {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
///
/// The pool is the process's unit of parallelism for the engine: the
/// external sorter sorts in-memory runs and merges run groups on it, and
/// the block-parallel SFS filter runs one task per input block. Tasks may
/// submit further tasks (the new task is queued; the submitter does not
/// block), but a task must never *wait* on a task it submitted to the same
/// pool — with every worker blocked in such a wait the queued task could
/// never start. Use ParallelFor for nested data-parallel loops instead:
/// its caller participates in the loop, so it never deadlocks even when
/// the pool is saturated.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: joins after finishing every queued task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured and rethrown from future::get().
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  size_t num_threads() const { return threads_.size(); }

  /// Tasks queued but not yet claimed by a worker (for tests/telemetry).
  size_t QueueDepth() const;

  /// Cumulative busy-worker accounting since construction. Monotone;
  /// sample before and after a phase and divide the busy-nanosecond delta
  /// by the phase's wall time to get the phase's average busy workers
  /// (pool workers only — a caller participating via ParallelFor adds up
  /// to one more worker the totals do not see).
  struct BusyTotals {
    uint64_t busy_nanos = 0;
    uint64_t tasks_executed = 0;
  };
  BusyTotals Totals() const {
    return {busy_nanos_.load(std::memory_order_relaxed),
            tasks_executed_.load(std::memory_order_relaxed)};
  }

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutting_down_ = false;
  std::atomic<uint64_t> busy_nanos_{0};
  std::atomic<uint64_t> tasks_executed_{0};
};

/// Number of workers to use for `threads` requested: 0 means "one per
/// hardware thread", anything else is taken literally.
size_t ResolveThreadCount(size_t threads);

/// Pure clamp policy: resolves `threads` (0 = one per hardware thread)
/// against a machine with `hardware` hardware threads and never returns
/// more than `hardware` (or less than 1). Oversubscribing cores makes the
/// block-parallel filter strictly slower — each extra block re-filters its
/// own sample of the stream and inflates the all-pairs merge — so requests
/// beyond the hardware are capped, and a cap of 1 should send callers to
/// the sequential algorithm.
size_t ClampThreads(size_t threads, size_t hardware);

/// ClampThreads against this machine's std::thread::hardware_concurrency()
/// (treated as 1 when the runtime reports 0).
size_t ClampThreadsToHardware(size_t threads);

/// Runs `fn(i)` for every i in [0, count), distributing iterations over
/// `pool` (which may be null → fully inline). The calling thread always
/// participates, claiming iterations from a shared counter, so the loop
/// completes even if the pool is saturated or `fn` is called from inside a
/// pool task; helper tasks that start after the counter is exhausted are
/// no-ops. Blocks until every iteration has finished. The first exception
/// thrown by any iteration is rethrown in the caller (remaining iterations
/// are abandoned, in-flight ones finish).
///
/// `grain` is the number of consecutive iterations claimed at once; tune it
/// so one grain amortizes the atomic fetch (default 1 suits coarse bodies).
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn, size_t grain = 1);

}  // namespace skyline

#endif  // SKYLINE_COMMON_THREAD_POOL_H_
