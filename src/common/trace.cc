#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/json_writer.h"

namespace skyline {
namespace {

/// Per-thread span nesting depth. Global per thread (not per sink): spans
/// nest lexically on their thread regardless of which sink they feed, and
/// a single counter keeps the inert path free of any sink bookkeeping.
thread_local uint32_t tls_span_depth = 0;

std::atomic<uint32_t> g_next_thread_id{0};

}  // namespace

uint64_t TraceClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t TraceThreadId() {
  thread_local uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceSink::Record(const char* name, int64_t suffix, uint32_t depth,
                       uint64_t start_ns, uint64_t end_ns) {
  if (!enabled()) return;
  TraceEvent event;
  int wanted;
  if (suffix >= 0) {
    wanted = std::snprintf(event.name, TraceEvent::kNameCapacity, "%s-%lld",
                           name, static_cast<long long>(suffix));
  } else {
    wanted = std::snprintf(event.name, TraceEvent::kNameCapacity, "%s", name);
  }
  if (wanted >= static_cast<int>(TraceEvent::kNameCapacity)) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
  }
  event.thread_id = TraceThreadId();
  event.depth = depth;
  event.start_ns = start_ns;
  event.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;

  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once full, `next_` is the oldest slot; before that the ring is in
  // insertion order from index 0.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

size_t TraceSink::CountSpans(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const TraceEvent& event : ring_) {
    if (event.name_view() == name) ++count;
  }
  return count;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  truncated_.store(0, std::memory_order_relaxed);
}

std::string TraceSink::ExportChromeTrace() const {
  const std::vector<TraceEvent> events = Snapshot();

  std::vector<uint32_t> thread_ids;
  thread_ids.reserve(events.size());
  for (const TraceEvent& event : events) thread_ids.push_back(event.thread_id);
  std::sort(thread_ids.begin(), thread_ids.end());
  thread_ids.erase(std::unique(thread_ids.begin(), thread_ids.end()),
                   thread_ids.end());

  // Rebase timestamps to the earliest span: absolute monotonic nanoseconds
  // overflow the writer's 9 significant digits once converted to µs, which
  // would quantise every ts to the same value.
  uint64_t epoch_ns = events.empty() ? 0 : events.front().start_ns;
  for (const TraceEvent& event : events) {
    epoch_ns = std::min(epoch_ns, event.start_ns);
  }

  JsonWriter json;
  json.BeginObject();
  json.KeyValue("displayTimeUnit", "ms");
  json.Key("traceEvents");
  json.BeginArray();
  for (uint32_t tid : thread_ids) {
    json.BeginObject();
    json.KeyValue("name", "thread_name");
    json.KeyValue("ph", "M");
    json.KeyValue("pid", uint64_t{0});
    json.KeyValue("tid", static_cast<uint64_t>(tid));
    json.Key("args");
    json.BeginObject();
    json.KeyValue("name", "skyline-thread-" + std::to_string(tid));
    json.EndObject();
    json.EndObject();
  }
  for (const TraceEvent& event : events) {
    json.BeginObject();
    json.KeyValue("name", event.name_view());
    json.KeyValue("cat", "skyline");
    json.KeyValue("ph", "X");
    // Trace-event timestamps are microseconds; keep sub-µs precision as
    // fractional values (the viewers accept doubles).
    json.KeyValue("ts", static_cast<double>(event.start_ns - epoch_ns) / 1e3);
    json.KeyValue("dur", static_cast<double>(event.duration_ns) / 1e3);
    json.KeyValue("pid", uint64_t{0});
    json.KeyValue("tid", static_cast<uint64_t>(event.thread_id));
    json.Key("args");
    json.BeginObject();
    json.KeyValue("depth", static_cast<uint64_t>(event.depth));
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

TraceSpan::TraceSpan(TraceSink* sink, const char* name, int64_t suffix)
    : sink_(sink != nullptr && sink->enabled() ? sink : nullptr) {
  if (sink_ == nullptr) return;  // inert: no clock read, no allocation
  name_ = name;
  suffix_ = suffix;
  depth_ = tls_span_depth++;
  start_ns_ = TraceClockNanos();
}

void TraceSpan::End() {
  if (sink_ == nullptr) return;
  sink_->Record(name_, suffix_, depth_, start_ns_, TraceClockNanos());
  --tls_span_depth;
  sink_ = nullptr;
}

TraceSpan::~TraceSpan() { End(); }

}  // namespace skyline
