#ifndef SKYLINE_COMMON_TRACE_H_
#define SKYLINE_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace skyline {

/// One completed span in the trace log. `name` is a fixed-size copy so the
/// ring buffer owns its bytes (no lifetime coupling to the emitting phase)
/// and formatted names like "filter-pass-3" need no heap allocation.
struct TraceEvent {
  static constexpr size_t kNameCapacity = 32;

  char name[kNameCapacity];
  /// Process-wide stable id of the emitting thread (small, dense).
  uint32_t thread_id;
  /// Nesting depth of the span on its thread at the time it was opened
  /// (0 = outermost). Reconstructs the phase tree.
  uint32_t depth;
  /// Monotonic-clock nanoseconds (TraceClockNanos) at span open / duration.
  uint64_t start_ns;
  uint64_t duration_ns;

  std::string_view name_view() const { return {name}; }
};

/// Monotonic-clock nanoseconds (std::chrono::steady_clock); the time base
/// for every TraceEvent.
uint64_t TraceClockNanos();

/// Dense process-wide id of the calling thread, assigned on first use.
uint32_t TraceThreadId();

/// Thread-safe ring buffer of completed spans.
///
/// Recording is append-only under a mutex — spans are phase-grained
/// (presort, merge level, filter pass), so contention is negligible; the
/// hot-path guarantee the engine relies on is different: a *disabled* sink
/// (or a null sink pointer) makes TraceSpan construction a single branch
/// with no clock read and no allocation.
///
/// When the buffer is full the oldest events are overwritten; `dropped()`
/// reports how many were lost so reports can say the log is truncated.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 4096);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Runtime master switch. Disabling stops Record() and makes spans inert
  /// without detaching the sink from an ExecContext.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed span. `suffix` >= 0 renders the name as
  /// "<name>-<suffix>" (e.g. "filter-pass", 2 → "filter-pass-2").
  void Record(const char* name, int64_t suffix, uint32_t depth,
              uint64_t start_ns, uint64_t end_ns);

  /// Events currently held, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Spans whose name matches `name` exactly, across the held events.
  size_t CountSpans(std::string_view name) const;

  /// Renders the held events as a Chrome/Perfetto trace document
  /// (chrome://tracing "trace event format"): one complete-duration "X"
  /// record per span with microsecond timestamps, `tid` = TraceThreadId,
  /// and the nesting depth under `args`, plus one "M" thread_name record
  /// per thread. Load the string into ui.perfetto.dev as trace.json.
  std::string ExportChromeTrace() const;

  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Spans whose name did not fit TraceEvent::kNameCapacity and was cut
  /// short; the event is still recorded with the truncated name.
  uint64_t truncated() const {
    return truncated_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  void Clear();

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> truncated_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;  // ring_ write position once the buffer is full
};

/// RAII scoped span. Construct at phase entry; the destructor records the
/// event. With a null or disabled sink the constructor is one branch: no
/// clock read, no allocation, nothing recorded (the disabled-overhead
/// contract benchmarks rely on).
///
/// Depth is tracked per thread, so spans nest naturally across the pool
/// workers each phase fans out to.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, const char* name) : TraceSpan(sink, name, -1) {}

  /// Names the span "<name>-<suffix>" (suffix >= 0), e.g. per-pass spans.
  TraceSpan(TraceSink* sink, const char* name, int64_t suffix);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

  /// Records the span now (idempotent); useful to end a phase before the
  /// enclosing scope does.
  void End();

 private:
  TraceSink* sink_;  // null when inert
  const char* name_ = nullptr;
  int64_t suffix_ = -1;
  uint32_t depth_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_COMMON_TRACE_H_
