#include "core/bbs.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "common/stopwatch.h"
#include "core/canonical_key.h"
#include "core/dominance_batch.h"
#include "core/scoring.h"
#include "index/block_index.h"

namespace skyline {
namespace {

/// Per-criterion "badness": 0 for the best possible value, monotonically
/// increasing as the value worsens, in the full uint64 range. Built from
/// the canonical ascending key k: flip to preferred-ascending (k for MAX,
/// ~k for MIN), bias to unsigned, complement. A strict dominator is
/// strictly better on some criterion and no worse anywhere, so its badness
/// vector is componentwise <= with one summand strictly smaller — its
/// mindist (the exact sum, no rounding: 128-bit) is *strictly* smaller.
/// That strict monotonicity is what makes the pop-order argument sound.
uint64_t Badness(int64_t canonical_key, bool max) {
  const int64_t flipped = max ? canonical_key : ~canonical_key;
  const uint64_t biased =
      static_cast<uint64_t>(flipped) ^ 0x8000000000000000ULL;
  return ~biased;
}

using Mindist = unsigned __int128;

enum class EntryKind : uint8_t { kNode, kLeaf, kPoint };

struct HeapEntry {
  Mindist mindist = 0;
  /// Push sequence: deterministic FIFO tie-break for equal mindists.
  uint64_t seq = 0;
  EntryKind kind = EntryKind::kNode;
  uint32_t level = 0;  // kNode only
  /// Node index within level / block id / point slot, by kind.
  uint64_t id = 0;
};

struct HeapGreater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.mindist != b.mindist) return a.mindist > b.mindist;
    return a.seq > b.seq;
  }
};

/// The branch-and-bound scan state: spec layout, constraint bounds mapped
/// per column, the growing skyline in a columnar dominance index, and the
/// heap.
class BbsScan {
 public:
  BbsScan(const Table& input, const SkylineSpec& spec,
          std::shared_ptr<const TableColumnZones> zones,
          const BbsOptions& options, const ExecContext& ctx,
          SkylineRunStats* stats)
      : input_(input),
        spec_(spec),
        zones_(std::move(zones)),
        index_(zones_->block_index.get()),
        options_(options),
        ctx_(ctx),
        stats_(stats),
        sky_(&spec),
        row_width_(spec.schema().row_width()),
        corner_row_(row_width_, '\0') {
    // Per-column constraint intervals, dense for O(1) corner clamping.
    lo_.assign(spec.schema().num_columns(),
               std::numeric_limits<int64_t>::min());
    hi_.assign(spec.schema().num_columns(),
               std::numeric_limits<int64_t>::max());
    for (const auto& b : options.constraint.bounds) {
      lo_[b.column] = std::max(lo_[b.column], b.lo);
      hi_[b.column] = std::min(hi_[b.column], b.hi);
    }
  }

  Status Run();

  /// Emitted skyline rows (dense row_width-strided) and their input-file
  /// row indices, in emission (mindist) order.
  const std::vector<char>& result_rows() const { return result_rows_; }
  const std::vector<uint64_t>& result_input_index() const {
    return result_input_index_;
  }

 private:
  /// Corner key of (node/leaf) column c — the componentwise best value any
  /// in-box row under the entry can take: the zone bound clamped into the
  /// constraint interval. Only called for entries whose box intersects
  /// every constraint interval, so the clamp never empties.
  int64_t CornerKey(int64_t zmin, int64_t zmax, size_t column,
                    bool max) const {
    const int64_t best = max ? std::min(zmax, hi_[column])
                             : std::max(zmin, lo_[column]);
    return best;
  }

  /// True when [zmin, zmax] misses some constraint interval — no row under
  /// the entry can satisfy the box, so the subtree is skipped outright.
  bool OutsideConstraint(const int64_t* zmin, const int64_t* zmax) const {
    for (const auto& b : options_.constraint.bounds) {
      if (zmin[b.column] > hi_[b.column] || zmax[b.column] < lo_[b.column]) {
        return true;
      }
    }
    return false;
  }

  /// Materializes the entry's clamped corner row into corner_row_ and its
  /// mindist. `zmin`/`zmax` point at the entry's per-column corners
  /// (stride_index pre-applied by the caller for nodes).
  Mindist BuildCorner(const int64_t* zmin, const int64_t* zmax);

  /// Mindist of a concrete row.
  Mindist RowMindist(const char* row) const;

  /// True when the skyline found so far strictly dominates `row` (a corner
  /// or a point).
  bool DominatedBySkyline(const char* row) const {
    DominanceIndex::Probe probe;
    sky_.EncodeProbe(row, &probe);
    return sky_.AnyEntryDominates(probe, sky_.size());
  }

  void Push(HeapEntry e) {
    e.seq = next_seq_++;
    heap_.push(e);
    if (heap_.size() > stats_->heap_peak) stats_->heap_peak = heap_.size();
  }

  /// Copies block `block`'s per-column zone corners into leaf_zmin_ /
  /// leaf_zmax_ scratch.
  void GatherLeafCorners(uint64_t block) {
    const size_t ncols = zones_->columns.size();
    leaf_zmin_.resize(ncols);
    leaf_zmax_.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      leaf_zmin_[c] = zones_->columns[c].zmin[block];
      leaf_zmax_[c] = zones_->columns[c].zmax[block];
    }
  }

  Status PushNodeChildren(uint32_t level, uint64_t node);
  Status PushLeafChild(size_t slot);
  Status ReadLeaf(uint64_t block);

  const Table& input_;
  const SkylineSpec& spec_;
  std::shared_ptr<const TableColumnZones> zones_;
  const BlockSkylineIndex* index_;
  const BbsOptions& options_;
  const ExecContext& ctx_;
  SkylineRunStats* stats_;

  DominanceIndex sky_;
  const size_t row_width_;
  std::vector<char> corner_row_;
  std::vector<int64_t> lo_, hi_;
  std::vector<int64_t> leaf_zmin_, leaf_zmax_;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap_;
  uint64_t next_seq_ = 0;

  /// Candidate point storage, referenced by heap entries by slot.
  std::vector<char> point_rows_;
  std::vector<uint64_t> point_input_index_;

  std::unique_ptr<HeapFileReader> reader_;
  uint64_t blocks_read_ = 0;

  std::vector<char> result_rows_;
  std::vector<uint64_t> result_input_index_;
};

Mindist BbsScan::BuildCorner(const int64_t* zmin, const int64_t* zmax) {
  std::memset(corner_row_.data(), 0, corner_row_.size());
  Mindist mindist = 0;
  const auto& value_cols = spec_.value_columns();
  const auto& dom_values = spec_.dom_value_columns();
  for (size_t i = 0; i < value_cols.size(); ++i) {
    const size_t c = value_cols[i].column;
    const auto& dc = dom_values[i];
    const int64_t key = CornerKey(zmin[c], zmax[c], c, dc.max);
    WriteCanonicalKeyAsRaw(dc.type, key, corner_row_.data() + dc.offset);
    mindist += Badness(key, dc.max);
  }
  return mindist;
}

Mindist BbsScan::RowMindist(const char* row) const {
  Mindist mindist = 0;
  for (const auto& dc : spec_.dom_value_columns()) {
    mindist += Badness(CanonicalKeyOf(dc.type, row + dc.offset), dc.max);
  }
  return mindist;
}

Status BbsScan::PushNodeChildren(uint32_t level, uint64_t node) {
  if (level == 0) {
    const size_t begin = static_cast<size_t>(node) * index_->fanout;
    const size_t count = index_->ChildCount(0, node);
    for (size_t s = begin; s < begin + count; ++s) {
      SKYLINE_RETURN_IF_ERROR(PushLeafChild(s));
    }
    return Status::OK();
  }
  const uint32_t child_level = level - 1;
  const auto& below = index_->levels[child_level];
  const size_t ncols = index_->num_columns;
  const size_t begin = static_cast<size_t>(node) * index_->fanout;
  const size_t count = index_->ChildCount(level, node);
  for (size_t n = begin; n < begin + count; ++n) {
    const int64_t* zmin = below.zmin.data() + n * ncols;
    const int64_t* zmax = below.zmax.data() + n * ncols;
    if (OutsideConstraint(zmin, zmax)) continue;
    HeapEntry e;
    e.mindist = BuildCorner(zmin, zmax);
    e.kind = EntryKind::kNode;
    e.level = child_level;
    e.id = n;
    Push(e);
  }
  return Status::OK();
}

Status BbsScan::PushLeafChild(size_t slot) {
  const uint32_t block = index_->leaf_blocks[slot];
  // Gather the leaf's per-column corners from the zone maps.
  GatherLeafCorners(block);
  if (OutsideConstraint(leaf_zmin_.data(), leaf_zmax_.data())) {
    return Status::OK();
  }
  HeapEntry e;
  e.mindist = BuildCorner(leaf_zmin_.data(), leaf_zmax_.data());
  e.kind = EntryKind::kLeaf;
  e.id = block;
  Push(e);
  return Status::OK();
}

Status BbsScan::ReadLeaf(uint64_t block) {
  const Schema& schema = spec_.schema();
  const uint64_t base = block * zones_->block_rows;
  const uint64_t end =
      std::min<uint64_t>(base + zones_->block_rows, zones_->row_count);
  if (reader_ == nullptr) {
    reader_ = input_.NewReader(nullptr);
    SKYLINE_RETURN_IF_ERROR(reader_->Open());
  }
  SKYLINE_RETURN_IF_ERROR(reader_->SeekToRecord(base));
  ++blocks_read_;
  for (uint64_t i = base; i < end; ++i) {
    const char* row = reader_->Next();
    if (row == nullptr) {
      return !reader_->status().ok()
                 ? reader_->status()
                 : Status::Corruption("table ended before block " +
                                      std::to_string(block));
    }
    if (!options_.constraint.empty() &&
        !options_.constraint.Matches(schema, row)) {
      continue;
    }
    // Pre-filter against the current skyline: a dominated row can never
    // resurface. Survivors still get the authoritative re-test at pop
    // time (the skyline may have grown by then).
    if (DominatedBySkyline(row)) continue;
    HeapEntry e;
    e.mindist = RowMindist(row);
    e.kind = EntryKind::kPoint;
    e.id = point_input_index_.size();
    point_rows_.insert(point_rows_.end(), row, row + row_width_);
    point_input_index_.push_back(i);
    Push(e);
  }
  return Status::OK();
}

Status BbsScan::Run() {
  // Seed the heap with the root level's nodes.
  if (index_->leaf_count() > 0) {
    const uint32_t root_level =
        static_cast<uint32_t>(index_->levels.size() - 1);
    const auto& roots = index_->levels[root_level];
    const size_t ncols = index_->num_columns;
    const size_t root_nodes = index_->LevelNodeCount(root_level);
    for (size_t n = 0; n < root_nodes; ++n) {
      const int64_t* zmin = roots.zmin.data() + n * ncols;
      const int64_t* zmax = roots.zmax.data() + n * ncols;
      if (OutsideConstraint(zmin, zmax)) continue;
      HeapEntry e;
      e.mindist = BuildCorner(zmin, zmax);
      e.kind = EntryKind::kNode;
      e.level = root_level;
      e.id = n;
      Push(e);
    }
  }

  const bool poll_cancel = ctx_.has_cancel_hook();
  uint64_t pops = 0;
  while (!heap_.empty()) {
    const HeapEntry e = heap_.top();
    heap_.pop();
    if (poll_cancel && (++pops & 4095u) == 0) {
      SKYLINE_RETURN_IF_ERROR(ctx_.CheckCancelled());
    }
    switch (e.kind) {
      case EntryKind::kPoint: {
        const char* row = point_rows_.data() + e.id * row_width_;
        // Authoritative dominance test: every potential dominator has
        // strictly smaller mindist (see Badness), so it either already
        // sits in the skyline index or was under a pruned entry — and a
        // pruned entry's prover dominates this row transitively.
        if (DominatedBySkyline(row)) break;
        sky_.Append(row);
        result_rows_.insert(result_rows_.end(), row, row + row_width_);
        result_input_index_.push_back(point_input_index_[e.id]);
        break;
      }
      case EntryKind::kLeaf: {
        ++stats_->index_nodes_visited;
        GatherLeafCorners(e.id);
        BuildCorner(leaf_zmin_.data(), leaf_zmax_.data());
        if (DominatedBySkyline(corner_row_.data())) break;
        SKYLINE_RETURN_IF_ERROR(ReadLeaf(e.id));
        break;
      }
      case EntryKind::kNode: {
        ++stats_->index_nodes_visited;
        const auto& level = index_->levels[e.level];
        const size_t ncols = index_->num_columns;
        BuildCorner(level.zmin.data() + e.id * ncols,
                    level.zmax.data() + e.id * ncols);
        if (DominatedBySkyline(corner_row_.data())) break;
        SKYLINE_RETURN_IF_ERROR(PushNodeChildren(e.level, e.id));
        break;
      }
    }
  }

  stats_->index_blocks_skipped = index_->leaf_count() - blocks_read_;
  stats_->dominance_kernel = sky_.columnar() ? sky_.kernel_name() : "row";
  stats_->dict_probe_hits = sky_.dict_probe_hits();
  return Status::OK();
}

}  // namespace

bool BbsCandidate(const Table& input, const SkylineSpec& spec) {
  if (spec.has_diff()) return false;
  if (!input.env()->FileExists(BlockIndexPathFor(input.path()))) return false;
  DominanceIndex probe(&spec);
  return probe.columnar();
}

bool BbsUsable(const SkylineSpec& spec, const TableColumnZones* zones) {
  if (spec.has_diff()) return false;
  if (zones == nullptr || zones->block_index == nullptr) return false;
  if (zones->block_rows != DominanceIndex::kBlockEntries) return false;
  if (zones->columns.size() != spec.schema().num_columns()) return false;
  DominanceIndex probe(&spec);
  return probe.columnar();
}

Result<Table> ComputeSkylineBbs(const Table& input, const SkylineSpec& spec,
                                std::shared_ptr<const TableColumnZones> zones,
                                const BbsOptions& options,
                                const ExecContext& ctx,
                                const std::string& output_path,
                                SkylineRunStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  if (!BbsUsable(spec, zones.get())) {
    return Status::InvalidArgument(
        "BBS needs a loaded block index and a columnar-capable spec without "
        "DIFF columns");
  }
  if (zones->row_count != input.row_count() ||
      zones->block_index->row_count != input.row_count()) {
    return Status::InvalidArgument(
        "block index does not describe this table version");
  }
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;
  *s = SkylineRunStats{};
  s->input_rows = input.row_count();
  s->passes = 1;
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  Stopwatch filter_timer;
  TraceSpan span(ctx.trace, "bbs-scan");
  BbsScan scan(input, spec, zones, options, ctx, s);
  SKYLINE_RETURN_IF_ERROR(scan.Run());
  span.End();

  // Re-sort the emitted skyline into the presort's monotone order: the
  // exact order SFS would emit, with ties (rows equal on every skyline
  // attribute) broken by input position — which is also how a stable
  // presort leaves them. kNone keeps input-file order (a skyline is a
  // subsequence of its input, and kNone-SFS emits it in file order).
  std::unique_ptr<RowOrdering> owned_ordering;
  const RowOrdering* ordering = nullptr;
  switch (options.presort) {
    case Presort::kNested:
      owned_ordering = MakeNestedSkylineOrdering(spec);
      ordering = owned_ordering.get();
      break;
    case Presort::kEntropy:
      owned_ordering = std::make_unique<EntropyOrdering>(&spec, input);
      ordering = owned_ordering.get();
      break;
    case Presort::kCustom:
      if (options.custom_ordering == nullptr) {
        return Status::InvalidArgument(
            "Presort::kCustom requires BbsOptions::custom_ordering");
      }
      ordering = options.custom_ordering;
      break;
    case Presort::kNone:
      break;
  }
  const size_t row_width = spec.schema().row_width();
  const std::vector<char>& rows = scan.result_rows();
  const std::vector<uint64_t>& input_index = scan.result_input_index();
  std::vector<size_t> order(input_index.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (ordering != nullptr) {
      const int c = ordering->Compare(rows.data() + a * row_width,
                                      rows.data() + b * row_width);
      if (c != 0) return c < 0;
    }
    return input_index[a] < input_index[b];
  });

  TableBuilder builder(input.env(), output_path, spec.schema());
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  for (size_t i : order) {
    SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(rows.data() + i * row_width));
  }
  s->output_rows = input_index.size();
  s->filter_seconds = filter_timer.ElapsedSeconds();
  return builder.Finish();
}

}  // namespace skyline
