#ifndef SKYLINE_CORE_BBS_H_
#define SKYLINE_CORE_BBS_H_

#include <memory>
#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/run_stats.h"
#include "core/sfs.h"
#include "core/skyline_constraint.h"
#include "core/skyline_spec.h"
#include "relation/column_store.h"
#include "relation/table.h"

namespace skyline {

/// Options for the branch-and-bound (BBS) skyline scan. The presort knobs
/// do not change what BBS reads — the scan order is driven by mindist over
/// the block index — they pin the *output order*: the emitted skyline is
/// re-sorted by the same monotone ordering SFS would have presorted with,
/// so BBS output is byte-identical to SFS output for the same options.
struct BbsOptions {
  Presort presort = Presort::kEntropy;
  /// Ordering used when presort == Presort::kCustom (must outlive the
  /// call); kNone keeps the rows in input-file order.
  const RowOrdering* custom_ordering = nullptr;
  /// Constrained skyline: only rows inside the box participate. Applied
  /// natively — the box is intersected against node corners before
  /// enqueue, so subtrees outside it are never read.
  SkylineConstraint constraint;
};

/// Cheap pre-gate, safe before loading any zones: true when `input` might
/// have a usable block index for `spec` — the index sidecar file exists,
/// the spec has no DIFF columns (one global branch-and-bound heap cannot
/// interleave per-group skylines), and the spec lowers to the columnar
/// dominance kernel (the corner probes are zone tests against it). A
/// false return means callers should not bother loading zones for BBS.
bool BbsCandidate(const Table& input, const SkylineSpec& spec);

/// Full readiness check once zones are loaded: the zones carry a validated
/// block index at the dominance-kernel block granularity and cover every
/// schema column. Implies nothing about profitability — that is the cost
/// model's job (ChooseSkylineAccess).
bool BbsUsable(const SkylineSpec& spec, const TableColumnZones* zones);

/// Branch-and-bound skyline over `input`'s persistent z-order block index
/// (the paper-adjacent BBS algorithm, adapted from R-tree entries to
/// column-file blocks): a min-heap on exact integer mindist over index
/// entries; every popped entry is first probed against the skyline found
/// so far — a dominated node's whole subtree is provably dominated and is
/// never read from disk. Requires BbsUsable(spec, zones.get()).
///
/// Writes the skyline (full rows, in the presort's monotone order — byte
/// identical to SFS with the same presort) to a new table at
/// `output_path`. Fills stats' index_nodes_visited / index_blocks_skipped
/// / heap_peak counters; `stats` may be null.
Result<Table> ComputeSkylineBbs(const Table& input, const SkylineSpec& spec,
                                std::shared_ptr<const TableColumnZones> zones,
                                const BbsOptions& options,
                                const ExecContext& ctx,
                                const std::string& output_path,
                                SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_BBS_H_
