#include "core/bnl.h"

#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/temp_file_manager.h"

namespace skyline {
namespace {

/// BNL's window: full tuples with replacement and confirmation timestamps.
///
/// Timestamp protocol (from the original BNL): a tuple inserted into the
/// window during pass p is stamped with the number of tuples already
/// written to pass p's temp file; it has been compared against every later
/// spill but not the earlier ones. During pass p+1 (whose input *is* that
/// temp file, read in write order), upon reading temp tuple i every window
/// entry from pass p with timestamp <= i has now met all its predecessors
/// and is confirmed skyline. At end of a pass all entries from the previous
/// pass are confirmed; if the pass spilled nothing, the current pass's
/// entries are confirmed too and the algorithm terminates.
struct BnlEntry {
  uint64_t timestamp;
  uint64_t pass;
};

class BnlWindow {
 public:
  BnlWindow(const SkylineSpec* spec, size_t window_pages)
      : spec_(spec),
        width_(spec->schema().row_width()),
        capacity_(window_pages * RecordsPerPage(width_)),
        index_(spec) {
    SKYLINE_CHECK_GT(capacity_, 0u);
    rows_.reserve(capacity_ * width_);
    index_.Reserve(capacity_);
  }

  size_t size() const { return meta_.size(); }
  bool full() const { return meta_.size() == capacity_; }
  const char* RowAt(size_t i) const { return rows_.data() + i * width_; }
  const BnlEntry& MetaAt(size_t i) const { return meta_[i]; }
  uint64_t comparisons() const { return comparisons_; }
  uint64_t replacements() const { return replacements_; }
  uint64_t batch_comparisons() const { return batch_comparisons_; }
  uint64_t blocks_pruned() const { return blocks_pruned_; }
  const char* kernel_name() const {
    return index_.columnar() ? index_.kernel_name() : "row";
  }

  /// Compares `row` against all entries. Returns true if `row` survives
  /// (caller inserts or spills); dominated entries have been evicted.
  /// Returns false if `row` is dominated (discard it).
  bool TestAndEvict(const char* row) {
    return index_.columnar() ? TestAndEvictColumnar(row)
                             : TestAndEvictRows(row);
  }

  void Insert(const char* row, uint64_t timestamp, uint64_t pass) {
    SKYLINE_CHECK(!full());
    rows_.insert(rows_.end(), row, row + width_);
    index_.Append(row);
    meta_.push_back({timestamp, pass});
  }

  void RemoveAt(size_t i) {
    SKYLINE_CHECK_LT(i, meta_.size());
    const size_t last = meta_.size() - 1;
    if (i != last) {
      std::memcpy(rows_.data() + i * width_, rows_.data() + last * width_,
                  width_);
      meta_[i] = meta_[last];
    }
    index_.RemoveSwapLast(i);
    rows_.resize(last * width_);
    meta_.pop_back();
  }

 private:
  /// Batched variant: one zone-map check plus at most one kernel call per
  /// 64-entry block. Window entries are pairwise non-dominating, so a
  /// dominator of `row` and a victim of `row` cannot coexist — if any block
  /// dominates, no evictions were pending, and returning early is exactly
  /// what the row-at-a-time loop would have done.
  bool TestAndEvictColumnar(const char* row) {
    index_.EncodeProbe(row, &probe_);
    evict_scratch_.clear();
    const size_t count = meta_.size();
    const size_t blocks = DominanceIndex::BlockCountFor(count);
    for (size_t b = 0; b < blocks; ++b) {
      if (index_.CanPruneBlock(probe_, b)) {
        ++blocks_pruned_;
        continue;
      }
      const uint64_t tested = index_.BlockEntries(b, count);
      comparisons_ += tested;
      batch_comparisons_ += tested;
      const BlockMasks masks = index_.TestBlock(probe_, b, count);
      if (masks.dominates != 0) return false;
      uint64_t victims = masks.dominated;
      while (victims != 0) {
        const int bit = __builtin_ctzll(victims);
        victims &= victims - 1;
        evict_scratch_.push_back(b * DominanceIndex::kBlockEntries + bit);
      }
    }
    // Evict back-to-front so swap-with-last never disturbs a smaller
    // pending index.
    for (size_t k = evict_scratch_.size(); k-- > 0;) {
      ++replacements_;
      RemoveAt(evict_scratch_[k]);
    }
    return true;
  }

  bool TestAndEvictRows(const char* row) {
    size_t i = 0;
    while (i < meta_.size()) {
      ++comparisons_;
      switch (CompareDominance(*spec_, RowAt(i), row)) {
        case DomResult::kFirstDominates:
          return false;  // row is dominated; entries are incomparable, so
                         // none of them can have been evicted by row
        case DomResult::kSecondDominates:
          ++replacements_;
          RemoveAt(i);
          continue;  // i now holds a different entry
        case DomResult::kEquivalent:
        case DomResult::kIncomparable:
          ++i;
          break;
      }
    }
    return true;
  }

  const SkylineSpec* spec_;
  size_t width_;
  size_t capacity_;
  std::vector<char> rows_;
  std::vector<BnlEntry> meta_;
  DominanceIndex index_;
  DominanceIndex::Probe probe_;
  std::vector<uint32_t> evict_scratch_;
  uint64_t comparisons_ = 0;
  uint64_t replacements_ = 0;
  uint64_t batch_comparisons_ = 0;
  uint64_t blocks_pruned_ = 0;
};

}  // namespace

Result<Table> ComputeSkylineBnl(const Table& input, const SkylineSpec& spec,
                                const BnlOptions& options,
                                const ExecContext& ctx,
                                const std::string& output_path,
                                SkylineRunStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;
  *s = SkylineRunStats{};
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  Env* env = input.env();
  const size_t width = spec.schema().row_width();
  TempFileManager temp_files(env, ctx.TempPrefixOr(output_path + ".bnl_tmp"));

  // Optional forced arrival order (e.g. reverse entropy).
  std::string input_path = input.path();
  if (options.input_ordering != nullptr) {
    Stopwatch sort_timer;
    TraceSpan presort_span(ctx.trace, "presort");
    SKYLINE_ASSIGN_OR_RETURN(
        input_path,
        SortHeapFile(env, &temp_files, input.path(), width,
                     *options.input_ordering, options.sort_options, ctx,
                     &s->sort_stats));
    presort_span.End();
    s->sort_seconds = sort_timer.ElapsedSeconds();
  }

  Stopwatch filter_timer;
  TableBuilder builder(env, output_path, spec.schema());
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  BnlWindow window(&spec, options.window_pages);
  uint64_t pass = 1;
  bool first_pass = true;

  const bool poll_cancel = ctx.has_cancel_hook();
  while (true) {
    ++s->passes;
    TraceSpan pass_span(ctx.trace, "filter-pass",
                        static_cast<int64_t>(s->passes));
    // The first pass reads the input table (not counted as extra pages);
    // later passes read the previous pass's temp file.
    HeapFileReader reader(env, input_path, width,
                          first_pass ? nullptr : &s->temp_io);
    SKYLINE_RETURN_IF_ERROR(reader.Open());
    if (first_pass) s->input_rows = reader.record_count();

    std::unique_ptr<HeapFileWriter> spill;
    std::string spill_path;
    uint64_t spilled_this_pass = 0;
    uint64_t read_index = 0;

    while (const char* row = reader.Next()) {
      if (poll_cancel && (read_index & 4095u) == 0) {
        SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
      }
      // Confirm entries from the previous pass that have now met every
      // tuple that preceded them into this pass's input.
      for (size_t i = 0; i < window.size();) {
        const BnlEntry& meta = window.MetaAt(i);
        if (meta.pass == pass - 1 && meta.timestamp <= read_index) {
          SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(window.RowAt(i)));
          ++s->output_rows;
          window.RemoveAt(i);
        } else {
          ++i;
        }
      }

      if (window.TestAndEvict(row)) {
        if (!window.full()) {
          window.Insert(row, spilled_this_pass, pass);
        } else {
          if (spill == nullptr) {
            spill_path = temp_files.Allocate("bnl_spill");
            spill = std::make_unique<HeapFileWriter>(env, spill_path, width,
                                                     &s->temp_io);
            SKYLINE_RETURN_IF_ERROR(spill->Open());
          }
          SKYLINE_RETURN_IF_ERROR(spill->Append(row));
          ++spilled_this_pass;
          ++s->spilled_tuples;
        }
      }
      ++read_index;
    }
    SKYLINE_RETURN_IF_ERROR(reader.status());

    // End of pass: everything inserted during the previous pass has now
    // been compared against the whole remaining input.
    for (size_t i = 0; i < window.size();) {
      if (window.MetaAt(i).pass <= pass - 1) {
        SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(window.RowAt(i)));
        ++s->output_rows;
        window.RemoveAt(i);
      } else {
        ++i;
      }
    }

    if (spill == nullptr) {
      // Nothing deferred: this pass's window entries are all confirmed.
      for (size_t i = 0; i < window.size(); ++i) {
        SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(window.RowAt(i)));
        ++s->output_rows;
      }
      break;
    }
    SKYLINE_RETURN_IF_ERROR(spill->Finish());
    if (!first_pass) temp_files.Delete(input_path);
    input_path = spill_path;
    first_pass = false;
    ++pass;
  }

  s->window_comparisons = window.comparisons();
  s->batch_comparisons = window.batch_comparisons();
  s->window_blocks_pruned = window.blocks_pruned();
  s->dominance_kernel = window.kernel_name();
  s->window_replacements = window.replacements();
  s->filter_seconds = filter_timer.ElapsedSeconds();
  return builder.Finish();
}

}  // namespace skyline
