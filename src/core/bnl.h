#ifndef SKYLINE_CORE_BNL_H_
#define SKYLINE_CORE_BNL_H_

#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/run_stats.h"
#include "core/skyline_spec.h"
#include "relation/table.h"
#include "sort/comparator.h"
#include "sort/external_sort.h"

namespace skyline {

/// Options for the block-nested-loops baseline (Börzsönyi, Kossmann &
/// Stocker 2001), the comparison algorithm of the paper's Section 5.
struct BnlOptions {
  /// Buffer pages allocated to the window. BNL stores full tuples (it must
  /// emit a tuple only once confirmed, so it cannot project — see the
  /// paper's footnote 6).
  size_t window_pages = 500;
  /// If non-null, the input is first sorted by this ordering to model a
  /// specific arrival order — e.g. ReverseOrdering over EntropyOrdering
  /// reproduces the paper's pathological "BNL w/RE" runs. Sort cost is
  /// recorded in stats.sort_stats but, as in the paper, models data that
  /// merely *arrives* in that order. Null = the table's natural (random)
  /// order.
  const RowOrdering* input_ordering = nullptr;
  SortOptions sort_options;
};

/// Computes the skyline of `input` with BNL, writing confirmed tuples to a
/// new table at `output_path`. Output order is confirmation order (BNL's
/// output is blocking: most tuples are only confirmed at end of pass).
/// `stats` may be null.
///
/// Faithful to the original algorithm: a window of incomparable tuples with
/// replacement (a new tuple that dominates window tuples evicts them), spill
/// of non-dominated overflow to a temp file, and timestamp bookkeeping to
/// confirm window tuples once they have been compared against every tuple
/// that preceded them into the temp file.
Result<Table> ComputeSkylineBnl(const Table& input, const SkylineSpec& spec,
                                const BnlOptions& options,
                                const ExecContext& ctx,
                                const std::string& output_path,
                                SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_BNL_H_
