#ifndef SKYLINE_CORE_CANONICAL_KEY_H_
#define SKYLINE_CORE_CANONICAL_KEY_H_

#include <cstdint>
#include <cstring>

#include "common/order_key.h"
#include "relation/schema.h"

namespace skyline {

/// Canonical ascending int64 key of a numeric column value: raw int32/64
/// values widened, float64 as total-order bits. Matches the key space of
/// the persisted column file and zone maps (strings take the dictionary
/// path instead and are not handled here).
inline int64_t CanonicalKeyOf(ColumnType type, const char* value_bytes) {
  switch (type) {
    case ColumnType::kInt32: {
      int32_t v;
      std::memcpy(&v, value_bytes, sizeof(v));
      return v;
    }
    case ColumnType::kInt64: {
      int64_t v;
      std::memcpy(&v, value_bytes, sizeof(v));
      return v;
    }
    case ColumnType::kFloat64: {
      double v;
      std::memcpy(&v, value_bytes, sizeof(v));
      return Float64TotalOrderKey(v);
    }
    case ColumnType::kFixedString:
      break;
  }
  return 0;
}

/// Inverse of CanonicalKeyOf: materializes a canonical key back into raw
/// column bytes (used to build synthetic corner rows from zone corners).
inline void WriteCanonicalKeyAsRaw(ColumnType type, int64_t key, char* dst) {
  switch (type) {
    case ColumnType::kInt32: {
      const int32_t v = static_cast<int32_t>(key);
      std::memcpy(dst, &v, sizeof(v));
      break;
    }
    case ColumnType::kInt64:
      std::memcpy(dst, &key, sizeof(key));
      break;
    case ColumnType::kFloat64: {
      const double v = DoubleFromTotalOrderKey(key);
      std::memcpy(dst, &v, sizeof(v));
      break;
    }
    case ColumnType::kFixedString:
      break;  // dictionary path writes the bytes directly
  }
}

}  // namespace skyline

#endif  // SKYLINE_CORE_CANONICAL_KEY_H_
