#include "core/canonical_order.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/canonical_key.h"

namespace skyline {
namespace {

/// One criterion resolved to raw layout, precomputed so the sort's
/// comparator does no per-call name lookups.
struct CanonicalKeyColumn {
  size_t offset = 0;
  size_t width = 0;
  ColumnType type = ColumnType::kInt32;
  bool descending = false;  // MAX criteria serve best-first
};

std::vector<CanonicalKeyColumn> ResolveKeyColumns(const SkylineSpec& spec) {
  const Schema& schema = spec.schema();
  std::vector<CanonicalKeyColumn> keys;
  keys.reserve(spec.criteria().size());
  for (const Criterion& criterion : spec.criteria()) {
    const size_t col = schema.ColumnIndex(criterion.column).value();
    keys.push_back({schema.offset(col), schema.column_width(col),
                    schema.column(col).type,
                    criterion.directive == Directive::kMax});
  }
  return keys;
}

int CompareResolved(const std::vector<CanonicalKeyColumn>& keys,
                    size_t row_width, const char* a, const char* b) {
  for (const CanonicalKeyColumn& key : keys) {
    if (key.type == ColumnType::kFixedString) {
      const int cmp = std::memcmp(a + key.offset, b + key.offset, key.width);
      if (cmp != 0) return cmp;
      continue;
    }
    const int64_t ka = CanonicalKeyOf(key.type, a + key.offset);
    const int64_t kb = CanonicalKeyOf(key.type, b + key.offset);
    if (ka != kb) {
      if (key.descending) return ka < kb ? 1 : -1;
      return ka < kb ? -1 : 1;
    }
  }
  return std::memcmp(a, b, row_width);
}

}  // namespace

int CompareRowsCanonical(const SkylineSpec& spec, const char* a,
                         const char* b) {
  return CompareResolved(ResolveKeyColumns(spec), spec.schema().row_width(),
                         a, b);
}

void SortSkylineRowsCanonical(const SkylineSpec& spec,
                              std::vector<char>* rows) {
  const size_t width = spec.schema().row_width();
  if (width == 0 || rows->empty()) return;
  const std::vector<CanonicalKeyColumn> keys = ResolveKeyColumns(spec);
  const size_t count = rows->size() / width;
  std::vector<size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  const char* base = rows->data();
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    return CompareResolved(keys, width, base + i * width,
                           base + j * width) < 0;
  });
  std::vector<char> sorted(rows->size());
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(sorted.data() + i * width, base + order[i] * width, width);
  }
  rows->swap(sorted);
}

}  // namespace skyline
