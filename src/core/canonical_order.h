#ifndef SKYLINE_CORE_CANONICAL_ORDER_H_
#define SKYLINE_CORE_CANONICAL_ORDER_H_

#include <vector>

#include "core/skyline_spec.h"

namespace skyline {

/// Deterministic, stats-independent serve order for skyline results.
///
/// The engines' presort orders (entropy in particular) depend on the
/// table's ColumnStats min/max normalization, and mutations change those
/// stats — so "recompute after an insert" and "patch the cached result"
/// would emit the same row *set* in different row *orders*. The result
/// cache instead serves every skyline in this canonical order, applied
/// both when an entry is filled (cold compute) and when it is patched, so
/// cached responses stay byte-identical to a from-scratch recompute.
///
/// The order: criteria in declaration order — numeric MIN ascending by
/// canonical key, MAX descending ("best first"), DIFF ascending (strings
/// bytewise) — then a full-row memcmp tiebreak so duplicate-key rows have
/// a defined order too. Nothing here reads table statistics.
void SortSkylineRowsCanonical(const SkylineSpec& spec,
                              std::vector<char>* rows);

/// Three-way canonical comparison of two rows of spec.schema() layout
/// (negative / 0 / positive). Exposed for tests and merge paths.
int CompareRowsCanonical(const SkylineSpec& spec, const char* a,
                         const char* b);

}  // namespace skyline

#endif  // SKYLINE_CORE_CANONICAL_ORDER_H_
