#include "core/cardinality.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace skyline {

double ExpectedSkylineSize(uint64_t n, int d) {
  SKYLINE_CHECK_GE(d, 1);
  if (n == 0) return 0.0;
  // m[k] holds m(i, k+1) as i advances from 1 to n. For each new i,
  // m(i, 1) = 1 and m(i, k) = m(i-1, k) + m(i, k-1) / i, so updating k in
  // ascending order uses the already-updated m(i, k-1).
  std::vector<double> m(static_cast<size_t>(d), 1.0);  // i = 1: all 1
  for (uint64_t i = 2; i <= n; ++i) {
    const double inv = 1.0 / static_cast<double>(i);
    for (int k = 1; k < d; ++k) {
      m[static_cast<size_t>(k)] += m[static_cast<size_t>(k - 1)] * inv;
    }
  }
  return m[static_cast<size_t>(d - 1)];
}

double SkylineSizeAsymptotic(uint64_t n, int d) {
  SKYLINE_CHECK_GE(d, 1);
  if (n == 0) return 0.0;
  double result = 1.0;
  const double ln_n = std::log(static_cast<double>(n));
  for (int i = 1; i < d; ++i) {
    result *= ln_n / static_cast<double>(i);
  }
  return result;
}

double ExtrapolateSkylineSize(double sample_skyline, uint64_t sample_n,
                              uint64_t n, int d) {
  SKYLINE_CHECK_GE(d, 1);
  SKYLINE_CHECK_GE(sample_n, 2u);
  if (n <= sample_n) return sample_skyline;
  // m(n, d) ≈ c · (ln n + γ)^{d-1}: the harmonic sums behind the
  // expected-maxima recurrence carry the Euler–Mascheroni constant as
  // their second-order term, which matters at small sample sizes.
  constexpr double kEulerGamma = 0.57721566490153286;
  const double ratio = (std::log(static_cast<double>(n)) + kEulerGamma) /
                       (std::log(static_cast<double>(sample_n)) + kEulerGamma);
  return sample_skyline * std::pow(ratio, d - 1);
}

}  // namespace skyline
