#ifndef SKYLINE_CORE_CARDINALITY_H_
#define SKYLINE_CORE_CARDINALITY_H_

#include <cstdint>

namespace skyline {

/// Expected skyline size for n tuples over d independent dimensions with
/// continuous (duplicate-free) attribute values — the quantity the paper's
/// footnote 2 cites as Θ((ln n)^{d-1}/(d-1)!) and that a query optimizer
/// needs to cost skyline operators.
///
/// Exact value via the classic expected-maxima recurrence
///   m(n, d) = m(n-1, d) + m(n, d-1) / n,   m(n, 1) = 1, m(0, d) = 0,
/// computed in O(n·d) time and O(d) space.
double ExpectedSkylineSize(uint64_t n, int d);

/// First-order asymptotic (ln n)^{d-1} / (d-1)!.
double SkylineSizeAsymptotic(uint64_t n, int d);

/// Extrapolates a skyline cardinality measured on a sample of size
/// `sample_n` to the full table of size `n`, using the (ln n)^{d-1} growth
/// law: m(n) ≈ m(s) · (ln n / ln s)^{d-1}. Unlike ExpectedSkylineSize this
/// needs no independence/uniformity assumption about the data — the
/// sample measurement carries the distribution — only the growth shape.
/// `d` is the number of MIN/MAX criteria; sample_n must be >= 2.
double ExtrapolateSkylineSize(double sample_skyline, uint64_t sample_n,
                              uint64_t n, int d);

}  // namespace skyline

#endif  // SKYLINE_CORE_CARDINALITY_H_
