#include "core/compute_skyline.h"

#include "core/run_report.h"
#include "core/special2d.h"
#include "core/special3d.h"

namespace skyline {

bool SkylineAutoUsesSpecialScan(const SkylineSpec& spec) {
  return spec.value_columns().size() == 2 || spec.value_columns().size() == 3;
}

Result<Table> ComputeSkyline(SkylineAlgorithm algorithm, const Table& input,
                             const SkylineSpec& spec, const ExecContext& ctx,
                             const std::string& output_path,
                             SkylineRunStats* stats,
                             const SkylineComputeOptions& options) {
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;

  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
  TraceSpan span(ctx.trace, "skyline");

  const char* published_as = SkylineAlgorithmName(algorithm);
  Result<Table> result = Status::Internal("unreachable");
  switch (algorithm) {
    case SkylineAlgorithm::kBnl:
      result = ComputeSkylineBnl(input, spec, options.bnl, ctx, output_path, s);
      break;
    case SkylineAlgorithm::kAuto:
      if (SkylineAutoUsesSpecialScan(spec)) {
        // The scans accept plain SortOptions; resolve the context's thread
        // override into them the same way SFS does.
        SortOptions sort_options = options.sfs.sort_options;
        const size_t requested =
            ctx.RequestedThreads(options.sfs.threads);
        if (requested != 1 && sort_options.threads == 1) {
          sort_options.threads = ClampThreadsToHardware(requested);
        }
        published_as = spec.value_columns().size() == 2 ? "special2d"
                                                        : "special3d";
        result = spec.value_columns().size() == 2
                     ? ComputeSkyline2D(input, spec, sort_options, output_path,
                                        s)
                     : ComputeSkyline3D(input, spec, sort_options, output_path,
                                        s);
        break;
      }
      published_as = "sfs";
      [[fallthrough]];
    case SkylineAlgorithm::kSfs:
      result = ComputeSkylineSfs(input, spec, options.sfs, ctx, output_path, s);
      break;
  }
  if (result.ok()) {
    PublishRunStats(ctx.metrics, std::string("skyline.") + published_as, *s);
  }
  return result;
}

}  // namespace skyline
