#include "core/compute_skyline.h"

#include <optional>
#include <string_view>
#include <utility>

#include "core/bbs.h"
#include "core/cost_model.h"
#include "core/run_report.h"
#include "core/special2d.h"
#include "core/special3d.h"
#include "relation/column_store.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"

namespace skyline {
namespace {

/// Stages the constrained subset of `input` into a temp heap file attached
/// with the *base* table's column stats (min/max over a superset remain
/// valid bounds, per Table::Attach). Reusing the base stats is what keeps
/// stats-derived presort orders — EntropyOrdering — identical between a
/// scan algorithm running on the staged subset and BBS running the
/// constraint natively over the whole index.
Result<Table> MaterializeConstrained(const Table& input,
                                     const SkylineConstraint& constraint,
                                     TempFileManager* temp_files) {
  const Schema& schema = input.schema();
  const std::string path = temp_files->Allocate("constrained");
  HeapFileWriter writer(input.env(), path, schema.row_width(), nullptr);
  SKYLINE_RETURN_IF_ERROR(writer.Open());
  auto reader = input.NewReader(nullptr);
  SKYLINE_RETURN_IF_ERROR(reader->Open());
  while (const char* row = reader->Next()) {
    if (constraint.Matches(schema, row)) {
      SKYLINE_RETURN_IF_ERROR(writer.Append(row));
    }
  }
  SKYLINE_RETURN_IF_ERROR(reader->status());
  SKYLINE_RETURN_IF_ERROR(writer.Finish());
  std::vector<ColumnStats> stats;
  stats.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    stats.push_back(input.stats(c));
  }
  return Table::Attach(schema, input.env(), path, std::move(stats));
}

}  // namespace

bool SkylineAutoUsesSpecialScan(const SkylineSpec& spec) {
  return spec.value_columns().size() == 2 || spec.value_columns().size() == 3;
}

Result<Table> ComputeSkyline(SkylineAlgorithm algorithm, const Table& input,
                             const SkylineSpec& spec, const ExecContext& ctx,
                             const std::string& output_path,
                             SkylineRunStats* stats,
                             const SkylineComputeOptions& options) {
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;

  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
  TraceSpan span(ctx.trace, "skyline");

  // Resolve whether BBS actually runs: an explicit kBbs request, or kAuto
  // past the special scans with the cost model voting for it — both gated
  // on a loadable, valid index (everything else degrades to SFS; the
  // index is an accelerator, never a correctness dependency).
  bool run_bbs = false;
  std::shared_ptr<const TableColumnZones> zones;
  bool zones_cache_hit = false;
  const bool wants_bbs =
      algorithm == SkylineAlgorithm::kBbs ||
      (algorithm == SkylineAlgorithm::kAuto &&
       !SkylineAutoUsesSpecialScan(spec));
  if (wants_bbs && BbsCandidate(input, spec)) {
    auto zones_or =
        TableZoneCache::Instance().GetOrLoad(input, &zones_cache_hit);
    if (zones_or.ok()) {
      auto loaded = std::move(zones_or).value();
      if (BbsUsable(spec, loaded.get()) &&
          loaded->row_count == input.row_count()) {
        if (algorithm == SkylineAlgorithm::kBbs) {
          run_bbs = true;
        } else {
          // Keep the routing evidence: EXPLAIN ANALYZE reports what kAuto
          // sampled and which way the estimate fell.
          const SkylineAccessChoice choice =
              ChooseSkylineAccess(input, spec, true);
          s->route_sample_rows = choice.sample_rows;
          s->route_sample_skyline = choice.sample_skyline;
          s->route_estimated_skyline = choice.estimated_skyline;
          s->route_bbs_threshold = choice.bbs_threshold;
          run_bbs = choice.path == SkylineAccessPath::kBbs;
        }
        if (run_bbs) zones = std::move(loaded);
      }
    }
  }

  const char* published_as = SkylineAlgorithmName(algorithm);
  Result<Table> result = Status::Internal("unreachable");
  if (run_bbs) {
    published_as = "bbs";
    BbsOptions bbs_options;
    bbs_options.presort = options.sfs.presort;
    bbs_options.custom_ordering = options.sfs.custom_ordering;
    bbs_options.constraint = options.constraint;
    result = ComputeSkylineBbs(input, spec, zones, bbs_options, ctx,
                               output_path, s);
    if (result.ok()) {
      s->zone_map_source = zones_cache_hit ? "cache" : zones->source;
      if (!zones_cache_hit &&
          std::string_view(zones->source) == "column_file") {
        s->column_file_blocks_read =
            (zones->row_count + zones->block_rows - 1) / zones->block_rows;
      }
    }
  } else {
    // Scan algorithms: apply any constraint by staging the filtered
    // subset, then dispatch as before over the effective input.
    const Table* effective = &input;
    std::optional<TempFileManager> temp_files;
    std::optional<Table> staged;
    if (!options.constraint.empty()) {
      temp_files.emplace(input.env(),
                         ctx.TempPrefixOr(output_path + ".cs_tmp"));
      SKYLINE_ASSIGN_OR_RETURN(
          Table staged_table,
          MaterializeConstrained(input, options.constraint, &*temp_files));
      staged.emplace(std::move(staged_table));
      effective = &*staged;
    }
    switch (algorithm) {
      case SkylineAlgorithm::kBnl:
        result = ComputeSkylineBnl(*effective, spec, options.bnl, ctx,
                                   output_path, s);
        break;
      case SkylineAlgorithm::kAuto:
        if (SkylineAutoUsesSpecialScan(spec)) {
          // The scans accept plain SortOptions; resolve the context's
          // thread override into them the same way SFS does.
          SortOptions sort_options = options.sfs.sort_options;
          const size_t requested = ctx.RequestedThreads(options.sfs.threads);
          if (requested != 1 && sort_options.threads == 1) {
            sort_options.threads = ClampThreadsToHardware(requested);
          }
          published_as = spec.value_columns().size() == 2 ? "special2d"
                                                          : "special3d";
          result = spec.value_columns().size() == 2
                       ? ComputeSkyline2D(*effective, spec, sort_options, ctx,
                                          output_path, s)
                       : ComputeSkyline3D(*effective, spec, sort_options, ctx,
                                          output_path, s);
          break;
        }
        published_as = "sfs";
        [[fallthrough]];
      case SkylineAlgorithm::kBbs:
        // Explicit BBS without a usable index degrades to the scan.
        if (algorithm == SkylineAlgorithm::kBbs) published_as = "sfs";
        [[fallthrough]];
      case SkylineAlgorithm::kSfs:
        result = ComputeSkylineSfs(*effective, spec, options.sfs, ctx,
                                   output_path, s);
        break;
    }
  }
  if (result.ok()) {
    s->access_path = published_as;
    PublishRunStats(ctx.metrics, std::string("skyline.") + published_as, *s);
  }
  return result;
}

}  // namespace skyline
