#ifndef SKYLINE_CORE_COMPUTE_SKYLINE_H_
#define SKYLINE_CORE_COMPUTE_SKYLINE_H_

#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/bnl.h"
#include "core/run_stats.h"
#include "core/sfs.h"
#include "core/skyline_algorithm.h"
#include "core/skyline_constraint.h"
#include "core/skyline_spec.h"
#include "relation/table.h"

namespace skyline {

/// Per-algorithm knobs for the unified entry point. Defaults mirror the
/// individual functions' defaults.
struct SkylineComputeOptions {
  SfsOptions sfs;
  BnlOptions bnl;
  /// Constrained skyline: only rows inside the box participate (skyline
  /// *of the filtered set*). BBS applies the box natively against index
  /// node corners before enqueueing subtrees; every scan algorithm stages
  /// the filtered subset first (attached with the base table's stats, so
  /// stats-derived presort orders — and therefore the output bytes —
  /// agree with BBS's).
  SkylineConstraint constraint;
};

/// True when kAuto routes `spec` through a special-case scan: exactly 2 or
/// 3 MIN/MAX criteria (the scans handle DIFF groups themselves).
bool SkylineAutoUsesSpecialScan(const SkylineSpec& spec);

/// The one skyline entry point: dispatches `algorithm` over the
/// specialized implementations (kAuto routes 2-/3-criterion specs through
/// the windowless special-case scans, index-equipped small-skyline inputs
/// through BBS per the cost model, everything else through SFS; kBbs
/// degrades to SFS when no usable index exists) with the ExecContext's
/// threads / temp prefix / telemetry / cancellation applied uniformly —
/// so benches, examples, the Volcano operator, and the SQL executor stop
/// hand-rolling the same switch.
///
/// Writes the result table to `output_path` and returns it. `stats` may be
/// null. Records a top-level "skyline" trace span and publishes the run's
/// stats to ctx.metrics under "skyline.<algorithm>".
Result<Table> ComputeSkyline(SkylineAlgorithm algorithm, const Table& input,
                             const SkylineSpec& spec, const ExecContext& ctx,
                             const std::string& output_path,
                             SkylineRunStats* stats,
                             const SkylineComputeOptions& options = {});

}  // namespace skyline

#endif  // SKYLINE_CORE_COMPUTE_SKYLINE_H_
