#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/cardinality.h"
#include "storage/page.h"

namespace skyline {

uint64_t SfsPassesForSkyline(uint64_t skyline_count,
                             uint64_t window_capacity) {
  SKYLINE_CHECK_GT(window_capacity, 0u);
  if (skyline_count == 0) return 1;  // one scan to find out
  return (skyline_count + window_capacity - 1) / window_capacity;
}

SfsCostEstimate EstimateSfsCost(uint64_t n, int dims, size_t row_width,
                                size_t projected_width,
                                const SfsOptions& options) {
  SfsCostEstimate estimate;
  estimate.skyline_cardinality = ExpectedSkylineSize(n, dims);
  const size_t entry_width =
      options.use_projection ? projected_width : row_width;
  estimate.window_capacity =
      options.window_pages * RecordsPerPage(entry_width);
  estimate.passes = SfsPassesForSkyline(
      static_cast<uint64_t>(std::llround(estimate.skyline_cardinality)),
      estimate.window_capacity);
  estimate.input_pages = HeapFilePageCount(n, row_width);

  // Spill bound: during pass p (0-based), at least p*capacity skyline
  // tuples are already confirmed; every tuple they dominate is eliminated
  // on sight. What spills is (a) the remaining skyline tuples and (b)
  // non-skyline tuples not dominated by the cached prefix. (b) shrinks
  // fast under an entropy order; we bound it loosely by assuming each
  // subsequent pass carries at most half of the previous pass's spill
  // mass plus the outstanding skyline tuples.
  double remaining_skyline = estimate.skyline_cardinality;
  double carried = static_cast<double>(n);
  double spilled = 0;
  for (uint64_t p = 0; p < estimate.passes; ++p) {
    const double confirmed = std::min(
        remaining_skyline, static_cast<double>(estimate.window_capacity));
    remaining_skyline -= confirmed;
    if (remaining_skyline <= 0) break;
    carried = carried / 2 + remaining_skyline;
    spilled += carried;
  }
  estimate.spilled_tuples_bound = spilled;
  const double per_page = static_cast<double>(RecordsPerPage(row_width));
  estimate.extra_pages_bound = 2.0 * std::ceil(spilled / per_page);
  return estimate;
}

SfsCostEstimate EstimateSfsCost(uint64_t n, const SkylineSpec& spec,
                                const SfsOptions& options) {
  return EstimateSfsCost(n, static_cast<int>(spec.num_dimensions()),
                         spec.schema().row_width(),
                         spec.projected_schema().row_width(), options);
}

}  // namespace skyline
