#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "core/cardinality.h"
#include "core/dominance.h"
#include "storage/page.h"

namespace skyline {
namespace {

/// Rows sampled to measure a skyline cardinality for kAuto. The quadratic
/// in-memory skyline over it is ~4M dominance tests worst case —
/// microseconds-scale against the scan it stands to save.
constexpr uint64_t kAccessSampleRows = 2048;

/// In-memory skyline cardinality of `count` rows (quadratic, sample-sized
/// inputs only). Counts distinct-position skyline members: duplicates all
/// count, matching what SFS emits.
uint64_t SampleSkylineCount(const SkylineSpec& spec, const char* rows,
                            uint64_t count) {
  const size_t width = spec.schema().row_width();
  uint64_t skyline = 0;
  for (uint64_t i = 0; i < count; ++i) {
    bool dominated = false;
    for (uint64_t j = 0; j < count && !dominated; ++j) {
      if (j == i) continue;
      dominated = Dominates(spec, rows + j * width, rows + i * width);
    }
    if (!dominated) ++skyline;
  }
  return skyline;
}

}  // namespace

uint64_t SfsPassesForSkyline(uint64_t skyline_count,
                             uint64_t window_capacity) {
  SKYLINE_CHECK_GT(window_capacity, 0u);
  if (skyline_count == 0) return 1;  // one scan to find out
  return (skyline_count + window_capacity - 1) / window_capacity;
}

SfsCostEstimate EstimateSfsCost(uint64_t n, int dims, size_t row_width,
                                size_t projected_width,
                                const SfsOptions& options) {
  SfsCostEstimate estimate;
  estimate.skyline_cardinality = ExpectedSkylineSize(n, dims);
  const size_t entry_width =
      options.use_projection ? projected_width : row_width;
  estimate.window_capacity =
      options.window_pages * RecordsPerPage(entry_width);
  estimate.passes = SfsPassesForSkyline(
      static_cast<uint64_t>(std::llround(estimate.skyline_cardinality)),
      estimate.window_capacity);
  estimate.input_pages = HeapFilePageCount(n, row_width);

  // Spill bound: during pass p (0-based), at least p*capacity skyline
  // tuples are already confirmed; every tuple they dominate is eliminated
  // on sight. What spills is (a) the remaining skyline tuples and (b)
  // non-skyline tuples not dominated by the cached prefix. (b) shrinks
  // fast under an entropy order; we bound it loosely by assuming each
  // subsequent pass carries at most half of the previous pass's spill
  // mass plus the outstanding skyline tuples.
  double remaining_skyline = estimate.skyline_cardinality;
  double carried = static_cast<double>(n);
  double spilled = 0;
  for (uint64_t p = 0; p < estimate.passes; ++p) {
    const double confirmed = std::min(
        remaining_skyline, static_cast<double>(estimate.window_capacity));
    remaining_skyline -= confirmed;
    if (remaining_skyline <= 0) break;
    carried = carried / 2 + remaining_skyline;
    spilled += carried;
  }
  estimate.spilled_tuples_bound = spilled;
  const double per_page = static_cast<double>(RecordsPerPage(row_width));
  estimate.extra_pages_bound = 2.0 * std::ceil(spilled / per_page);
  return estimate;
}

SfsCostEstimate EstimateSfsCost(uint64_t n, const SkylineSpec& spec,
                                const SfsOptions& options) {
  return EstimateSfsCost(n, static_cast<int>(spec.num_dimensions()),
                         spec.schema().row_width(),
                         spec.projected_schema().row_width(), options);
}

SkylineAccessChoice ChooseSkylineAccess(const Table& input,
                                        const SkylineSpec& spec,
                                        bool index_available) {
  SkylineAccessChoice choice;
  if (spec.value_columns().size() == 2) {
    choice.path = SkylineAccessPath::kSpecial2d;
    return choice;
  }
  if (spec.value_columns().size() == 3) {
    choice.path = SkylineAccessPath::kSpecial3d;
    return choice;
  }
  choice.path = SkylineAccessPath::kSfs;
  const uint64_t n = input.row_count();
  if (!index_available || spec.has_diff() || n < 2) return choice;

  const uint64_t sample_n = std::min<uint64_t>(kAccessSampleRows, n);
  const size_t width = spec.schema().row_width();
  std::vector<char> rows(static_cast<size_t>(sample_n) * width);
  {
    // Stride across the whole file rather than reading a prefix: a prefix
    // is unrepresentative whenever the table is presorted or z-order
    // clustered — it then covers one corner of key space, and that
    // corner's local skyline wildly over- or under-states the global one.
    auto reader = input.NewReader(nullptr);
    if (!reader->Open().ok()) return choice;
    const uint64_t stride = n / sample_n;  // >= 1
    for (uint64_t i = 0; i < sample_n; ++i) {
      if (!reader->SeekToRecord(i * stride).ok()) return choice;
      const char* row = reader->Next();
      if (row == nullptr) return choice;
      std::memcpy(rows.data() + i * width, row, width);
    }
  }
  choice.sample_rows = sample_n;
  choice.sample_skyline = SampleSkylineCount(spec, rows.data(), sample_n);
  choice.estimated_skyline = ExtrapolateSkylineSize(
      static_cast<double>(choice.sample_skyline), sample_n, n,
      static_cast<int>(spec.num_dimensions()));
  choice.bbs_threshold = std::max(64.0, static_cast<double>(n) / 2000.0);
  if (choice.estimated_skyline <= choice.bbs_threshold) {
    choice.path = SkylineAccessPath::kBbs;
  }
  return choice;
}

}  // namespace skyline
