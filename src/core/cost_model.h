#ifndef SKYLINE_CORE_COST_MODEL_H_
#define SKYLINE_CORE_COST_MODEL_H_

#include <cstdint>

#include "core/sfs.h"
#include "core/skyline_spec.h"

namespace skyline {

/// Optimizer-facing cost prediction for an SFS skyline evaluation — the
/// paper's Section 6 integration requirement ("a cardinality estimator for
/// skyline queries is necessary"; "the query optimizer's cost model would
/// need to be extended").
///
/// Built on two facts about SFS with a monotone presort (no DIFF groups):
///  1. Each filter pass confirms exactly min(capacity, remaining) distinct
///     skyline tuples (the window only ever stores skyline tuples, and
///     every non-dominated arrival is stored while space remains), so
///        passes = ceil(m / capacity)
///     where m is the number of distinct skyline tuples — exact given m.
///  2. m is estimated by the expected-maxima recurrence under the paper's
///     uniformity/independence assumptions (core/cardinality.h).
struct SfsCostEstimate {
  /// Estimated distinct skyline cardinality.
  double skyline_cardinality = 0;
  /// Window capacity in entries for the given options.
  uint64_t window_capacity = 0;
  /// Predicted filter passes (exact in the skyline cardinality).
  uint64_t passes = 0;
  /// Upper bound on spilled tuples: everything not confirmed or
  /// eliminated in a pass is at most the skyline remainder plus the
  /// not-yet-dominated tail; we bound by (passes - 1) * capacity +
  /// residual spill mass, which empirically over-covers.
  double spilled_tuples_bound = 0;
  /// Extra pages bound (spilled pages written + re-read).
  double extra_pages_bound = 0;
  /// Pages read for the initial input scan (always incurred).
  uint64_t input_pages = 0;
};

/// Predicts SFS cost for an n-row table with `dims` independent uniform
/// MIN/MAX criteria. `row_width` and `projected_width` size the window
/// entries (projection on/off per `options.use_projection`).
SfsCostEstimate EstimateSfsCost(uint64_t n, int dims, size_t row_width,
                                size_t projected_width,
                                const SfsOptions& options);

/// Convenience using a concrete spec's layout.
SfsCostEstimate EstimateSfsCost(uint64_t n, const SkylineSpec& spec,
                                const SfsOptions& options);

/// Exact pass count given a known skyline cardinality (fact 1 above).
uint64_t SfsPassesForSkyline(uint64_t skyline_count, uint64_t window_capacity);

}  // namespace skyline

#endif  // SKYLINE_CORE_COST_MODEL_H_
