#ifndef SKYLINE_CORE_COST_MODEL_H_
#define SKYLINE_CORE_COST_MODEL_H_

#include <cstdint>

#include "core/sfs.h"
#include "core/skyline_spec.h"
#include "relation/table.h"

namespace skyline {

/// Optimizer-facing cost prediction for an SFS skyline evaluation — the
/// paper's Section 6 integration requirement ("a cardinality estimator for
/// skyline queries is necessary"; "the query optimizer's cost model would
/// need to be extended").
///
/// Built on two facts about SFS with a monotone presort (no DIFF groups):
///  1. Each filter pass confirms exactly min(capacity, remaining) distinct
///     skyline tuples (the window only ever stores skyline tuples, and
///     every non-dominated arrival is stored while space remains), so
///        passes = ceil(m / capacity)
///     where m is the number of distinct skyline tuples — exact given m.
///  2. m is estimated by the expected-maxima recurrence under the paper's
///     uniformity/independence assumptions (core/cardinality.h).
struct SfsCostEstimate {
  /// Estimated distinct skyline cardinality.
  double skyline_cardinality = 0;
  /// Window capacity in entries for the given options.
  uint64_t window_capacity = 0;
  /// Predicted filter passes (exact in the skyline cardinality).
  uint64_t passes = 0;
  /// Upper bound on spilled tuples: everything not confirmed or
  /// eliminated in a pass is at most the skyline remainder plus the
  /// not-yet-dominated tail; we bound by (passes - 1) * capacity +
  /// residual spill mass, which empirically over-covers.
  double spilled_tuples_bound = 0;
  /// Extra pages bound (spilled pages written + re-read).
  double extra_pages_bound = 0;
  /// Pages read for the initial input scan (always incurred).
  uint64_t input_pages = 0;
};

/// Predicts SFS cost for an n-row table with `dims` independent uniform
/// MIN/MAX criteria. `row_width` and `projected_width` size the window
/// entries (projection on/off per `options.use_projection`).
SfsCostEstimate EstimateSfsCost(uint64_t n, int dims, size_t row_width,
                                size_t projected_width,
                                const SfsOptions& options);

/// Convenience using a concrete spec's layout.
SfsCostEstimate EstimateSfsCost(uint64_t n, const SkylineSpec& spec,
                                const SfsOptions& options);

/// Exact pass count given a known skyline cardinality (fact 1 above).
uint64_t SfsPassesForSkyline(uint64_t skyline_count, uint64_t window_capacity);

/// The access paths kAuto chooses between.
enum class SkylineAccessPath {
  kSpecial2d,
  kSpecial3d,
  kSfs,
  kBbs,
};

/// The kAuto decision plus the evidence it was made on (surfaced for
/// plans/tests).
struct SkylineAccessChoice {
  SkylineAccessPath path = SkylineAccessPath::kSfs;
  /// Rows sampled and the skyline cardinality measured on them (0 when no
  /// sample was taken — special scans and index-less inputs skip it).
  uint64_t sample_rows = 0;
  uint64_t sample_skyline = 0;
  /// Extrapolated full-table skyline estimate and the BBS cutoff it was
  /// compared against.
  double estimated_skyline = 0;
  double bbs_threshold = 0;
};

/// Chooses the kAuto access path for `spec` over `input`:
///  - 2/3 MIN/MAX criteria take the windowless special scans, always;
///  - with an available index (`index_available`) and no DIFF columns,
///    a strided sample's measured skyline is extrapolated by the
///    (ln n)^{d-1} growth law (ExtrapolateSkylineSize); BBS wins when the
///    estimate stays under max(64, n/2000) — the small-skyline regime
///    where branch-and-bound's per-point index probes beat one linear
///    scan — else SFS (anti-correlated data lands here: its skyline
///    estimate is orders of magnitude past the cutoff);
///  - everything else is SFS.
SkylineAccessChoice ChooseSkylineAccess(const Table& input,
                                        const SkylineSpec& spec,
                                        bool index_available);

}  // namespace skyline

#endif  // SKYLINE_CORE_COST_MODEL_H_
