#include "core/dim_reduce.h"

#include <cstring>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "core/scoring.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"

namespace skyline {

Result<Table> DimensionalReduction(const Table& input, const SkylineSpec& spec,
                                   const SortOptions& sort_options,
                                   const ExecContext& ctx,
                                   const std::string& output_path,
                                   DimReduceStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  if (spec.value_columns().size() < 2) {
    return Status::InvalidArgument(
        "dimensional reduction needs at least two MIN/MAX criteria");
  }
  DimReduceStats local;
  DimReduceStats* s = stats != nullptr ? stats : &local;
  *s = DimReduceStats{};
  s->input_rows = input.row_count();

  Env* env = input.env();
  const Schema& schema = spec.schema();
  const size_t width = schema.row_width();
  TempFileManager temp_files(env, output_path + ".dimred_tmp");

  Stopwatch timer;
  // Full nested sort with the last criterion innermost: within each
  // (diff, a1..a_{k-1}) group the best a_k tuples come first.
  std::unique_ptr<LexicographicOrdering> ordering =
      MakeNestedSkylineOrdering(spec);
  SKYLINE_ASSIGN_OR_RETURN(
      std::string sorted_path,
      SortHeapFile(env, &temp_files, input.path(), width, *ordering,
                   sort_options, ctx, &s->sort_stats));

  const size_t last_col = spec.value_columns().back().column;
  // Group key: all DIFF columns plus all value criteria except the last.
  auto same_group = [&](const char* a, const char* b) {
    for (size_t col : spec.diff_columns()) {
      if (schema.CompareColumn(col, a, b) != 0) return false;
    }
    for (size_t i = 0; i + 1 < spec.value_columns().size(); ++i) {
      if (schema.CompareColumn(spec.value_columns()[i].column, a, b) != 0) {
        return false;
      }
    }
    return true;
  };

  HeapFileReader reader(env, sorted_path, width, nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());
  TableBuilder builder(env, output_path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  std::vector<char> group_head(width);
  bool have_group = false;
  bool emitting = false;  // still within the group's best-last-value run
  while (const char* row = reader.Next()) {
    if (!have_group || !same_group(group_head.data(), row)) {
      // New group: its first tuple has the group's best last-criterion
      // value (innermost sort key), so emit it and keep emitting while the
      // last value ties.
      std::memcpy(group_head.data(), row, width);
      have_group = true;
      emitting = true;
    } else if (emitting &&
               schema.CompareColumn(last_col, group_head.data(), row) != 0) {
      // Last value fell below the group optimum: skip the rest of the
      // group (cannot be skyline).
      emitting = false;
    }
    if (emitting) {
      SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
      ++s->output_rows;
    }
  }
  SKYLINE_RETURN_IF_ERROR(reader.status());
  s->seconds = timer.ElapsedSeconds();
  return builder.Finish();
}

}  // namespace skyline
