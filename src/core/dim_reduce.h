#ifndef SKYLINE_CORE_DIM_REDUCE_H_
#define SKYLINE_CORE_DIM_REDUCE_H_

#include <string>

#include "common/status.h"
#include "core/run_stats.h"
#include "core/skyline_spec.h"
#include "relation/table.h"
#include "sort/external_sort.h"

namespace skyline {

/// Statistics for one dimensional-reduction run.
struct DimReduceStats {
  uint64_t input_rows = 0;
  uint64_t output_rows = 0;
  SortStats sort_stats;
  double seconds = 0.0;

  double ReductionRatio() const {
    return input_rows == 0
               ? 1.0
               : static_cast<double>(output_rows) /
                     static_cast<double>(input_rows);
  }
};

/// The paper's dimensional-reduction optimization (Figure 8): group the
/// relation by the first k-1 MIN/MAX criteria (and all DIFF columns) and
/// keep, per group, only the tuples achieving the best value of the last
/// criterion — tuples with a non-optimal last attribute in their group
/// cannot be skyline. Effective when attribute domains are small, so groups
/// are large (the paper reduces 1M rows to ~10% with domains 0..9).
///
/// Implementation: one nested sort with the last criterion innermost, then
/// a single scan emitting each group's leading run of best-last-value
/// tuples (all non-criterion attributes preserved). The output table at
/// `output_path` is in nested monotone order, so it can feed SFS with
/// Presort::kNone. Requires at least two MIN/MAX criteria. `stats` may be
/// null.
Result<Table> DimensionalReduction(const Table& input, const SkylineSpec& spec,
                                   const SortOptions& sort_options,
                                   const ExecContext& ctx,
                                   const std::string& output_path,
                                   DimReduceStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_DIM_REDUCE_H_
