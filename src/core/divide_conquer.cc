#include "core/divide_conquer.h"

#include <algorithm>
#include <map>
#include <string>

#include "core/dominance.h"
#include "core/naive.h"

namespace skyline {
namespace {

/// Threshold below which recursion falls back to the quadratic scan.
constexpr size_t kBaseCaseSize = 32;

class DcSolver {
 public:
  DcSolver(const SkylineSpec& spec, const char* rows)
      : spec_(spec), rows_(rows), width_(spec.schema().row_width()) {}

  const char* Row(uint64_t i) const { return rows_ + i * width_; }

  /// Computes the skyline of `indices` in place (survivors kept).
  void Solve(std::vector<uint64_t>* indices) {
    if (indices->size() <= kBaseCaseSize) {
      Base(indices);
      return;
    }
    // Median split on the first value criterion; "better" half first
    // (larger for MAX, smaller for MIN).
    const auto& vc = spec_.value_columns().front();
    auto better_first = [&](uint64_t a, uint64_t b) {
      int c = spec_.schema().CompareColumn(vc.column, Row(a), Row(b));
      return vc.max ? c > 0 : c < 0;
    };
    const size_t mid = indices->size() / 2;
    std::nth_element(indices->begin(), indices->begin() + mid, indices->end(),
                     better_first);
    std::vector<uint64_t> good(indices->begin(), indices->begin() + mid);
    std::vector<uint64_t> bad(indices->begin() + mid, indices->end());
    // Degenerate split (all keys equal) — fall back to the base case to
    // guarantee progress.
    if (good.empty() || bad.empty()) {
      Base(indices);
      return;
    }
    Solve(&good);
    Solve(&bad);
    // Filter the worse half by the better half's skyline. (Tuples in the
    // better half cannot be dominated by the worse half: their split key is
    // at least as good, so worse-half tuples never strictly dominate them
    // ... except when split keys tie, which the dominance test handles —
    // so we filter both directions for full correctness on ties.)
    std::vector<uint64_t> merged;
    merged.reserve(good.size() + bad.size());
    for (uint64_t g : good) {
      if (!DominatedByAny(g, bad)) merged.push_back(g);
    }
    for (uint64_t b : bad) {
      if (!DominatedByAny(b, good)) merged.push_back(b);
    }
    std::sort(merged.begin(), merged.end());
    *indices = std::move(merged);
  }

 private:
  bool DominatedByAny(uint64_t candidate,
                      const std::vector<uint64_t>& others) const {
    const char* row = Row(candidate);
    for (uint64_t o : others) {
      if (Dominates(spec_, Row(o), row)) return true;
    }
    return false;
  }

  void Base(std::vector<uint64_t>* indices) {
    std::vector<uint64_t> keep;
    keep.reserve(indices->size());
    for (size_t i = 0; i < indices->size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < indices->size() && !dominated; ++j) {
        if (i == j) continue;
        dominated =
            Dominates(spec_, Row((*indices)[j]), Row((*indices)[i]));
      }
      if (!dominated) keep.push_back((*indices)[i]);
    }
    *indices = std::move(keep);
  }

  const SkylineSpec& spec_;
  const char* rows_;
  size_t width_;
};

}  // namespace

std::vector<uint64_t> DivideConquerSkylineIndices(const SkylineSpec& spec,
                                                  const char* rows,
                                                  uint64_t count) {
  const size_t width = spec.schema().row_width();
  DcSolver solver(spec, rows);

  // Partition into DIFF groups (tuples in different groups are mutually
  // incomparable), solve each group independently.
  std::map<std::string, std::vector<uint64_t>> groups;
  if (spec.has_diff()) {
    for (uint64_t i = 0; i < count; ++i) {
      std::string key;
      for (size_t col : spec.diff_columns()) {
        const char* base = rows + i * width + spec.schema().offset(col);
        key.append(base, spec.schema().column_width(col));
      }
      groups[key].push_back(i);
    }
  } else {
    std::vector<uint64_t>& all = groups[""];
    all.resize(count);
    for (uint64_t i = 0; i < count; ++i) all[i] = i;
  }

  std::vector<uint64_t> result;
  for (auto& [key, indices] : groups) {
    solver.Solve(&indices);
    result.insert(result.end(), indices.begin(), indices.end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

Result<std::vector<char>> DivideConquerSkylineRows(const Table& input,
                                                   const SkylineSpec& spec) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  std::vector<char> rows;
  SKYLINE_RETURN_IF_ERROR(input.ReadAllRows(&rows));
  const size_t width = spec.schema().row_width();
  std::vector<uint64_t> indices =
      DivideConquerSkylineIndices(spec, rows.data(), input.row_count());
  std::vector<char> out;
  out.reserve(indices.size() * width);
  for (uint64_t i : indices) {
    out.insert(out.end(), rows.data() + i * width,
               rows.data() + (i + 1) * width);
  }
  return out;
}

}  // namespace skyline
