#ifndef SKYLINE_CORE_DIVIDE_CONQUER_H_
#define SKYLINE_CORE_DIVIDE_CONQUER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/skyline_spec.h"
#include "relation/table.h"

namespace skyline {

/// In-memory divide & conquer skyline (the D&C algorithm of Börzsönyi et
/// al., after Kung/Luccio/Preparata's maximal-vector algorithm): split on
/// the median of the first MIN/MAX criterion, recursively compute both
/// halves' skylines, then remove from the worse half everything dominated
/// by the better half.
///
/// The paper discusses D&C only as the in-memory comparison point (its
/// external variant "would not scale well for larger datasets"), so this
/// implementation is deliberately memory-resident; the ablation bench pits
/// it against SFS and BNL on equal in-memory footing.
///
/// DIFF criteria are honored by partitioning into DIFF groups first.
/// Returns indices of skyline rows (ascending input order).
std::vector<uint64_t> DivideConquerSkylineIndices(const SkylineSpec& spec,
                                                  const char* rows,
                                                  uint64_t count);

/// Convenience over a Table; returns a dense buffer of skyline rows in
/// input order.
Result<std::vector<char>> DivideConquerSkylineRows(const Table& input,
                                                   const SkylineSpec& spec);

}  // namespace skyline

#endif  // SKYLINE_CORE_DIVIDE_CONQUER_H_
