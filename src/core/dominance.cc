#include "core/dominance.h"

#include <cstring>

#include "common/order_key.h"

namespace skyline {
namespace {

template <typename T>
inline int CompareAt(const char* a, const char* b, uint32_t offset) {
  T va, vb;
  std::memcpy(&va, a + offset, sizeof(T));
  std::memcpy(&vb, b + offset, sizeof(T));
  return va < vb ? -1 : (va > vb ? 1 : 0);
}

inline int CompareDomColumn(const SkylineSpec::DomColumn& dc, const char* a,
                            const char* b) {
  switch (dc.type) {
    case ColumnType::kInt32:
      return CompareAt<int32_t>(a, b, dc.offset);
    case ColumnType::kInt64:
      return CompareAt<int64_t>(a, b, dc.offset);
    case ColumnType::kFloat64: {
      // Total-order compare: must match the columnar order keys exactly
      // (NaN, -0.0) so row fallback and kernel verdicts never diverge.
      double va, vb;
      std::memcpy(&va, a + dc.offset, sizeof(va));
      std::memcpy(&vb, b + dc.offset, sizeof(vb));
      return CompareDoubleTotalOrder(va, vb);
    }
    case ColumnType::kFixedString:
      return std::memcmp(a + dc.offset, b + dc.offset, dc.length);
  }
  return 0;
}

}  // namespace

DomResult CompareDominance(const SkylineSpec& spec, const char* a,
                           const char* b) {
  // Criterion layouts are offset-resolved once in SkylineSpec::Make, so the
  // inner loops below do no per-row schema lookups.
  for (const auto& dc : spec.dom_diff_columns()) {
    if (CompareDomColumn(dc, a, b) != 0) return DomResult::kIncomparable;
  }
  bool a_better = false;
  bool b_better = false;
  const auto& values = spec.dom_value_columns();
  if (spec.values_all_int32()) {
    // All-int32 criteria (the paper's tuple shape): branch-light loop with
    // an early incomparability exit the moment both sides have won a
    // dimension — the overwhelmingly common outcome on independent data.
    for (const auto& dc : values) {
      int32_t va, vb;
      std::memcpy(&va, a + dc.offset, sizeof(va));
      std::memcpy(&vb, b + dc.offset, sizeof(vb));
      if (va == vb) continue;
      if ((va > vb) == dc.max) {
        if (b_better) return DomResult::kIncomparable;
        a_better = true;
      } else {
        if (a_better) return DomResult::kIncomparable;
        b_better = true;
      }
    }
  } else {
    for (const auto& dc : values) {
      int c = CompareDomColumn(dc, a, b);
      if (!dc.max) c = -c;  // for MIN criteria smaller is better
      if (c > 0) {
        if (b_better) return DomResult::kIncomparable;
        a_better = true;
      } else if (c < 0) {
        if (a_better) return DomResult::kIncomparable;
        b_better = true;
      }
    }
  }
  if (a_better) return DomResult::kFirstDominates;
  if (b_better) return DomResult::kSecondDominates;
  return DomResult::kEquivalent;
}

uint64_t DominanceNumber(const SkylineSpec& spec, const char* row,
                         const char* rows, uint64_t count) {
  const size_t width = spec.schema().row_width();
  uint64_t dn = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (Dominates(spec, row, rows + i * width)) ++dn;
  }
  return dn;
}

}  // namespace skyline
