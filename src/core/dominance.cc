#include "core/dominance.h"

namespace skyline {

DomResult CompareDominance(const SkylineSpec& spec, const char* a,
                           const char* b) {
  const Schema& schema = spec.schema();
  for (size_t col : spec.diff_columns()) {
    if (schema.CompareColumn(col, a, b) != 0) return DomResult::kIncomparable;
  }
  bool a_better = false;
  bool b_better = false;
  for (const auto& vc : spec.value_columns()) {
    int c = schema.CompareColumn(vc.column, a, b);
    if (!vc.max) c = -c;  // for MIN criteria smaller is better
    if (c > 0) {
      if (b_better) return DomResult::kIncomparable;
      a_better = true;
    } else if (c < 0) {
      if (a_better) return DomResult::kIncomparable;
      b_better = true;
    }
  }
  if (a_better) return DomResult::kFirstDominates;
  if (b_better) return DomResult::kSecondDominates;
  return DomResult::kEquivalent;
}

uint64_t DominanceNumber(const SkylineSpec& spec, const char* row,
                         const char* rows, uint64_t count) {
  const size_t width = spec.schema().row_width();
  uint64_t dn = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (Dominates(spec, row, rows + i * width)) ++dn;
  }
  return dn;
}

}  // namespace skyline
