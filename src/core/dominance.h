#ifndef SKYLINE_CORE_DOMINANCE_H_
#define SKYLINE_CORE_DOMINANCE_H_

#include "core/skyline_spec.h"

namespace skyline {

/// Outcome of comparing two rows under the skyline dominance partial order
/// "≼" of the paper's Section 3: a ≽ b iff a is at least as good as b on
/// every MIN/MAX criterion (and they agree on every DIFF column); a ≻ b
/// (a *dominates* b) iff additionally a is strictly better somewhere.
enum class DomResult {
  /// First row strictly dominates the second.
  kFirstDominates,
  /// Second row strictly dominates the first.
  kSecondDominates,
  /// Equal on every skyline criterion (both can be skyline members).
  kEquivalent,
  /// Neither dominates (including rows in different DIFF groups).
  kIncomparable,
};

/// Full dominance comparison of two raw rows of spec.schema().
DomResult CompareDominance(const SkylineSpec& spec, const char* a,
                           const char* b);

/// True iff `a` strictly dominates `b`.
inline bool Dominates(const SkylineSpec& spec, const char* a, const char* b) {
  return CompareDominance(spec, a, b) == DomResult::kFirstDominates;
}

/// Dominance number dn(t): how many rows of `rows` (a dense row_width-strided
/// buffer of `count` rows) are strictly dominated by `row`. O(count); used in
/// tests and the ordering ablation (the paper's reduction-factor heuristic
/// maximizes the window's cumulative dn).
uint64_t DominanceNumber(const SkylineSpec& spec, const char* row,
                         const char* rows, uint64_t count);

}  // namespace skyline

#endif  // SKYLINE_CORE_DOMINANCE_H_
