#include "core/dominance_batch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/order_key.h"

#if defined(__x86_64__) || defined(_M_X64)
#define SKYLINE_BATCH_X86 1
#include <immintrin.h>
#endif

namespace skyline {
namespace {

constexpr size_t kBlock = DominanceIndex::kBlockEntries;

std::atomic<bool> g_force_row_path{false};

/// Zeroes mask bits at and above `count`.
inline uint64_t ValidMask(size_t count) {
  return count >= 64 ? ~uint64_t{0} : ((uint64_t{1} << count) - 1);
}

// The kernels compose three block-level bitmasks — ge/le over value lanes
// (entry >=/<= probe on every criterion) and eq over diff lanes — and
// derive the relation masks at the end:
//   dominates = ge & ~le & eq,  dominated = le & ~ge & eq,
//   equal     = ge &  le & eq.
// All masks start from ValidMask(count), so ghost lanes in the padded
// block never contribute.

void ScalarBatch(const DominanceBatchInput& in, BlockMasks* out) {
  uint64_t dominates = 0, dominated = 0, equal = 0;
  for (size_t e = 0; e < in.count; ++e) {
    bool same_group = true;
    for (size_t d = 0; d < in.num_diffs32 && same_group; ++d) {
      same_group = in.diff32_cols[d][e] == in.probe_diffs32[d];
    }
    for (size_t d = 0; d < in.num_diffs64 && same_group; ++d) {
      same_group = in.diff64_cols[d][e] == in.probe_diffs64[d];
    }
    if (!same_group) continue;
    bool ge = true, le = true;  // entry >=/<= probe on every criterion
    for (size_t d = 0; d < in.num_values32 && (ge || le); ++d) {
      const int32_t v = in.value32_cols[d][e];
      const int32_t p = in.probe_values32[d];
      ge &= v >= p;
      le &= v <= p;
    }
    for (size_t d = 0; d < in.num_values64 && (ge || le); ++d) {
      const int64_t v = in.value64_cols[d][e];
      const int64_t p = in.probe_values64[d];
      ge &= v >= p;
      le &= v <= p;
    }
    const uint64_t bit = uint64_t{1} << e;
    if (ge && le) {
      equal |= bit;
    } else if (ge) {
      dominates |= bit;
    } else if (le) {
      dominated |= bit;
    }
  }
  out->dominates = dominates;
  out->dominated = dominated;
  out->equal = equal;
}

#ifdef SKYLINE_BATCH_X86

// SSE2 is part of the x86-64 baseline, so this path needs no runtime
// feature test and no target attribute. 32-bit lanes compare four entries
// per vector; 64-bit lanes fall back to scalar loops (SSE2 has no 64-bit
// integer compares) while still folding into the same block masks.
void Sse2Batch(const DominanceBatchInput& in, BlockMasks* out) {
  const uint64_t valid = ValidMask(in.count);
  const size_t groups4 = (in.count + 3) / 4;
  uint64_t eq = valid;
  for (size_t d = 0; d < in.num_diffs32 && eq != 0; ++d) {
    const __m128i p = _mm_set1_epi32(in.probe_diffs32[d]);
    uint64_t m = 0;
    for (size_t g = 0; g < groups4; ++g) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in.diff32_cols[d] + g * 4));
      m |= static_cast<uint64_t>(static_cast<uint32_t>(
               _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, p)))))
           << (g * 4);
    }
    eq &= m;
  }
  for (size_t d = 0; d < in.num_diffs64 && eq != 0; ++d) {
    const int64_t p = in.probe_diffs64[d];
    const int64_t* col = in.diff64_cols[d];
    uint64_t m = 0;
    for (size_t e = 0; e < in.count; ++e) {
      m |= static_cast<uint64_t>(col[e] == p) << e;
    }
    eq &= m;
  }
  if (eq == 0) {
    out->dominates = out->dominated = out->equal = 0;
    return;
  }
  uint64_t ge = valid, le = valid;
  for (size_t d = 0; d < in.num_values32 && (ge | le) != 0; ++d) {
    const __m128i p = _mm_set1_epi32(in.probe_values32[d]);
    uint64_t lt = 0, gt = 0;
    for (size_t g = 0; g < groups4; ++g) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in.value32_cols[d] + g * 4));
      lt |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(v, p)))))
            << (g * 4);
      gt |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(v, p)))))
            << (g * 4);
    }
    ge &= ~lt;
    le &= ~gt;
  }
  for (size_t d = 0; d < in.num_values64 && (ge | le) != 0; ++d) {
    const int64_t p = in.probe_values64[d];
    const int64_t* col = in.value64_cols[d];
    uint64_t lt = 0, gt = 0;
    for (size_t e = 0; e < in.count; ++e) {
      lt |= static_cast<uint64_t>(col[e] < p) << e;
      gt |= static_cast<uint64_t>(col[e] > p) << e;
    }
    ge &= ~lt;
    le &= ~gt;
  }
  ge &= eq;
  le &= eq;
  out->dominates = ge & ~le;
  out->dominated = le & ~ge;
  out->equal = ge & le;
}

__attribute__((target("avx2"))) void Avx2Batch(const DominanceBatchInput& in,
                                               BlockMasks* out) {
  const uint64_t valid = ValidMask(in.count);
  const size_t groups8 = (in.count + 7) / 8;
  const size_t groups4 = (in.count + 3) / 4;
  uint64_t eq = valid;
  for (size_t d = 0; d < in.num_diffs32 && eq != 0; ++d) {
    const __m256i p = _mm256_set1_epi32(in.probe_diffs32[d]);
    uint64_t m = 0;
    for (size_t g = 0; g < groups8; ++g) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in.diff32_cols[d] + g * 8));
      m |= static_cast<uint64_t>(static_cast<uint32_t>(
               _mm256_movemask_ps(
                   _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, p)))))
           << (g * 8);
    }
    eq &= m;
  }
  for (size_t d = 0; d < in.num_diffs64 && eq != 0; ++d) {
    const __m256i p = _mm256_set1_epi64x(in.probe_diffs64[d]);
    uint64_t m = 0;
    for (size_t g = 0; g < groups4; ++g) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in.diff64_cols[d] + g * 4));
      m |= static_cast<uint64_t>(static_cast<uint32_t>(
               _mm256_movemask_pd(
                   _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, p)))))
           << (g * 4);
    }
    eq &= m;
  }
  if (eq == 0) {
    out->dominates = out->dominated = out->equal = 0;
    return;
  }
  uint64_t ge = valid, le = valid;
  for (size_t d = 0; d < in.num_values32 && (ge | le) != 0; ++d) {
    const __m256i p = _mm256_set1_epi32(in.probe_values32[d]);
    uint64_t lt = 0, gt = 0;
    for (size_t g = 0; g < groups8; ++g) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in.value32_cols[d] + g * 8));
      // AVX2 only has signed cmpgt: v<p is p>v.
      lt |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm256_movemask_ps(
                    _mm256_castsi256_ps(_mm256_cmpgt_epi32(p, v)))))
            << (g * 8);
      gt |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm256_movemask_ps(
                    _mm256_castsi256_ps(_mm256_cmpgt_epi32(v, p)))))
            << (g * 8);
    }
    ge &= ~lt;
    le &= ~gt;
  }
  for (size_t d = 0; d < in.num_values64 && (ge | le) != 0; ++d) {
    const __m256i p = _mm256_set1_epi64x(in.probe_values64[d]);
    uint64_t lt = 0, gt = 0;
    for (size_t g = 0; g < groups4; ++g) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in.value64_cols[d] + g * 4));
      lt |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm256_movemask_pd(
                    _mm256_castsi256_pd(_mm256_cmpgt_epi64(p, v)))))
            << (g * 4);
      gt |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm256_movemask_pd(
                    _mm256_castsi256_pd(_mm256_cmpgt_epi64(v, p)))))
            << (g * 4);
    }
    ge &= ~lt;
    le &= ~gt;
  }
  ge &= eq;
  le &= eq;
  out->dominates = ge & ~le;
  out->dominated = le & ~ge;
  out->equal = ge & le;
}

#endif  // SKYLINE_BATCH_X86

const DominanceKernel kScalarKernel{"scalar", &ScalarBatch};
#ifdef SKYLINE_BATCH_X86
const DominanceKernel kSse2Kernel{"sse2", &Sse2Batch};
const DominanceKernel kAvx2Kernel{"avx2", &Avx2Batch};
#endif

std::vector<const DominanceKernel*> BuildAvailable() {
  std::vector<const DominanceKernel*> kernels{&kScalarKernel};
#ifdef SKYLINE_BATCH_X86
  kernels.push_back(&kSse2Kernel);
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) kernels.push_back(&kAvx2Kernel);
#endif
#endif
  return kernels;
}

const DominanceKernel* ResolveActive() {
  const auto& kernels = AvailableDominanceKernels();
  if (const char* want = std::getenv("SKYLINE_DOMINANCE_KERNEL")) {
    if (std::string(want) == "row") {
      SetForceRowDominancePath(true);
      return kernels.back();
    }
    for (const DominanceKernel* k : kernels) {
      if (std::string(want) == k->name) return k;
    }
    LogWarning(std::string("SKYLINE_DOMINANCE_KERNEL=") + want +
               " is not available; using " + kernels.back()->name);
  }
  return kernels.back();
}

}  // namespace

const DominanceKernel& ScalarDominanceKernel() { return kScalarKernel; }

const std::vector<const DominanceKernel*>& AvailableDominanceKernels() {
  static const std::vector<const DominanceKernel*> kernels = BuildAvailable();
  return kernels;
}

const DominanceKernel& ActiveDominanceKernel() {
  static const DominanceKernel* active = ResolveActive();
  return *active;
}

void SetForceRowDominancePath(bool force) {
  g_force_row_path.store(force, std::memory_order_relaxed);
}

bool ForceRowDominancePath() {
  return g_force_row_path.load(std::memory_order_relaxed);
}

SpecDictionaries::SpecDictionaries(const SkylineSpec* spec) {
  for (const auto& dc : spec->dom_diff_columns()) {
    if (dc.type == ColumnType::kFixedString) {
      dicts_.push_back(std::make_unique<StringDictionary>(dc.length));
    }
  }
}

uint64_t SpecDictionaries::TotalProbeHits() const {
  uint64_t hits = 0;
  for (const auto& d : dicts_) hits += d->probe_hits();
  return hits;
}

DominanceIndex::DominanceIndex(const SkylineSpec* spec,
                               const DominanceKernel* kernel,
                               std::shared_ptr<SpecDictionaries> dicts)
    : spec_(spec),
      kernel_(kernel != nullptr ? kernel : &ActiveDominanceKernel()) {
  // ActiveDominanceKernel() above also applies SKYLINE_DOMINANCE_KERNEL=row
  // before the force flag is consulted.
  if (kernel != nullptr) ActiveDominanceKernel();
  columnar_ = spec->dom_value_columns().size() <= kMaxColumns &&
              spec->dom_diff_columns().size() <= kMaxColumns &&
              !ForceRowDominancePath();
  if (!columnar_) return;

  int32_t next_dict = 0;
  for (const auto& dc : spec_->dom_value_columns()) {
    switch (dc.type) {
      case ColumnType::kInt32:
        value32_lanes_.push_back({dc.offset, dc.max});
        break;
      case ColumnType::kInt64:
      case ColumnType::kFloat64:
        value64_lanes_.push_back({dc.offset, dc.type, dc.max});
        break;
      case ColumnType::kFixedString:
        // SkylineSpec::Make rejects MIN/MAX over strings.
        SKYLINE_CHECK(false) << "string MIN/MAX criterion";
    }
  }
  for (const auto& dc : spec_->dom_diff_columns()) {
    switch (dc.type) {
      case ColumnType::kInt32:
        diff32_lanes_.push_back({dc.offset, dc.length, -1});
        break;
      case ColumnType::kFixedString:
        diff32_lanes_.push_back({dc.offset, dc.length, next_dict++});
        break;
      case ColumnType::kInt64:
      case ColumnType::kFloat64:
        diff64_lanes_.push_back({dc.offset, dc.type});
        break;
    }
  }
  if (next_dict > 0) {
    dicts_ = dicts != nullptr ? std::move(dicts)
                              : std::make_shared<SpecDictionaries>(spec_);
    SKYLINE_CHECK_EQ(dicts_->count(), static_cast<size_t>(next_dict));
  }

  values32_.resize(value32_lanes_.size());
  value32_zmin_.resize(values32_.size());
  value32_zmax_.resize(values32_.size());
  values64_.resize(value64_lanes_.size());
  value64_zmin_.resize(values64_.size());
  value64_zmax_.resize(values64_.size());
  diffs32_.resize(diff32_lanes_.size());
  diff32_zmin_.resize(diffs32_.size());
  diff32_zmax_.resize(diffs32_.size());
  diffs64_.resize(diff64_lanes_.size());
  diff64_zmin_.resize(diffs64_.size());
  diff64_zmax_.resize(diffs64_.size());
}

void DominanceIndex::Reserve(size_t capacity) {
  if (!columnar_) return;
  EnsureCapacity(capacity);
}

void DominanceIndex::EnsureCapacity(size_t entries) {
  if (entries <= padded_) return;
  const size_t new_padded = BlockCountFor(entries) * kBlock;
  // Blocks are zero-filled on allocation so kernel vector loads past the
  // live count read initialized memory (lanes are masked off afterwards).
  for (auto& col : values32_) col.resize(new_padded, 0);
  for (auto& col : values64_) col.resize(new_padded, 0);
  for (auto& col : diffs32_) col.resize(new_padded, 0);
  for (auto& col : diffs64_) col.resize(new_padded, 0);
  const size_t blocks = new_padded / kBlock;
  for (auto& z : value32_zmin_) z.resize(blocks, 0);
  for (auto& z : value32_zmax_) z.resize(blocks, 0);
  for (auto& z : value64_zmin_) z.resize(blocks, 0);
  for (auto& z : value64_zmax_) z.resize(blocks, 0);
  for (auto& z : diff32_zmin_) z.resize(blocks, 0);
  for (auto& z : diff32_zmax_) z.resize(blocks, 0);
  for (auto& z : diff64_zmin_) z.resize(blocks, 0);
  for (auto& z : diff64_zmax_) z.resize(blocks, 0);
  padded_ = new_padded;
}

int32_t DominanceIndex::EncodeDiff32(const DiffLane32& lane,
                                     const char* row) const {
  if (lane.dict < 0) {
    int32_t v;
    std::memcpy(&v, row + lane.offset, sizeof(v));
    return v;
  }
  return dicts_->dict(static_cast<size_t>(lane.dict))->Find(row + lane.offset);
}

int32_t DominanceIndex::EncodeDiff32Mut(const DiffLane32& lane,
                                        const char* row) {
  if (lane.dict < 0) {
    int32_t v;
    std::memcpy(&v, row + lane.offset, sizeof(v));
    return v;
  }
  return dicts_->dict(static_cast<size_t>(lane.dict))
      ->Encode(row + lane.offset);
}

int64_t DominanceIndex::EncodeValue64(const ValueLane64& lane,
                                      const char* row) const {
  if (lane.type == ColumnType::kFloat64) {
    double v;
    std::memcpy(&v, row + lane.offset, sizeof(v));
    return OrderKeyFromDouble(v, lane.max);
  }
  int64_t v;
  std::memcpy(&v, row + lane.offset, sizeof(v));
  return OrderKey64(v, lane.max);
}

int64_t DominanceIndex::EncodeDiff64(const DiffLane64& lane,
                                     const char* row) const {
  if (lane.type == ColumnType::kFloat64) {
    // Equality lane only: the total-order key is a bijection on bit
    // patterns, so key equality == the row path's total-order equality.
    double v;
    std::memcpy(&v, row + lane.offset, sizeof(v));
    return Float64TotalOrderKey(v);
  }
  int64_t v;
  std::memcpy(&v, row + lane.offset, sizeof(v));
  return v;
}

void DominanceIndex::EncodeProbe(const char* row, Probe* out) const {
  for (size_t d = 0; d < value32_lanes_.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + value32_lanes_[d].offset, sizeof(v));
    out->values32[d] = OrderKey32(v, value32_lanes_[d].max);
  }
  for (size_t d = 0; d < value64_lanes_.size(); ++d) {
    out->values64[d] = EncodeValue64(value64_lanes_[d], row);
  }
  for (size_t d = 0; d < diff32_lanes_.size(); ++d) {
    out->diffs32[d] = EncodeDiff32(diff32_lanes_[d], row);
  }
  for (size_t d = 0; d < diff64_lanes_.size(); ++d) {
    out->diffs64[d] = EncodeDiff64(diff64_lanes_[d], row);
  }
}

void DominanceIndex::Append(const char* row) {
  if (!columnar_) return;
  EnsureCapacity(size_ + 1);
  const size_t i = size_;
  const size_t b = i / kBlock;
  const bool block_start = (i % kBlock) == 0;
  auto fold = [block_start](auto key, auto& zmin, auto& zmax) {
    if (block_start) {
      zmin = key;
      zmax = key;
    } else {
      if (key < zmin) zmin = key;
      if (key > zmax) zmax = key;
    }
  };
  for (size_t d = 0; d < value32_lanes_.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + value32_lanes_[d].offset, sizeof(v));
    const int32_t key = OrderKey32(v, value32_lanes_[d].max);
    values32_[d][i] = key;
    fold(key, value32_zmin_[d][b], value32_zmax_[d][b]);
  }
  for (size_t d = 0; d < value64_lanes_.size(); ++d) {
    const int64_t key = EncodeValue64(value64_lanes_[d], row);
    values64_[d][i] = key;
    fold(key, value64_zmin_[d][b], value64_zmax_[d][b]);
  }
  for (size_t d = 0; d < diff32_lanes_.size(); ++d) {
    const int32_t v = EncodeDiff32Mut(diff32_lanes_[d], row);
    diffs32_[d][i] = v;
    fold(v, diff32_zmin_[d][b], diff32_zmax_[d][b]);
  }
  for (size_t d = 0; d < diff64_lanes_.size(); ++d) {
    const int64_t v = EncodeDiff64(diff64_lanes_[d], row);
    diffs64_[d][i] = v;
    fold(v, diff64_zmin_[d][b], diff64_zmax_[d][b]);
  }
  ++size_;
}

void DominanceIndex::ReplaceAt(size_t i, const char* row) {
  if (!columnar_) return;
  SKYLINE_CHECK_LT(i, size_);
  const size_t b = i / kBlock;
  // Widen only: the replaced entry's contribution may linger, which is
  // sound (a too-wide zone map merely prunes less).
  auto widen = [](auto key, auto& zmin, auto& zmax) {
    if (key < zmin) zmin = key;
    if (key > zmax) zmax = key;
  };
  for (size_t d = 0; d < value32_lanes_.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + value32_lanes_[d].offset, sizeof(v));
    const int32_t key = OrderKey32(v, value32_lanes_[d].max);
    values32_[d][i] = key;
    widen(key, value32_zmin_[d][b], value32_zmax_[d][b]);
  }
  for (size_t d = 0; d < value64_lanes_.size(); ++d) {
    const int64_t key = EncodeValue64(value64_lanes_[d], row);
    values64_[d][i] = key;
    widen(key, value64_zmin_[d][b], value64_zmax_[d][b]);
  }
  for (size_t d = 0; d < diff32_lanes_.size(); ++d) {
    const int32_t v = EncodeDiff32Mut(diff32_lanes_[d], row);
    diffs32_[d][i] = v;
    widen(v, diff32_zmin_[d][b], diff32_zmax_[d][b]);
  }
  for (size_t d = 0; d < diff64_lanes_.size(); ++d) {
    const int64_t v = EncodeDiff64(diff64_lanes_[d], row);
    diffs64_[d][i] = v;
    widen(v, diff64_zmin_[d][b], diff64_zmax_[d][b]);
  }
}

void DominanceIndex::RemoveSwapLast(size_t i) {
  if (!columnar_) return;
  SKYLINE_CHECK_LT(i, size_);
  const size_t last = size_ - 1;
  if (i != last) {
    const size_t b = i / kBlock;
    auto widen = [](auto key, auto& zmin, auto& zmax) {
      if (key < zmin) zmin = key;
      if (key > zmax) zmax = key;
    };
    for (size_t d = 0; d < values32_.size(); ++d) {
      const int32_t key = values32_[d][last];
      values32_[d][i] = key;
      widen(key, value32_zmin_[d][b], value32_zmax_[d][b]);
    }
    for (size_t d = 0; d < values64_.size(); ++d) {
      const int64_t key = values64_[d][last];
      values64_[d][i] = key;
      widen(key, value64_zmin_[d][b], value64_zmax_[d][b]);
    }
    for (size_t d = 0; d < diffs32_.size(); ++d) {
      const int32_t v = diffs32_[d][last];
      diffs32_[d][i] = v;
      widen(v, diff32_zmin_[d][b], diff32_zmax_[d][b]);
    }
    for (size_t d = 0; d < diffs64_.size(); ++d) {
      const int64_t v = diffs64_[d][last];
      diffs64_[d][i] = v;
      widen(v, diff64_zmin_[d][b], diff64_zmax_[d][b]);
    }
  }
  --size_;
}

bool DominanceIndex::CanPruneBlock(const Probe& probe, size_t b) const {
  // A DIFF column whose block range misses the probe's group value makes
  // every entry incomparable to the probe. (An unseen dictionary probe is
  // kNoCode = -1, below every real code, so it prunes here.)
  for (size_t d = 0; d < diffs32_.size(); ++d) {
    if (probe.diffs32[d] < diff32_zmin_[d][b] ||
        probe.diffs32[d] > diff32_zmax_[d][b]) {
      return true;
    }
  }
  for (size_t d = 0; d < diffs64_.size(); ++d) {
    if (probe.diffs64[d] < diff64_zmin_[d][b] ||
        probe.diffs64[d] > diff64_zmax_[d][b]) {
      return true;
    }
  }
  // No dominator/equal: some criterion where even the block's best key is
  // strictly worse than the probe (no entry can be >= the probe
  // everywhere). This alone is not enough — the block could still contain
  // entries the probe dominates (the sort-violation / BNL-eviction case).
  bool no_dominator = false;
  for (size_t d = 0; d < values32_.size() && !no_dominator; ++d) {
    no_dominator = value32_zmax_[d][b] < probe.values32[d];
  }
  for (size_t d = 0; d < values64_.size() && !no_dominator; ++d) {
    no_dominator = value64_zmax_[d][b] < probe.values64[d];
  }
  if (!no_dominator) return false;
  // No dominated/equal: some criterion where even the block's worst key
  // beats the probe (no entry can be <= the probe everywhere).
  for (size_t d = 0; d < values32_.size(); ++d) {
    if (value32_zmin_[d][b] > probe.values32[d]) return true;
  }
  for (size_t d = 0; d < values64_.size(); ++d) {
    if (value64_zmin_[d][b] > probe.values64[d]) return true;
  }
  return false;
}

bool DominanceIndex::CanPruneBlockForDominators(const Probe& probe,
                                                size_t b) const {
  for (size_t d = 0; d < diffs32_.size(); ++d) {
    if (probe.diffs32[d] < diff32_zmin_[d][b] ||
        probe.diffs32[d] > diff32_zmax_[d][b]) {
      return true;
    }
  }
  for (size_t d = 0; d < diffs64_.size(); ++d) {
    if (probe.diffs64[d] < diff64_zmin_[d][b] ||
        probe.diffs64[d] > diff64_zmax_[d][b]) {
      return true;
    }
  }
  // A dominator must be >= the probe on every criterion; if even the
  // block's best key loses somewhere, no entry qualifies.
  for (size_t d = 0; d < values32_.size(); ++d) {
    if (value32_zmax_[d][b] < probe.values32[d]) return true;
  }
  for (size_t d = 0; d < values64_.size(); ++d) {
    if (value64_zmax_[d][b] < probe.values64[d]) return true;
  }
  return false;
}

BlockMasks DominanceIndex::TestBlock(const Probe& probe, size_t b,
                                     size_t limit) const {
  const size_t base = b * kBlockEntries;
  const int32_t* value32_ptrs[kMaxColumns];
  const int64_t* value64_ptrs[kMaxColumns];
  const int32_t* diff32_ptrs[kMaxColumns];
  const int64_t* diff64_ptrs[kMaxColumns];
  for (size_t d = 0; d < values32_.size(); ++d) {
    value32_ptrs[d] = values32_[d].data() + base;
  }
  for (size_t d = 0; d < values64_.size(); ++d) {
    value64_ptrs[d] = values64_[d].data() + base;
  }
  for (size_t d = 0; d < diffs32_.size(); ++d) {
    diff32_ptrs[d] = diffs32_[d].data() + base;
  }
  for (size_t d = 0; d < diffs64_.size(); ++d) {
    diff64_ptrs[d] = diffs64_[d].data() + base;
  }
  DominanceBatchInput in;
  in.value32_cols = value32_ptrs;
  in.probe_values32 = probe.values32;
  in.num_values32 = values32_.size();
  in.value64_cols = value64_ptrs;
  in.probe_values64 = probe.values64;
  in.num_values64 = values64_.size();
  in.diff32_cols = diff32_ptrs;
  in.probe_diffs32 = probe.diffs32;
  in.num_diffs32 = diffs32_.size();
  in.diff64_cols = diff64_ptrs;
  in.probe_diffs64 = probe.diffs64;
  in.num_diffs64 = diffs64_.size();
  in.count = BlockEntries(b, limit);
  BlockMasks out;
  kernel_->batch(in, &out);
  return out;
}

bool DominanceIndex::AnyEntryDominates(const Probe& probe,
                                       size_t limit) const {
  for (size_t b = 0; b < BlockCountFor(limit); ++b) {
    if (CanPruneBlock(probe, b)) continue;
    if (TestBlock(probe, b, limit).dominates != 0) return true;
  }
  return false;
}

}  // namespace skyline
