#include "core/dominance_batch.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.h"

#if defined(__x86_64__) || defined(_M_X64)
#define SKYLINE_BATCH_X86 1
#include <immintrin.h>
#endif

namespace skyline {
namespace {

constexpr size_t kBlock = DominanceIndex::kBlockEntries;

/// Zeroes mask bits at and above `count`.
inline uint64_t ValidMask(size_t count) {
  return count >= 64 ? ~uint64_t{0} : ((uint64_t{1} << count) - 1);
}

void ScalarBatch(const DominanceBatchInput& in, BlockMasks* out) {
  uint64_t dominates = 0, dominated = 0, equal = 0;
  for (size_t e = 0; e < in.count; ++e) {
    bool same_group = true;
    for (size_t d = 0; d < in.num_diffs; ++d) {
      if (in.diff_cols[d][e] != in.probe_diffs[d]) {
        same_group = false;
        break;
      }
    }
    if (!same_group) continue;
    bool ge = true, le = true;  // entry >=/<= probe on every criterion
    for (size_t d = 0; d < in.num_values && (ge || le); ++d) {
      const int32_t v = in.value_cols[d][e];
      const int32_t p = in.probe_values[d];
      ge &= v >= p;
      le &= v <= p;
    }
    const uint64_t bit = uint64_t{1} << e;
    if (ge && le) {
      equal |= bit;
    } else if (ge) {
      dominates |= bit;
    } else if (le) {
      dominated |= bit;
    }
  }
  out->dominates = dominates;
  out->dominated = dominated;
  out->equal = equal;
}

#ifdef SKYLINE_BATCH_X86

// SSE2 is part of the x86-64 baseline, so this path needs no runtime
// feature test and no target attribute.
void Sse2Batch(const DominanceBatchInput& in, BlockMasks* out) {
  uint64_t dominates = 0, dominated = 0, equal = 0;
  const size_t groups = (in.count + 3) / 4;
  for (size_t g = 0; g < groups; ++g) {
    const size_t base = g * 4;
    const __m128i ones = _mm_set1_epi32(-1);
    __m128i eq = ones;
    for (size_t d = 0; d < in.num_diffs; ++d) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in.diff_cols[d] + base));
      eq = _mm_and_si128(eq, _mm_cmpeq_epi32(v, _mm_set1_epi32(in.probe_diffs[d])));
    }
    if (in.num_diffs > 0 && _mm_movemask_epi8(eq) == 0) continue;
    __m128i ge = ones, le = ones;
    for (size_t d = 0; d < in.num_values; ++d) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in.value_cols[d] + base));
      const __m128i p = _mm_set1_epi32(in.probe_values[d]);
      ge = _mm_andnot_si128(_mm_cmplt_epi32(v, p), ge);  // clear where v < p
      le = _mm_andnot_si128(_mm_cmpgt_epi32(v, p), le);  // clear where v > p
      if (_mm_movemask_epi8(_mm_or_si128(ge, le)) == 0) break;
    }
    ge = _mm_and_si128(ge, eq);
    le = _mm_and_si128(le, eq);
    const uint64_t gm = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(ge)));
    const uint64_t lm = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(le)));
    dominates |= (gm & ~lm) << base;
    dominated |= (lm & ~gm) << base;
    equal |= (gm & lm) << base;
  }
  const uint64_t valid = ValidMask(in.count);
  out->dominates = dominates & valid;
  out->dominated = dominated & valid;
  out->equal = equal & valid;
}

__attribute__((target("avx2"))) void Avx2Batch(const DominanceBatchInput& in,
                                               BlockMasks* out) {
  uint64_t dominates = 0, dominated = 0, equal = 0;
  const size_t groups = (in.count + 7) / 8;
  for (size_t g = 0; g < groups; ++g) {
    const size_t base = g * 8;
    const __m256i ones = _mm256_set1_epi32(-1);
    __m256i eq = ones;
    for (size_t d = 0; d < in.num_diffs; ++d) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in.diff_cols[d] + base));
      eq = _mm256_and_si256(
          eq, _mm256_cmpeq_epi32(v, _mm256_set1_epi32(in.probe_diffs[d])));
    }
    if (in.num_diffs > 0 && _mm256_movemask_epi8(eq) == 0) continue;
    __m256i ge = ones, le = ones;
    for (size_t d = 0; d < in.num_values; ++d) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in.value_cols[d] + base));
      const __m256i p = _mm256_set1_epi32(in.probe_values[d]);
      // AVX2 only has signed cmpgt: v<p is p>v.
      ge = _mm256_andnot_si256(_mm256_cmpgt_epi32(p, v), ge);
      le = _mm256_andnot_si256(_mm256_cmpgt_epi32(v, p), le);
      if (_mm256_movemask_epi8(_mm256_or_si256(ge, le)) == 0) break;
    }
    ge = _mm256_and_si256(ge, eq);
    le = _mm256_and_si256(le, eq);
    const uint64_t gm = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(ge)));
    const uint64_t lm = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(le)));
    dominates |= (gm & ~lm) << base;
    dominated |= (lm & ~gm) << base;
    equal |= (gm & lm) << base;
  }
  const uint64_t valid = ValidMask(in.count);
  out->dominates = dominates & valid;
  out->dominated = dominated & valid;
  out->equal = equal & valid;
}

#endif  // SKYLINE_BATCH_X86

const DominanceKernel kScalarKernel{"scalar", &ScalarBatch};
#ifdef SKYLINE_BATCH_X86
const DominanceKernel kSse2Kernel{"sse2", &Sse2Batch};
const DominanceKernel kAvx2Kernel{"avx2", &Avx2Batch};
#endif

std::vector<const DominanceKernel*> BuildAvailable() {
  std::vector<const DominanceKernel*> kernels{&kScalarKernel};
#ifdef SKYLINE_BATCH_X86
  kernels.push_back(&kSse2Kernel);
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) kernels.push_back(&kAvx2Kernel);
#endif
#endif
  return kernels;
}

const DominanceKernel* ResolveActive() {
  const auto& kernels = AvailableDominanceKernels();
  if (const char* want = std::getenv("SKYLINE_DOMINANCE_KERNEL")) {
    for (const DominanceKernel* k : kernels) {
      if (std::string(want) == k->name) return k;
    }
    std::cerr << "skyline: SKYLINE_DOMINANCE_KERNEL=" << want
              << " is not available; using " << kernels.back()->name << "\n";
  }
  return kernels.back();
}

}  // namespace

const DominanceKernel& ScalarDominanceKernel() { return kScalarKernel; }

const std::vector<const DominanceKernel*>& AvailableDominanceKernels() {
  static const std::vector<const DominanceKernel*> kernels = BuildAvailable();
  return kernels;
}

const DominanceKernel& ActiveDominanceKernel() {
  static const DominanceKernel* active = ResolveActive();
  return *active;
}

DominanceIndex::DominanceIndex(const SkylineSpec* spec,
                               const DominanceKernel* kernel)
    : spec_(spec),
      kernel_(kernel != nullptr ? kernel : &ActiveDominanceKernel()) {
  columnar_ = spec->values_all_int32() &&
              spec->dom_value_columns().size() <= kMaxColumns &&
              spec->dom_diff_columns().size() <= kMaxColumns;
  for (const auto& dc : spec_->dom_diff_columns()) {
    if (dc.type != ColumnType::kInt32) columnar_ = false;
  }
  if (!columnar_) return;
  values_.resize(spec_->dom_value_columns().size());
  value_zmin_.resize(values_.size());
  value_zmax_.resize(values_.size());
  diffs_.resize(spec_->dom_diff_columns().size());
  diff_zmin_.resize(diffs_.size());
  diff_zmax_.resize(diffs_.size());
}

void DominanceIndex::Reserve(size_t capacity) {
  if (!columnar_) return;
  EnsureCapacity(capacity);
}

void DominanceIndex::EnsureCapacity(size_t entries) {
  if (entries <= padded_) return;
  const size_t new_padded = BlockCountFor(entries) * kBlock;
  // Blocks are zero-filled on allocation so kernel vector loads past the
  // live count read initialized memory (lanes are masked off afterwards).
  for (auto& col : values_) col.resize(new_padded, 0);
  for (auto& col : diffs_) col.resize(new_padded, 0);
  const size_t blocks = new_padded / kBlock;
  for (auto& z : value_zmin_) z.resize(blocks, 0);
  for (auto& z : value_zmax_) z.resize(blocks, 0);
  for (auto& z : diff_zmin_) z.resize(blocks, 0);
  for (auto& z : diff_zmax_) z.resize(blocks, 0);
  padded_ = new_padded;
}

void DominanceIndex::EncodeProbe(const char* row, Probe* out) const {
  const auto& values = spec_->dom_value_columns();
  for (size_t d = 0; d < values.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + values[d].offset, sizeof(v));
    out->values[d] = values[d].max ? v : ~v;
  }
  const auto& diffs = spec_->dom_diff_columns();
  for (size_t d = 0; d < diffs.size(); ++d) {
    std::memcpy(&out->diffs[d], row + diffs[d].offset, sizeof(int32_t));
  }
}

void DominanceIndex::Append(const char* row) {
  if (!columnar_) return;
  EnsureCapacity(size_ + 1);
  const size_t i = size_;
  const size_t b = i / kBlock;
  const bool block_start = (i % kBlock) == 0;
  const auto& values = spec_->dom_value_columns();
  for (size_t d = 0; d < values.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + values[d].offset, sizeof(v));
    const int32_t key = values[d].max ? v : ~v;
    values_[d][i] = key;
    if (block_start) {
      value_zmin_[d][b] = key;
      value_zmax_[d][b] = key;
    } else {
      if (key < value_zmin_[d][b]) value_zmin_[d][b] = key;
      if (key > value_zmax_[d][b]) value_zmax_[d][b] = key;
    }
  }
  const auto& diffs = spec_->dom_diff_columns();
  for (size_t d = 0; d < diffs.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + diffs[d].offset, sizeof(v));
    diffs_[d][i] = v;
    if (block_start) {
      diff_zmin_[d][b] = v;
      diff_zmax_[d][b] = v;
    } else {
      if (v < diff_zmin_[d][b]) diff_zmin_[d][b] = v;
      if (v > diff_zmax_[d][b]) diff_zmax_[d][b] = v;
    }
  }
  ++size_;
}

void DominanceIndex::ReplaceAt(size_t i, const char* row) {
  if (!columnar_) return;
  SKYLINE_CHECK_LT(i, size_);
  const size_t b = i / kBlock;
  const auto& values = spec_->dom_value_columns();
  for (size_t d = 0; d < values.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + values[d].offset, sizeof(v));
    const int32_t key = values[d].max ? v : ~v;
    values_[d][i] = key;
    // Widen only: the replaced entry's contribution may linger, which is
    // sound (a too-wide zone map merely prunes less).
    if (key < value_zmin_[d][b]) value_zmin_[d][b] = key;
    if (key > value_zmax_[d][b]) value_zmax_[d][b] = key;
  }
  const auto& diffs = spec_->dom_diff_columns();
  for (size_t d = 0; d < diffs.size(); ++d) {
    int32_t v;
    std::memcpy(&v, row + diffs[d].offset, sizeof(v));
    diffs_[d][i] = v;
    if (v < diff_zmin_[d][b]) diff_zmin_[d][b] = v;
    if (v > diff_zmax_[d][b]) diff_zmax_[d][b] = v;
  }
}

void DominanceIndex::RemoveSwapLast(size_t i) {
  if (!columnar_) return;
  SKYLINE_CHECK_LT(i, size_);
  const size_t last = size_ - 1;
  if (i != last) {
    const size_t b = i / kBlock;
    for (size_t d = 0; d < values_.size(); ++d) {
      const int32_t key = values_[d][last];
      values_[d][i] = key;
      if (key < value_zmin_[d][b]) value_zmin_[d][b] = key;
      if (key > value_zmax_[d][b]) value_zmax_[d][b] = key;
    }
    for (size_t d = 0; d < diffs_.size(); ++d) {
      const int32_t v = diffs_[d][last];
      diffs_[d][i] = v;
      if (v < diff_zmin_[d][b]) diff_zmin_[d][b] = v;
      if (v > diff_zmax_[d][b]) diff_zmax_[d][b] = v;
    }
  }
  --size_;
}

bool DominanceIndex::CanPruneBlock(const Probe& probe, size_t b) const {
  // A DIFF column whose block range misses the probe's group value makes
  // every entry incomparable to the probe.
  for (size_t d = 0; d < diffs_.size(); ++d) {
    if (probe.diffs[d] < diff_zmin_[d][b] || probe.diffs[d] > diff_zmax_[d][b]) {
      return true;
    }
  }
  // No dominator/equal: some criterion where even the block's best key is
  // strictly worse than the probe (no entry can be >= the probe
  // everywhere). This alone is not enough — the block could still contain
  // entries the probe dominates (the sort-violation / BNL-eviction case).
  bool no_dominator = false;
  for (size_t d = 0; d < values_.size(); ++d) {
    if (value_zmax_[d][b] < probe.values[d]) {
      no_dominator = true;
      break;
    }
  }
  if (!no_dominator) return false;
  // No dominated/equal: some criterion where even the block's worst key
  // beats the probe (no entry can be <= the probe everywhere).
  for (size_t d = 0; d < values_.size(); ++d) {
    if (value_zmin_[d][b] > probe.values[d]) return true;
  }
  return false;
}

BlockMasks DominanceIndex::TestBlock(const Probe& probe, size_t b,
                                     size_t limit) const {
  const size_t base = b * kBlockEntries;
  const int32_t* value_ptrs[kMaxColumns];
  const int32_t* diff_ptrs[kMaxColumns];
  for (size_t d = 0; d < values_.size(); ++d) {
    value_ptrs[d] = values_[d].data() + base;
  }
  for (size_t d = 0; d < diffs_.size(); ++d) {
    diff_ptrs[d] = diffs_[d].data() + base;
  }
  DominanceBatchInput in;
  in.value_cols = value_ptrs;
  in.probe_values = probe.values;
  in.num_values = values_.size();
  in.diff_cols = diff_ptrs;
  in.probe_diffs = probe.diffs;
  in.num_diffs = diffs_.size();
  in.count = BlockEntries(b, limit);
  BlockMasks out;
  kernel_->batch(in, &out);
  return out;
}

}  // namespace skyline
