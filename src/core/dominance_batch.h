#ifndef SKYLINE_CORE_DOMINANCE_BATCH_H_
#define SKYLINE_CORE_DOMINANCE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/skyline_spec.h"

namespace skyline {

/// Batched dominance: instead of testing the probe tuple against window
/// entries one row at a time (CompareDominance), entries live in a columnar
/// (SoA) layout of fixed-size blocks and a SIMD kernel relates the probe to
/// a whole block per call. Every MIN/MAX value is stored as an
/// order-transformed int32 *key* — `v` for MAX criteria and `~v` for MIN
/// (bitwise NOT reverses signed order without the INT32_MIN negation
/// overflow) — so the kernel needs exactly one comparison direction:
/// larger key == preferred. DIFF columns are stored raw and compared for
/// equality only.

/// Per-entry relation bits of one block vs the probe. Bit `i` refers to the
/// block's entry `i`; bits at and above the tested count are always zero.
/// For a store whose entries are pairwise non-dominating (every filter
/// window in this codebase) at most one of the three masks is non-zero.
struct BlockMasks {
  /// Entry strictly dominates the probe.
  uint64_t dominates = 0;
  /// Probe strictly dominates the entry.
  uint64_t dominated = 0;
  /// Entry equals the probe on every criterion (incl. DIFF columns).
  uint64_t equal = 0;
};

/// One batched comparison: `count` entries (<= kBlockEntries) of one block
/// against one probe. `value_cols[d]` points at the block's contiguous keys
/// for MIN/MAX criterion d; `diff_cols[d]` likewise for DIFF criterion d.
/// Kernels may read a full SIMD vector past `count` within the block (the
/// index pads blocks to kBlockEntries allocated int32s), but must mask the
/// excess lanes out of the result.
struct DominanceBatchInput {
  const int32_t* const* value_cols = nullptr;
  const int32_t* probe_values = nullptr;  // order-transformed keys
  size_t num_values = 0;
  const int32_t* const* diff_cols = nullptr;
  const int32_t* probe_diffs = nullptr;  // raw values
  size_t num_diffs = 0;
  size_t count = 0;
};

/// A dominance kernel variant. `batch` relates one block to one probe;
/// `name` identifies the instruction set for stats/bench attribution.
struct DominanceKernel {
  const char* name;  // "scalar", "sse2", or "avx2"
  void (*batch)(const DominanceBatchInput& in, BlockMasks* out);
};

/// The portable kernel (plain int32 loops, no intrinsics). Always valid.
const DominanceKernel& ScalarDominanceKernel();

/// Kernels usable on this machine, best last (scalar[, sse2][, avx2]).
const std::vector<const DominanceKernel*>& AvailableDominanceKernels();

/// The kernel the engine uses: the best available, unless the environment
/// variable SKYLINE_DOMINANCE_KERNEL names one of the available variants.
/// Resolved once per process.
const DominanceKernel& ActiveDominanceKernel();

/// Columnar (SoA) mirror of a sequence of rows, holding only the skyline
/// criterion columns in kBlockEntries-sized blocks with per-block zone
/// maps (min/max key per criterion). Callers keep their own row storage;
/// the index answers "how does this probe relate to entries [0, limit)?"
/// block-at-a-time through the active DominanceKernel, after zone-map
/// pruning proves most blocks can hold no related entry at all.
///
/// The index only accelerates specs whose criteria (MIN/MAX *and* DIFF)
/// are all int32 with at most kMaxColumns of each kind — `columnar()` is
/// false otherwise and every mutator is a no-op, so callers keep their
/// scalar row loop as the fallback.
class DominanceIndex {
 public:
  /// Entries per block: one uint64 relation mask, and a multiple of every
  /// SIMD width in use.
  static constexpr size_t kBlockEntries = 64;
  /// Cap on criterion columns of each kind (probe keys live on the stack).
  static constexpr size_t kMaxColumns = 24;

  /// `spec` must outlive the index; appended rows are spec->schema() rows.
  /// `kernel` overrides the active kernel (tests only); null = active.
  explicit DominanceIndex(const SkylineSpec* spec,
                          const DominanceKernel* kernel = nullptr);

  DominanceIndex(DominanceIndex&&) = default;
  DominanceIndex& operator=(DominanceIndex&&) = default;

  /// True when this spec is served by the columnar fast path.
  bool columnar() const { return columnar_; }
  const char* kernel_name() const { return kernel_->name; }
  size_t size() const { return size_; }

  /// Pre-sizes column storage for `capacity` entries (optional).
  void Reserve(size_t capacity);

  /// Appends the criterion columns of `row` as entry index size().
  void Append(const char* row);

  /// Overwrites entry `i` with `row`'s criteria. The block's zone map is
  /// widened, never re-tightened (stale-wide bounds only cost pruning).
  void ReplaceAt(size_t i, const char* row);

  /// Mirrors the swap-with-last removal idiom (BNL eviction): entry `i`
  /// takes the last entry's values and the count shrinks by one.
  void RemoveSwapLast(size_t i);

  void Clear() { size_ = 0; }

  /// Probe keys, precomputed once per Test so each block comparison is
  /// pure column arithmetic. POD so it lives on the caller's stack.
  struct Probe {
    int32_t values[kMaxColumns];  // order-transformed keys
    int32_t diffs[kMaxColumns];   // raw DIFF values
  };
  void EncodeProbe(const char* row, Probe* out) const;

  /// Blocks covering entries [0, limit).
  static size_t BlockCountFor(size_t limit) {
    return (limit + kBlockEntries - 1) / kBlockEntries;
  }

  /// Zone-map test: true when block `b` provably holds no entry related to
  /// the probe (no dominator, nothing dominated, no equal), so the block
  /// need not be compared at all. Sound, not complete: a false return
  /// promises nothing.
  bool CanPruneBlock(const Probe& probe, size_t b) const;

  /// Relates the probe to block `b`'s entries with index < limit.
  BlockMasks TestBlock(const Probe& probe, size_t b, size_t limit) const;

  /// Entries in block `b` that lie below `limit` (for comparison counts).
  size_t BlockEntries(size_t b, size_t limit) const {
    const size_t base = b * kBlockEntries;
    return limit - base < kBlockEntries ? limit - base : kBlockEntries;
  }

 private:
  void EnsureCapacity(size_t entries);

  const SkylineSpec* spec_;
  const DominanceKernel* kernel_;
  bool columnar_ = false;
  size_t size_ = 0;
  size_t padded_ = 0;  // allocated entries (multiple of kBlockEntries)
  /// values_[d][i]: order-transformed key of entry i on MIN/MAX column d.
  std::vector<std::vector<int32_t>> values_;
  /// diffs_[d][i]: raw value of entry i on DIFF column d.
  std::vector<std::vector<int32_t>> diffs_;
  /// Per-block zone maps, indexed [d][block].
  std::vector<std::vector<int32_t>> value_zmin_, value_zmax_;
  std::vector<std::vector<int32_t>> diff_zmin_, diff_zmax_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_DOMINANCE_BATCH_H_
