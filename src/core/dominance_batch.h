#ifndef SKYLINE_CORE_DOMINANCE_BATCH_H_
#define SKYLINE_CORE_DOMINANCE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/skyline_spec.h"
#include "relation/dictionary.h"

namespace skyline {

/// Batched dominance: instead of testing the probe tuple against window
/// entries one row at a time (CompareDominance), entries live in a columnar
/// (SoA) layout of fixed-size blocks and a SIMD kernel relates the probe to
/// a whole block per call. Every criterion lowers to an order-transformed
/// integer *key* lane — int32 criteria to int32 keys, int64/float64 to
/// int64 keys — such that larger key == preferred: `v` for MAX, `~v` for
/// MIN (bitwise NOT reverses signed order without the INT*_MIN negation
/// overflow), with doubles passing through the IEEE total-order bit trick
/// first. DIFF columns become equality-only lanes: int32 raw, int64/float64
/// as 64-bit patterns, and fixed strings as per-column dictionary codes.
/// With that, *every* spec — including the paper's 100-byte restaurant
/// tuple (string name DIFF, int32 attributes, float64 price) — takes the
/// columnar kernel path.

/// Per-entry relation bits of one block vs the probe. Bit `i` refers to the
/// block's entry `i`; bits at and above the tested count are always zero.
/// For a store whose entries are pairwise non-dominating (every filter
/// window in this codebase) at most one of the three masks is non-zero.
struct BlockMasks {
  /// Entry strictly dominates the probe.
  uint64_t dominates = 0;
  /// Probe strictly dominates the entry.
  uint64_t dominated = 0;
  /// Entry equals the probe on every criterion (incl. DIFF columns).
  uint64_t equal = 0;
};

/// One batched comparison: `count` entries (<= kBlockEntries) of one block
/// against one probe, split by lane width. `value32_cols[d]` points at the
/// block's contiguous int32 keys for the d-th 32-bit MIN/MAX lane,
/// `value64_cols[d]` likewise for 64-bit key lanes; diff lanes carry
/// equality-comparable values (raw int32 / dictionary codes / 64-bit
/// patterns). Kernels may read a full SIMD vector past `count` within the
/// block (the index pads blocks to kBlockEntries allocated entries), but
/// must mask the excess lanes out of the result.
struct DominanceBatchInput {
  const int32_t* const* value32_cols = nullptr;
  const int32_t* probe_values32 = nullptr;  // order-transformed int32 keys
  size_t num_values32 = 0;
  const int64_t* const* value64_cols = nullptr;
  const int64_t* probe_values64 = nullptr;  // order-transformed int64 keys
  size_t num_values64 = 0;
  const int32_t* const* diff32_cols = nullptr;
  const int32_t* probe_diffs32 = nullptr;  // raw values / dictionary codes
  size_t num_diffs32 = 0;
  const int64_t* const* diff64_cols = nullptr;
  const int64_t* probe_diffs64 = nullptr;  // raw 64-bit patterns
  size_t num_diffs64 = 0;
  size_t count = 0;
};

/// A dominance kernel variant. `batch` relates one block to one probe;
/// `name` identifies the instruction set for stats/bench attribution.
struct DominanceKernel {
  const char* name;  // "scalar", "sse2", or "avx2"
  void (*batch)(const DominanceBatchInput& in, BlockMasks* out);
};

/// The portable kernel (plain integer loops, no intrinsics). Always valid.
const DominanceKernel& ScalarDominanceKernel();

/// Kernels usable on this machine, best last (scalar[, sse2][, avx2]).
const std::vector<const DominanceKernel*>& AvailableDominanceKernels();

/// The kernel the engine uses: the best available, unless the environment
/// variable SKYLINE_DOMINANCE_KERNEL names one of the available variants
/// (or "row", which forces the row-at-a-time fallback engine-wide).
/// Resolved once per process.
const DominanceKernel& ActiveDominanceKernel();

/// Forces every subsequently constructed DominanceIndex onto the row
/// fallback (columnar() == false). Test hook for row-vs-columnar
/// differential checks; also set by SKYLINE_DOMINANCE_KERNEL=row.
void SetForceRowDominancePath(bool force);
bool ForceRowDominancePath();

/// The dictionaries of one spec's string DIFF columns, in dom_diff_columns()
/// order (non-string DIFF columns are skipped). Shared between indexes that
/// must produce interchangeable codes — the parallel merge encodes a probe
/// through one index and tests it against others, which is only sound when
/// all of them code through the same dictionary. Build sequentially
/// (Encode), probe concurrently (Find).
class SpecDictionaries {
 public:
  explicit SpecDictionaries(const SkylineSpec* spec);

  size_t count() const { return dicts_.size(); }
  StringDictionary* dict(size_t i) { return dicts_[i].get(); }
  const StringDictionary* dict(size_t i) const { return dicts_[i].get(); }

  /// Successful probe-side code lookups across all dictionaries.
  uint64_t TotalProbeHits() const;

 private:
  std::vector<std::unique_ptr<StringDictionary>> dicts_;
};

/// Columnar (SoA) mirror of a sequence of rows, holding only the skyline
/// criterion columns in kBlockEntries-sized blocks with per-block zone
/// maps (min/max key per criterion). Callers keep their own row storage;
/// the index answers "how does this probe relate to entries [0, limit)?"
/// block-at-a-time through the active DominanceKernel, after zone-map
/// pruning proves most blocks can hold no related entry at all.
///
/// The index serves every spec with at most kMaxColumns MIN/MAX and
/// kMaxColumns DIFF criteria; `columnar()` is false only beyond that cap
/// (or under SetForceRowDominancePath), in which case every mutator is a
/// no-op and callers keep their scalar row loop as the fallback.
class DominanceIndex {
 public:
  /// Entries per block: one uint64 relation mask, and a multiple of every
  /// SIMD width in use.
  static constexpr size_t kBlockEntries = 64;
  /// Cap on criterion columns of each kind (probe keys live on the stack).
  static constexpr size_t kMaxColumns = 24;

  /// `spec` must outlive the index; appended rows are spec->schema() rows.
  /// `kernel` overrides the active kernel (tests only); null = active.
  /// `dicts` shares string-DIFF dictionaries across indexes (parallel
  /// merge); null = the index owns private dictionaries.
  explicit DominanceIndex(const SkylineSpec* spec,
                          const DominanceKernel* kernel = nullptr,
                          std::shared_ptr<SpecDictionaries> dicts = nullptr);

  DominanceIndex(DominanceIndex&&) = default;
  DominanceIndex& operator=(DominanceIndex&&) = default;

  /// True when this spec is served by the columnar fast path.
  bool columnar() const { return columnar_; }
  const char* kernel_name() const { return kernel_->name; }
  size_t size() const { return size_; }

  /// Successful dictionary probe lookups (string DIFF specs only).
  uint64_t dict_probe_hits() const {
    return dicts_ ? dicts_->TotalProbeHits() : 0;
  }
  const std::shared_ptr<SpecDictionaries>& dictionaries() const {
    return dicts_;
  }

  /// Pre-sizes column storage for `capacity` entries (optional).
  void Reserve(size_t capacity);

  /// Appends the criterion columns of `row` as entry index size().
  void Append(const char* row);

  /// Overwrites entry `i` with `row`'s criteria. The block's zone map is
  /// widened, never re-tightened (stale-wide bounds only cost pruning).
  void ReplaceAt(size_t i, const char* row);

  /// Mirrors the swap-with-last removal idiom (BNL eviction): entry `i`
  /// takes the last entry's values and the count shrinks by one.
  void RemoveSwapLast(size_t i);

  void Clear() { size_ = 0; }

  /// Probe keys, precomputed once per Test so each block comparison is
  /// pure column arithmetic. POD so it lives on the caller's stack.
  struct Probe {
    int32_t values32[kMaxColumns];  // order-transformed int32 keys
    int64_t values64[kMaxColumns];  // order-transformed int64 keys
    int32_t diffs32[kMaxColumns];   // raw int32 / dictionary codes
    int64_t diffs64[kMaxColumns];   // raw 64-bit patterns
  };
  /// Encodes `row` for probing. Dictionary lanes use a const lookup: a
  /// string unseen by any Append gets StringDictionary::kNoCode, which
  /// relates to no entry — exactly the DIFF semantics.
  void EncodeProbe(const char* row, Probe* out) const;

  /// Blocks covering entries [0, limit).
  static size_t BlockCountFor(size_t limit) {
    return (limit + kBlockEntries - 1) / kBlockEntries;
  }

  /// Zone-map test: true when block `b` provably holds no entry related to
  /// the probe (no dominator, nothing dominated, no equal), so the block
  /// need not be compared at all. Sound, not complete: a false return
  /// promises nothing.
  bool CanPruneBlock(const Probe& probe, size_t b) const;

  /// One-sided zone-map test for callers that only ask "can anything in
  /// this block dominate the probe?" (the cascade merge): true when the
  /// block's per-criterion best key is strictly worse than the probe on
  /// some criterion, or a DIFF lane's range misses the probe's group.
  /// Strictly weaker precondition than CanPruneBlock, so it prunes a
  /// superset of the blocks for dominator-only probes.
  bool CanPruneBlockForDominators(const Probe& probe, size_t b) const;

  /// Relates the probe to block `b`'s entries with index < limit.
  BlockMasks TestBlock(const Probe& probe, size_t b, size_t limit) const;

  /// True when some entry in [0, limit) strictly dominates the probe.
  /// Zone-prunes and early-exits; used by the block prefilter to discard
  /// whole input blocks against the window.
  bool AnyEntryDominates(const Probe& probe, size_t limit) const;

  /// Entries in block `b` that lie below `limit` (for comparison counts).
  size_t BlockEntries(size_t b, size_t limit) const {
    const size_t base = b * kBlockEntries;
    return limit - base < kBlockEntries ? limit - base : kBlockEntries;
  }

 private:
  /// One MIN/MAX criterion lowered to a key lane.
  struct ValueLane32 {
    uint32_t offset;
    bool max;
  };
  struct ValueLane64 {
    uint32_t offset;
    ColumnType type;  // kInt64 or kFloat64
    bool max;
  };
  /// One DIFF criterion lowered to an equality lane. `dict` >= 0 names the
  /// SpecDictionaries slot for string columns, -1 for raw int32.
  struct DiffLane32 {
    uint32_t offset;
    uint32_t length;  // string byte length; 4 for raw int32
    int32_t dict;
  };
  struct DiffLane64 {
    uint32_t offset;
    ColumnType type;  // kInt64 or kFloat64
  };

  void EnsureCapacity(size_t entries);
  int32_t EncodeDiff32(const DiffLane32& lane, const char* row) const;
  int32_t EncodeDiff32Mut(const DiffLane32& lane, const char* row);
  int64_t EncodeValue64(const ValueLane64& lane, const char* row) const;
  int64_t EncodeDiff64(const DiffLane64& lane, const char* row) const;

  const SkylineSpec* spec_;
  const DominanceKernel* kernel_;
  bool columnar_ = false;
  size_t size_ = 0;
  size_t padded_ = 0;  // allocated entries (multiple of kBlockEntries)

  std::vector<ValueLane32> value32_lanes_;
  std::vector<ValueLane64> value64_lanes_;
  std::vector<DiffLane32> diff32_lanes_;
  std::vector<DiffLane64> diff64_lanes_;
  std::shared_ptr<SpecDictionaries> dicts_;

  /// values32_[d][i]: order key of entry i on the d-th 32-bit value lane.
  std::vector<std::vector<int32_t>> values32_;
  std::vector<std::vector<int64_t>> values64_;
  std::vector<std::vector<int32_t>> diffs32_;
  std::vector<std::vector<int64_t>> diffs64_;
  /// Per-block zone maps, indexed [d][block].
  std::vector<std::vector<int32_t>> value32_zmin_, value32_zmax_;
  std::vector<std::vector<int64_t>> value64_zmin_, value64_zmax_;
  std::vector<std::vector<int32_t>> diff32_zmin_, diff32_zmax_;
  std::vector<std::vector<int64_t>> diff64_zmin_, diff64_zmax_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_DOMINANCE_BATCH_H_
