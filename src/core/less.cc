#include "core/less.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/dominance.h"
#include "core/sfs.h"
#include "storage/page.h"
#include "storage/temp_file_manager.h"

namespace skyline {

EliminationFilter::EliminationFilter(const SkylineSpec* spec,
                                     const EntropyScorer* scorer,
                                     size_t window_pages)
    : spec_(spec),
      entry_spec_(&spec->projected_spec()),
      scorer_(scorer),
      entry_width_(spec->projected_schema().row_width()),
      capacity_(window_pages * RecordsPerPage(entry_width_)),
      index_(&spec->projected_spec()),
      scratch_(entry_width_) {
  SKYLINE_CHECK_GT(capacity_, 0u);
  storage_.reserve(capacity_ * entry_width_);
  scores_.reserve(capacity_);
  index_.Reserve(capacity_);
}

bool EliminationFilter::Keep(const char* row) {
  spec_->ProjectRow(row, scratch_.data());
  const char* probe = scratch_.data();
  if (index_.columnar()) {
    // Unlike the SFS window, EF entries may dominate each other (the
    // replacement policy is score-based, not dominance-based), so several
    // mask classes can be set at once — but Keep only ever consumes the
    // `dominates` mask, for which every block scan is independent.
    DominanceIndex::Probe keys;
    index_.EncodeProbe(probe, &keys);
    const size_t index_blocks = DominanceIndex::BlockCountFor(entries_);
    for (size_t b = 0; b < index_blocks; ++b) {
      if (index_.CanPruneBlock(keys, b)) continue;
      comparisons_ += index_.BlockEntries(b, entries_);
      if (index_.TestBlock(keys, b, entries_).dominates != 0) {
        ++dropped_;
        return false;
      }
    }
  } else {
    for (size_t i = 0; i < entries_; ++i) {
      ++comparisons_;
      if (CompareDominance(*entry_spec_, storage_.data() + i * entry_width_,
                           probe) == DomResult::kFirstDominates) {
        ++dropped_;
        return false;
      }
    }
  }
  const double score = scorer_->Score(row);
  if (entries_ < capacity_) {
    storage_.insert(storage_.end(), probe, probe + entry_width_);
    scores_.push_back(score);
    index_.Append(probe);
    ++entries_;
    return true;
  }
  // Replace the weakest (lowest-score) entry if the arrival scores higher:
  // high-entropy tuples dominate the most others, and eviction is always
  // safe for a pure elimination cache.
  const size_t weakest = static_cast<size_t>(
      std::min_element(scores_.begin(), scores_.end()) - scores_.begin());
  if (score > scores_[weakest]) {
    std::memcpy(storage_.data() + weakest * entry_width_, probe, entry_width_);
    scores_[weakest] = score;
    index_.ReplaceAt(weakest, probe);
  }
  return true;
}

Result<Table> ComputeSkylineLess(const Table& input, const SkylineSpec& spec,
                                 const LessOptions& options,
                                 const ExecContext& ctx,
                                 const std::string& output_path,
                                 LessStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  LessStats local;
  LessStats* s = stats != nullptr ? stats : &local;
  *s = LessStats{};
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  Env* env = input.env();
  TempFileManager temp_files(env, ctx.TempPrefixOr(output_path + ".less_tmp"));

  // Phase 1: entropy sort with the elimination filter screening the input.
  EntropyScorer scorer(&spec, input);
  EntropyOrdering ordering(&spec, input);
  EliminationFilter ef(&spec, &scorer, options.ef_window_pages);
  SortOptions sort_options = options.sort_options;
  sort_options.filter = &ef;

  Stopwatch sort_timer;
  TraceSpan presort_span(ctx.trace, "presort");
  SKYLINE_ASSIGN_OR_RETURN(
      std::string sorted_path,
      SortHeapFile(env, &temp_files, input.path(), spec.schema().row_width(),
                   ordering, sort_options, ctx, &s->run.sort_stats));
  presort_span.End();
  s->run.sort_seconds = sort_timer.ElapsedSeconds();
  s->ef_dropped = ef.dropped();
  s->ef_comparisons = ef.comparisons();

  // Phase 2: standard SFS filter over the (already thinned) sorted stream.
  Stopwatch filter_timer;
  SfsIterator iter(env, &temp_files, sorted_path, &spec, options.window_pages,
                   options.use_projection, &s->run);
  iter.set_exec_context(&ctx);
  // SfsIterator resets sort stats inside Open? No — it only sets
  // input_rows/passes; preserve the sort numbers captured above.
  const SortStats saved_sort = s->run.sort_stats;
  const double saved_sort_seconds = s->run.sort_seconds;
  SKYLINE_RETURN_IF_ERROR(iter.Open());
  TableBuilder builder(env, output_path, spec.schema());
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  while (const char* row = iter.Next()) {
    SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
  }
  SKYLINE_RETURN_IF_ERROR(iter.status());
  s->run.sort_stats = saved_sort;
  s->run.sort_seconds = saved_sort_seconds;
  s->run.filter_seconds = filter_timer.ElapsedSeconds();
  // Account eliminated tuples in the input count.
  s->run.input_rows = input.row_count();
  return builder.Finish();
}

}  // namespace skyline
