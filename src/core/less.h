#ifndef SKYLINE_CORE_LESS_H_
#define SKYLINE_CORE_LESS_H_

#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/dominance_batch.h"
#include "core/run_stats.h"
#include "core/scoring.h"
#include "core/skyline_spec.h"
#include "relation/table.h"
#include "sort/external_sort.h"

namespace skyline {

/// Elimination-filter window: drops tuples dominated by a small cache of
/// high-entropy "killer" tuples while the presort reads its input — the
/// paper's Section 6 future-work item ("removal of non-skyline tuples
/// could be done during the external sort passes"), realized the way the
/// authors later did in LESS (Godfrey, Shipley & Gryz, VLDB 2005).
///
/// The window stores projected skyline attributes with their entropy
/// scores and, when full, replaces its lowest-scoring entry with any
/// higher-scoring arrival: dropping window entries is always safe (the
/// window only ever *eliminates*, it never certifies), so the policy just
/// maximizes expected dominance coverage.
class EliminationFilter : public RowFilter {
 public:
  /// `spec` and `scorer` must outlive the filter. Capacity is
  /// `window_pages` pages of projected entries.
  EliminationFilter(const SkylineSpec* spec, const EntropyScorer* scorer,
                    size_t window_pages);

  /// False iff `row` is dominated by a window entry.
  bool Keep(const char* row) override;

  uint64_t dropped() const { return dropped_; }
  uint64_t comparisons() const { return comparisons_; }
  size_t entry_count() const { return entries_; }
  size_t capacity() const { return capacity_; }

 private:
  const SkylineSpec* spec_;
  const SkylineSpec* entry_spec_;
  const EntropyScorer* scorer_;
  size_t entry_width_;
  size_t capacity_;
  size_t entries_ = 0;
  /// Columnar mirror of the window entries (block zone maps + batched
  /// kernel) when the projected spec qualifies; scalar loop otherwise.
  DominanceIndex index_;
  std::vector<char> storage_;
  std::vector<double> scores_;
  std::vector<char> scratch_;
  uint64_t dropped_ = 0;
  uint64_t comparisons_ = 0;
};

/// Options for the LESS-style combined sort-and-filter skyline.
struct LessOptions {
  /// Pages for the elimination-filter window used during run generation.
  size_t ef_window_pages = 2;
  /// Pages for the SFS filter window applied to the sorted stream.
  size_t window_pages = 500;
  bool use_projection = true;
  SortOptions sort_options;
};

/// Extra observability for a LESS run.
struct LessStats {
  SkylineRunStats run;  // filter-phase stats (the SFS pass)
  uint64_t ef_dropped = 0;
  uint64_t ef_comparisons = 0;
};

/// Computes the skyline with entropy presort + elimination during the
/// sort's input pass + SFS filtering of the sorted remainder. Equivalent
/// output to ComputeSkylineSfs, but the bulk of dominated tuples never
/// reach the sort runs, shrinking both sort I/O and filter work.
Result<Table> ComputeSkylineLess(const Table& input, const SkylineSpec& spec,
                                 const LessOptions& options,
                                 const ExecContext& ctx,
                                 const std::string& output_path,
                                 LessStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_LESS_H_
