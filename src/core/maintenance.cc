#include "core/maintenance.h"

#include <cstring>

#include "common/logging.h"
#include "core/dominance.h"

namespace skyline {

SkylineMaintainer::SkylineMaintainer(const SkylineSpec* spec)
    : spec_(spec), width_(spec->schema().row_width()) {}

void SkylineMaintainer::Seed(const char* rows, size_t count) {
  rows_.assign(rows, rows + count * width_);
  count_ = count;
}

SkylineMaintainer SkylineMaintainer::FromComputedSkyline(
    const SkylineSpec* spec, const char* rows, size_t count) {
  SkylineMaintainer maintainer(spec);
  maintainer.Seed(rows, count);
  return maintainer;
}

const char* SkylineMaintainer::MemberAt(size_t i) const {
  SKYLINE_CHECK_LT(i, count_);
  return rows_.data() + i * width_;
}

SkylineMaintainer::InsertResult SkylineMaintainer::Insert(const char* row) {
  bool evicted = false;
  size_t i = 0;
  while (i < count_) {
    const char* member = rows_.data() + i * width_;
    switch (CompareDominance(*spec_, member, row)) {
      case DomResult::kFirstDominates:
        // Members are mutually non-dominating, so nothing else can have
        // been evicted by this row: dominance would contradict the
        // invariant via transitivity.
        SKYLINE_CHECK(!evicted);
        return InsertResult::kDominated;
      case DomResult::kSecondDominates: {
        // Evict: swap-remove.
        const size_t last = count_ - 1;
        if (i != last) {
          std::memcpy(rows_.data() + i * width_, rows_.data() + last * width_,
                      width_);
        }
        rows_.resize(last * width_);
        --count_;
        ++evictions_;
        evicted = true;
        continue;
      }
      case DomResult::kEquivalent:
      case DomResult::kIncomparable:
        ++i;
        break;
    }
  }
  rows_.insert(rows_.end(), row, row + width_);
  ++count_;
  return evicted ? InsertResult::kAddedEvicted : InsertResult::kAdded;
}

SkylineMaintainer::RemoveResult SkylineMaintainer::Remove(const char* row) {
  // Find a member equivalent to `row` on the skyline attributes. Among
  // equivalents, prefer the one whose full row bytes match: equivalence is
  // criteria-only, and callers maintaining materialized results (the
  // result cache) need the removed member to be the physically deleted
  // row, not a payload-differing tie.
  size_t found = count_;
  size_t exact = count_;
  size_t equivalents = 0;
  for (size_t i = 0; i < count_; ++i) {
    const char* member = rows_.data() + i * width_;
    if (CompareDominance(*spec_, member, row) == DomResult::kEquivalent) {
      if (found == count_) found = i;
      if (exact == count_ && std::memcmp(member, row, width_) == 0) {
        exact = i;
      }
      ++equivalents;
    }
  }
  if (found == count_) return RemoveResult::kNotMember;
  const size_t target = exact != count_ ? exact : found;
  const size_t last = count_ - 1;
  if (target != last) {
    std::memcpy(rows_.data() + target * width_, rows_.data() + last * width_,
                width_);
  }
  rows_.resize(last * width_);
  --count_;
  return equivalents > 1 ? RemoveResult::kDuplicateMemberRemoved
                         : RemoveResult::kMemberRemovedRecomputeNeeded;
}

}  // namespace skyline
