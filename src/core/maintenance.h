#ifndef SKYLINE_CORE_MAINTENANCE_H_
#define SKYLINE_CORE_MAINTENANCE_H_

#include <cstdint>
#include <vector>

#include "core/skyline_spec.h"

namespace skyline {

/// Incremental maintenance of a skyline under updates — the flip side of
/// the paper's Section 2 argument against precomputed skyline indexes
/// ("a single insertion of a tuple that dominates the current skyline
/// would invalidate the entire index").
///
/// Inserts are cheap: a new tuple either is dominated by the maintained
/// skyline (no change), or joins it, evicting the members it dominates —
/// O(|skyline|) per insert. Deletes are the expensive direction the paper
/// alludes to: removing a *skyline member* may promote formerly dominated
/// tuples, which cannot be derived from the skyline alone; Remove()
/// reports when a full recomputation over the base data is required.
class SkylineMaintainer {
 public:
  enum class InsertResult {
    /// The tuple is dominated by (or duplicates nothing and changes
    /// nothing below) an existing member: skyline unchanged.
    kDominated,
    /// The tuple joined the skyline without evicting anyone.
    kAdded,
    /// The tuple joined and evicted >= 1 dominated member.
    kAddedEvicted,
  };

  enum class RemoveResult {
    /// The tuple was not a skyline member: skyline unchanged (dominated
    /// tuples never influence the skyline).
    kNotMember,
    /// A member was removed; the maintained set is now only a *subset* of
    /// the true skyline — recompute from the base data to restore it.
    kMemberRemovedRecomputeNeeded,
    /// A member was removed but an equivalent duplicate remains, so the
    /// skyline is still exact.
    kDuplicateMemberRemoved,
  };

  /// `spec` must outlive the maintainer. Starts empty; seed with Insert()
  /// over all base rows, or with Seed() when the rows are already a
  /// skyline.
  explicit SkylineMaintainer(const SkylineSpec* spec);

  /// Adopts `count` rows (spec->schema() layout, densely packed) that the
  /// caller asserts are already mutually non-dominating — a previously
  /// computed skyline. No dominance checks run: the cost is one memcpy,
  /// not the O(n·|skyline|) of per-row Insert(). Replaces the current
  /// members.
  void Seed(const char* rows, size_t count);

  /// Convenience: a maintainer pre-seeded with a computed skyline.
  static SkylineMaintainer FromComputedSkyline(const SkylineSpec* spec,
                                               const char* rows, size_t count);

  /// Offers one row (spec->schema() layout, copied in).
  InsertResult Insert(const char* row);

  /// Removes one row previously part of the base data. Matching is by
  /// skyline-attribute equivalence against the maintained members.
  RemoveResult Remove(const char* row);

  size_t size() const { return count_; }
  const char* MemberAt(size_t i) const;
  uint64_t evictions() const { return evictions_; }

 private:
  const SkylineSpec* spec_;
  size_t width_;
  std::vector<char> rows_;
  size_t count_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_MAINTENANCE_H_
