#include "core/naive.h"

#include "core/dominance.h"

namespace skyline {

std::vector<uint64_t> NaiveSkylineIndices(const SkylineSpec& spec,
                                          const char* rows, uint64_t count) {
  const size_t width = spec.schema().row_width();
  std::vector<uint64_t> result;
  for (uint64_t i = 0; i < count; ++i) {
    const char* candidate = rows + i * width;
    bool dominated = false;
    for (uint64_t j = 0; j < count && !dominated; ++j) {
      if (j == i) continue;
      dominated = Dominates(spec, rows + j * width, candidate);
    }
    if (!dominated) result.push_back(i);
  }
  return result;
}

Result<std::vector<char>> NaiveSkylineRows(const Table& input,
                                           const SkylineSpec& spec) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  std::vector<char> rows;
  SKYLINE_RETURN_IF_ERROR(input.ReadAllRows(&rows));
  const size_t width = spec.schema().row_width();
  std::vector<uint64_t> indices =
      NaiveSkylineIndices(spec, rows.data(), input.row_count());
  std::vector<char> out;
  out.reserve(indices.size() * width);
  for (uint64_t i : indices) {
    out.insert(out.end(), rows.data() + i * width,
               rows.data() + (i + 1) * width);
  }
  return out;
}

}  // namespace skyline
