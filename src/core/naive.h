#ifndef SKYLINE_CORE_NAIVE_H_
#define SKYLINE_CORE_NAIVE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/skyline_spec.h"
#include "relation/table.h"

namespace skyline {

/// O(n²) nested-loop skyline over an in-memory row buffer: a row is skyline
/// iff no other row strictly dominates it. This is the semantics of the
/// paper's Figure 5 self-join-except SQL formulation and serves as the
/// correctness oracle for every other algorithm. Returns the indices of
/// skyline rows in input order.
std::vector<uint64_t> NaiveSkylineIndices(const SkylineSpec& spec,
                                          const char* rows, uint64_t count);

/// Convenience: materializes the naive skyline of `input` into a dense row
/// buffer (rows in input order).
Result<std::vector<char>> NaiveSkylineRows(const Table& input,
                                           const SkylineSpec& spec);

}  // namespace skyline

#endif  // SKYLINE_CORE_NAIVE_H_
