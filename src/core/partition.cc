#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "storage/heap_file.h"

namespace skyline {
namespace {

/// Oriented value of one MIN/MAX criterion: numeric value negated for MIN,
/// so "larger is better" uniformly across directions.
double OrientedValue(const SkylineSpec::DomColumn& col, const char* row) {
  double v = 0;
  switch (col.type) {
    case ColumnType::kInt32: {
      int32_t raw;
      std::memcpy(&raw, row + col.offset, sizeof(raw));
      v = static_cast<double>(raw);
      break;
    }
    case ColumnType::kInt64: {
      int64_t raw;
      std::memcpy(&raw, row + col.offset, sizeof(raw));
      v = static_cast<double>(raw);
      break;
    }
    case ColumnType::kFloat64: {
      std::memcpy(&v, row + col.offset, sizeof(v));
      break;
    }
    case ColumnType::kFixedString:
      break;  // MIN/MAX criteria are numeric by spec validation
  }
  return col.max ? v : -v;
}

/// Equi-depth bucket boundaries for `buckets` buckets over `values`
/// (consumed): boundary[i] separates bucket i from i+1. Duplicated sample
/// values can collapse boundaries; Bucket() below still assigns every
/// value a bucket < buckets.
std::vector<double> EquiDepthBoundaries(std::vector<double> values,
                                        size_t buckets) {
  std::vector<double> bounds;
  if (values.empty() || buckets <= 1) return bounds;
  std::sort(values.begin(), values.end());
  bounds.reserve(buckets - 1);
  for (size_t i = 1; i < buckets; ++i) {
    bounds.push_back(values[i * values.size() / buckets]);
  }
  return bounds;
}

size_t Bucket(const std::vector<double>& bounds, double v) {
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

class StrideScheme : public PartitionScheme {
 public:
  StrideScheme(size_t partitions, uint64_t chunk_rows)
      : PartitionScheme(partitions),
        chunk_rows_(std::max<uint64_t>(1, chunk_rows)) {}

  PartitionSchemeKind kind() const override {
    return PartitionSchemeKind::kStride;
  }
  bool position_based() const override { return true; }

  size_t OwnerOf(const char* /*row*/, uint64_t pos) const override {
    return static_cast<size_t>((pos / chunk_rows_) % partitions());
  }

  uint64_t chunk_rows() const { return chunk_rows_; }

 private:
  uint64_t chunk_rows_;
};

/// Grid over the leading one or two criteria with equi-depth cell
/// boundaries. Cells are dealt to partitions round-robin so a cell count
/// above the partition count still lands on every partition.
class GridScheme : public PartitionScheme {
 public:
  GridScheme(size_t partitions, const SkylineSpec* spec,
             std::vector<double> bounds0, std::vector<double> bounds1)
      : PartitionScheme(partitions),
        spec_(spec),
        bounds0_(std::move(bounds0)),
        bounds1_(std::move(bounds1)) {}

  PartitionSchemeKind kind() const override {
    return PartitionSchemeKind::kGrid;
  }

  size_t OwnerOf(const char* row, uint64_t /*pos*/) const override {
    const auto& cols = spec_->dom_value_columns();
    size_t cell = Bucket(bounds0_, OrientedValue(cols[0], row));
    if (!bounds1_.empty()) {
      cell = cell * (bounds1_.size() + 1) +
             Bucket(bounds1_, OrientedValue(cols[1], row));
    }
    return cell % partitions();
  }

 private:
  const SkylineSpec* spec_;
  std::vector<double> bounds0_;
  std::vector<double> bounds1_;
};

/// Angular partitioning: tuples map to the hyperspherical angles of their
/// min-oriented normalized values (0 = best on every axis) and slices are
/// equi-depth angle buckets. A slice spans the full radial best-to-worst
/// range, so every partition keeps tuples from the whole quality spectrum
/// — the property that makes local skylines small and representative.
class AngularScheme : public PartitionScheme {
 public:
  struct Axis {
    double hi = 0;        // best oriented value seen in the sample
    double inv_span = 0;  // 0 when the axis is constant
  };

  AngularScheme(size_t partitions, const SkylineSpec* spec,
                std::vector<Axis> axes, std::vector<double> bounds0,
                std::vector<double> bounds1)
      : PartitionScheme(partitions),
        spec_(spec),
        axes_(std::move(axes)),
        bounds0_(std::move(bounds0)),
        bounds1_(std::move(bounds1)) {}

  PartitionSchemeKind kind() const override {
    return PartitionSchemeKind::kAngular;
  }

  size_t OwnerOf(const char* row, uint64_t /*pos*/) const override {
    double a0 = 0;
    double a1 = 0;
    Angles(row, &a0, &a1);
    size_t cell = Bucket(bounds0_, a0);
    if (!bounds1_.empty()) {
      cell = cell * (bounds1_.size() + 1) + Bucket(bounds1_, a1);
    }
    return cell % partitions();
  }

  /// Min-oriented normalized coordinate of axis `i` in [0,1] (0 = best).
  double MinOriented(size_t i, const char* row) const {
    const double v = OrientedValue(spec_->dom_value_columns()[i], row);
    const double m = (axes_[i].hi - v) * axes_[i].inv_span;
    return std::clamp(m, 0.0, 1.0);
  }

  /// First two hyperspherical angles of the min-oriented point (the second
  /// is 0 when fewer than three axes exist).
  void Angles(const char* row, double* a0, double* a1) const {
    const size_t dims = axes_.size();
    const double m0 = MinOriented(0, row);
    if (dims < 2) {
      *a0 = m0;  // 1-D degenerates to the coordinate itself
      *a1 = 0;
      return;
    }
    const double m1 = MinOriented(1, row);
    *a0 = std::atan2(m1, m0);
    *a1 = dims >= 3
              ? std::atan2(MinOriented(2, row), std::sqrt(m0 * m0 + m1 * m1))
              : 0;
  }

  size_t num_axes() const { return axes_.size(); }

 private:
  const SkylineSpec* spec_;
  std::vector<Axis> axes_;
  std::vector<double> bounds0_;
  std::vector<double> bounds1_;
};

/// Evenly spaced row sample of the sorted file: oriented values of the
/// first `dims` criteria, one inner vector per criterion.
Status SampleOrientedValues(Env* env, const std::string& sorted_path,
                            const SkylineSpec& spec, size_t dims,
                            size_t sample_rows,
                            std::vector<std::vector<double>>* out) {
  HeapFileReader reader(env, sorted_path, spec.schema().row_width(), nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());
  const uint64_t total = reader.record_count();
  out->assign(dims, {});
  if (total == 0) return Status::OK();
  const uint64_t step =
      std::max<uint64_t>(1, total / std::max<size_t>(1, sample_rows));
  for (uint64_t pos = 0; pos < total; pos += step) {
    SKYLINE_RETURN_IF_ERROR(reader.SeekToRecord(pos));
    const char* row = reader.Next();
    if (row == nullptr) {
      return reader.status().ok() ? Status::Corruption("sample read past end")
                                  : reader.status();
    }
    for (size_t d = 0; d < dims; ++d) {
      (*out)[d].push_back(OrientedValue(spec.dom_value_columns()[d], row));
    }
  }
  return Status::OK();
}

/// Splits `partitions` into a g0 x g1 grid (g1 == 1 for one axis).
void GridShape(size_t partitions, bool two_axes, size_t* g0, size_t* g1) {
  if (!two_axes || partitions < 4) {
    *g0 = partitions;
    *g1 = 1;
    return;
  }
  *g0 = static_cast<size_t>(std::ceil(std::sqrt(
      static_cast<double>(partitions))));
  *g1 = (partitions + *g0 - 1) / *g0;
}

}  // namespace

const char* PartitionSchemeName(PartitionSchemeKind kind) {
  switch (kind) {
    case PartitionSchemeKind::kStride:
      return "stride";
    case PartitionSchemeKind::kGrid:
      return "grid";
    case PartitionSchemeKind::kAngular:
      return "angular";
  }
  return "unknown";
}

Result<PartitionSchemeKind> ParsePartitionScheme(std::string_view name) {
  if (name == "stride") return PartitionSchemeKind::kStride;
  if (name == "grid") return PartitionSchemeKind::kGrid;
  if (name == "angular") return PartitionSchemeKind::kAngular;
  return Status::InvalidArgument("unknown partition scheme: " +
                                 std::string(name));
}

Result<std::unique_ptr<PartitionScheme>> MakePartitionScheme(
    Env* env, const std::string& sorted_path, const SkylineSpec& spec,
    size_t partitions, const PartitionSchemeOptions& options) {
  if (partitions == 0) {
    return Status::InvalidArgument("partition scheme needs >= 1 partition");
  }
  const size_t dims = spec.num_dimensions();
  switch (options.kind) {
    case PartitionSchemeKind::kStride:
      return std::unique_ptr<PartitionScheme>(
          new StrideScheme(partitions, options.stride_chunk_rows));
    case PartitionSchemeKind::kGrid: {
      const size_t axes = std::min<size_t>(2, dims);
      std::vector<std::vector<double>> sample;
      SKYLINE_RETURN_IF_ERROR(SampleOrientedValues(
          env, sorted_path, spec, axes, options.sample_rows, &sample));
      size_t g0 = 0;
      size_t g1 = 0;
      GridShape(partitions, axes >= 2, &g0, &g1);
      std::vector<double> b0 = EquiDepthBoundaries(std::move(sample[0]), g0);
      std::vector<double> b1 =
          g1 > 1 ? EquiDepthBoundaries(std::move(sample[1]), g1)
                 : std::vector<double>{};
      return std::unique_ptr<PartitionScheme>(
          new GridScheme(partitions, &spec, std::move(b0), std::move(b1)));
    }
    case PartitionSchemeKind::kAngular: {
      const size_t axes_count = std::min<size_t>(3, dims);
      std::vector<std::vector<double>> sample;
      SKYLINE_RETURN_IF_ERROR(SampleOrientedValues(
          env, sorted_path, spec, axes_count, options.sample_rows, &sample));
      std::vector<AngularScheme::Axis> axes(axes_count);
      for (size_t d = 0; d < axes_count; ++d) {
        if (sample[d].empty()) continue;
        const auto [lo_it, hi_it] =
            std::minmax_element(sample[d].begin(), sample[d].end());
        axes[d].hi = *hi_it;
        const double span = *hi_it - *lo_it;
        axes[d].inv_span = span > 0 ? 1.0 / span : 0.0;
      }
      // Fit angle boundaries by pushing the sample rows through the same
      // transform OwnerOf applies; equi-depth buckets then balance the
      // slices under whatever angle distribution the data has.
      size_t g0 = 0;
      size_t g1 = 0;
      GridShape(partitions, axes_count >= 3, &g0, &g1);
      const size_t n = sample.empty() ? 0 : sample[0].size();
      std::vector<double> angles0;
      std::vector<double> angles1;
      angles0.reserve(n);
      angles1.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        // Reconstruct the sampled row's angles from the sampled oriented
        // values directly (no second file pass).
        double m[3] = {0, 0, 0};
        for (size_t d = 0; d < axes_count; ++d) {
          m[d] = std::clamp((axes[d].hi - sample[d][i]) * axes[d].inv_span,
                            0.0, 1.0);
        }
        if (axes_count < 2) {
          angles0.push_back(m[0]);
          angles1.push_back(0);
        } else {
          angles0.push_back(std::atan2(m[1], m[0]));
          angles1.push_back(axes_count >= 3
                                ? std::atan2(m[2], std::sqrt(m[0] * m[0] +
                                                             m[1] * m[1]))
                                : 0);
        }
      }
      std::vector<double> b0 = EquiDepthBoundaries(std::move(angles0), g0);
      std::vector<double> b1 =
          g1 > 1 ? EquiDepthBoundaries(std::move(angles1), g1)
                 : std::vector<double>{};
      return std::unique_ptr<PartitionScheme>(
          new AngularScheme(partitions, &spec, std::move(axes), std::move(b0),
                            std::move(b1)));
    }
  }
  return Status::InvalidArgument("unknown partition scheme kind");
}

}  // namespace skyline
