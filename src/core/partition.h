#ifndef SKYLINE_CORE_PARTITION_H_
#define SKYLINE_CORE_PARTITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/skyline_spec.h"
#include "env/env.h"

namespace skyline {

/// How the block-parallel SFS filter assigns rows of the presorted stream
/// to partitions. Every scheme yields, per partition, a *subsequence* of
/// the sorted stream — subsequences stay monotone-sorted and keep DIFF
/// groups contiguous, so each partition is independently filterable with
/// the standard window machinery and the choice of scheme can never change
/// the computed skyline, only the work distribution.
enum class PartitionSchemeKind {
  /// Page-aligned round-robin chunks by position. Every partition samples
  /// the whole stream, so each sees its share of the strong early
  /// eliminators (best local-skyline sizes on anti-correlated data).
  kStride,
  /// Grid over the leading one or two MIN/MAX criteria: equi-depth cell
  /// boundaries from a deterministic sample of the sorted file. Tuples of
  /// a cell are spatially close, so local windows prune densely and
  /// cross-partition dominance concentrates in neighboring cells.
  kGrid,
  /// Angular partitioning (Ciaccia & Martinenghi): tuples are mapped to
  /// hyperspherical angles of the min-oriented value space and sliced by
  /// equi-depth angle buckets. Every slice spans the full best-to-worst
  /// radial range, which keeps local skylines representative of the
  /// global one (the property grid cells lack on correlated data).
  kAngular,
};

/// Static name for stats/bench attribution: "stride", "grid", "angular".
const char* PartitionSchemeName(PartitionSchemeKind kind);

/// Inverse of PartitionSchemeName; InvalidArgument on unknown names.
Result<PartitionSchemeKind> ParsePartitionScheme(std::string_view name);

/// A fitted partition assignment over one presorted stream. Construction
/// is deterministic in (file contents, partition count, options), so two
/// fits of the same input agree row for row — required for reproducible
/// counters; the skyline itself is scheme-independent regardless.
class PartitionScheme {
 public:
  virtual ~PartitionScheme() = default;

  virtual PartitionSchemeKind kind() const = 0;
  const char* name() const { return PartitionSchemeName(kind()); }

  /// True when ownership depends only on the record position: workers can
  /// seek straight to their chunks instead of scanning the whole stream.
  virtual bool position_based() const { return false; }

  /// Partition owning the record at global position `pos` with row bytes
  /// `row` (a full spec schema row). Always < partitions().
  virtual size_t OwnerOf(const char* row, uint64_t pos) const = 0;

  size_t partitions() const { return partitions_; }

 protected:
  explicit PartitionScheme(size_t partitions) : partitions_(partitions) {}

 private:
  size_t partitions_;
};

struct PartitionSchemeOptions {
  PartitionSchemeKind kind = PartitionSchemeKind::kStride;
  /// Stride only: rows per round-robin chunk (must be > 0).
  uint64_t stride_chunk_rows = 1;
  /// Grid/angular: rows sampled (evenly spaced) to fit cell boundaries.
  size_t sample_rows = 4096;
};

/// Fits a scheme of `options.kind` for `partitions` partitions over the
/// presorted heap file at `sorted_path` (spec.schema() rows). Grid and
/// angular schemes read an evenly spaced row sample to place equi-depth
/// boundaries; stride reads nothing. `spec` must outlive the scheme.
Result<std::unique_ptr<PartitionScheme>> MakePartitionScheme(
    Env* env, const std::string& sorted_path, const SkylineSpec& spec,
    size_t partitions, const PartitionSchemeOptions& options);

}  // namespace skyline

#endif  // SKYLINE_CORE_PARTITION_H_
