#include "core/plan_stats.h"

#include <cinttypes>
#include <cstdio>

#include "common/json_writer.h"

namespace skyline {
namespace {

void AppendMillis(std::string* out, const char* key, uint64_t nanos) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.3fms", key,
                static_cast<double>(nanos) / 1e6);
  out->append(buf);
}

}  // namespace

std::string RenderPlanStatsText(const std::vector<PlanNodeStats>& plan) {
  std::string out;
  char buf[128];
  for (const PlanNodeStats& node : plan) {
    const std::string indent(2 * node.depth, ' ');
    out += indent;
    out += node.label;
    std::snprintf(buf, sizeof(buf), "  (in=%" PRIu64 " out=%" PRIu64
                  " next=%" PRIu64,
                  node.rows_in, node.rows_out, node.next_calls);
    out += buf;
    AppendMillis(&out, "open", node.open_ns);
    AppendMillis(&out, "total", node.total_ns);
    AppendMillis(&out, "self", node.self_ns);
    out += ")\n";
    if (node.counters.empty() && node.notes.empty()) continue;
    out += indent;
    out += "  ";
    if (!node.counters.empty()) {
      out += "[";
      for (size_t i = 0; i < node.counters.size(); ++i) {
        if (i > 0) out += " ";
        std::snprintf(buf, sizeof(buf), "%s=%" PRIu64,
                      node.counters[i].first.c_str(), node.counters[i].second);
        out += buf;
      }
      out += "]";
    }
    if (!node.notes.empty()) {
      if (!node.counters.empty()) out += " ";
      out += "{";
      for (size_t i = 0; i < node.notes.size(); ++i) {
        if (i > 0) out += " ";
        out += node.notes[i].first;
        out += "=";
        out += node.notes[i].second;
      }
      out += "}";
    }
    out += "\n";
  }
  return out;
}

void AppendPlanStatsArray(JsonWriter* json,
                          const std::vector<PlanNodeStats>& plan) {
  json->BeginArray();
  for (const PlanNodeStats& node : plan) {
    json->BeginObject();
    json->KeyValue("label", node.label);
    json->KeyValue("depth", static_cast<uint64_t>(node.depth));
    json->KeyValue("rows_in", node.rows_in);
    json->KeyValue("rows_out", node.rows_out);
    json->KeyValue("next_calls", node.next_calls);
    json->KeyValue("open_ns", node.open_ns);
    json->KeyValue("total_ns", node.total_ns);
    json->KeyValue("self_ns", node.self_ns);
    if (!node.counters.empty()) {
      json->Key("counters");
      json->BeginObject();
      for (const auto& [key, value] : node.counters) {
        json->KeyValue(key, value);
      }
      json->EndObject();
    }
    if (!node.notes.empty()) {
      json->Key("notes");
      json->BeginObject();
      for (const auto& [key, value] : node.notes) {
        json->KeyValue(key, value);
      }
      json->EndObject();
    }
    json->EndObject();
  }
  json->EndArray();
}

}  // namespace skyline
