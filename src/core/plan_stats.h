#ifndef SKYLINE_CORE_PLAN_STATS_H_
#define SKYLINE_CORE_PLAN_STATS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace skyline {

class JsonWriter;

/// Profile of one operator in an executed plan, collected root-first (the
/// same order ExplainPlan renders). `depth` reproduces the plan
/// indentation; `rows_in` is the child's `rows_out` (0 for leaves and for
/// operators that bypass their child, e.g. the skyline operator reading
/// the base table directly).
///
/// Time fields are non-zero only when the tree ran with timing enabled
/// (EXPLAIN ANALYZE / Query::RunProfiled): `open_ns` is wall time inside
/// Open, `total_ns` adds the cumulative Next time, and `self_ns` subtracts
/// the child's `total_ns` (clamped at 0) — approximate for operators that
/// overlap with pool workers, exact for the pull pipeline itself.
struct PlanNodeStats {
  std::string label;
  uint32_t depth = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t next_calls = 0;
  uint64_t open_ns = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
  /// Operator-specific counters (blocks pruned, heap peak, spill passes,
  /// ...), in the operator's preferred display order. Zero-valued counters
  /// are usually omitted by the producer.
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Operator-specific annotations (access path, routing evidence, ...).
  std::vector<std::pair<std::string, std::string>> notes;
};

/// Renders the profile as the indented EXPLAIN tree annotated per node:
///
///   Skyline[SFS] skyline of ...  (in=0 out=4 next=5 open=0.21ms total=0.23ms self=0.23ms)
///     [input_rows=6 passes=1 window_comparisons=11] {access=sfs kernel=avx2}
///
/// The counter/note line is omitted when a node has neither.
std::string RenderPlanStatsText(const std::vector<PlanNodeStats>& plan);

/// Appends the profile as a JSON array of per-operator objects (the
/// RunReport "plan" section). The writer must be positioned for a value
/// (after Key("plan") or inside an array).
void AppendPlanStatsArray(JsonWriter* json,
                          const std::vector<PlanNodeStats>& plan);

}  // namespace skyline

#endif  // SKYLINE_CORE_PLAN_STATS_H_
