#include "core/representatives.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

namespace skyline {
namespace {

double CriterionValue(const SkylineSpec::DomColumn& col, const char* row) {
  double v = 0;
  switch (col.type) {
    case ColumnType::kInt32: {
      int32_t raw;
      std::memcpy(&raw, row + col.offset, sizeof(raw));
      v = static_cast<double>(raw);
      break;
    }
    case ColumnType::kInt64: {
      int64_t raw;
      std::memcpy(&raw, row + col.offset, sizeof(raw));
      v = static_cast<double>(raw);
      break;
    }
    case ColumnType::kFloat64: {
      std::memcpy(&v, row + col.offset, sizeof(v));
      break;
    }
    case ColumnType::kFixedString:
      break;  // MIN/MAX criteria are numeric by spec validation
  }
  return col.max ? v : -v;
}

}  // namespace

std::vector<uint32_t> SelectRepresentatives(
    const SkylineSpec& spec, const char* rows,
    const std::vector<uint64_t>& pos, size_t count) {
  const size_t n = pos.size();
  if (n == 0 || count == 0) return {};
  const size_t width = spec.schema().row_width();
  const auto& cols = spec.dom_value_columns();

  // Normalization bounds over the candidate set (oriented larger=better).
  std::vector<double> lo(cols.size(), std::numeric_limits<double>::max());
  std::vector<double> inv_span(cols.size(), 0.0);
  {
    std::vector<double> hi(cols.size(),
                           std::numeric_limits<double>::lowest());
    for (size_t i = 0; i < n; ++i) {
      const char* row = rows + i * width;
      for (size_t d = 0; d < cols.size(); ++d) {
        const double v = CriterionValue(cols[d], row);
        lo[d] = std::min(lo[d], v);
        hi[d] = std::max(hi[d], v);
      }
    }
    for (size_t d = 0; d < cols.size(); ++d) {
      const double span = hi[d] - lo[d];
      if (span > 0) inv_span[d] = 1.0 / span;
    }
  }

  std::vector<double> score(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const char* row = rows + i * width;
    double e = 0;
    for (size_t d = 0; d < cols.size(); ++d) {
      const double x = (CriterionValue(cols[d], row) - lo[d]) * inv_span[d];
      e += std::log1p(x);
    }
    score[i] = e;
  }

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  const size_t take = std::min(count, n);
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return pos[a] < pos[b];
                    });
  order.resize(take);
  std::sort(order.begin(), order.end(),
            [&pos](uint32_t a, uint32_t b) { return pos[a] < pos[b]; });
  return order;
}

}  // namespace skyline
