#ifndef SKYLINE_CORE_REPRESENTATIVES_H_
#define SKYLINE_CORE_REPRESENTATIVES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/skyline_spec.h"

namespace skyline {

/// Cross-partition representative filtering (Ciaccia & Martinenghi): after
/// the local-skyline scans, each partition broadcasts a small set of its
/// strongest eliminators; every other partition pre-prunes its candidates
/// against the pooled representatives before any block-to-block probing.
/// A handful of high-entropy points eliminates the bulk of the non-skyline
/// candidates, so the expensive cascade only sees the survivors.
///
/// Selection uses the paper's entropy heuristic: E(t) = sum_i ln(1 + x_i)
/// with x_i the i-th criterion normalized into [0,1] (1 = best, flipped
/// for MIN). The highest-entropy tuples of a local skyline are the ones
/// most likely to dominate arbitrary other tuples. Normalization bounds
/// come from the candidate set itself, so selection is deterministic in
/// the candidate rows alone (no table statistics required).
///
/// Returns the indices (into `pos`/rows) of up to `count` representatives,
/// in ascending position order. Ties on the score break toward the earlier
/// position, keeping selection deterministic.
std::vector<uint32_t> SelectRepresentatives(
    const SkylineSpec& spec, const char* rows,
    const std::vector<uint64_t>& pos, size_t count);

}  // namespace skyline

#endif  // SKYLINE_CORE_REPRESENTATIVES_H_
