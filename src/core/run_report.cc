#include "core/run_report.h"

#include <cstdio>

namespace skyline {
namespace {

void AppendMetricsObject(JsonWriter* json, const MetricsRegistry& metrics) {
  const MetricsSnapshot snapshot = metrics.Aggregate();
  json->BeginObject();
  json->Key("counters");
  json->BeginObject();
  for (const auto& c : snapshot.counters) {
    json->KeyValue(c.name, static_cast<uint64_t>(c.value));
  }
  json->EndObject();
  json->Key("gauges");
  json->BeginObject();
  for (const auto& g : snapshot.gauges) {
    json->KeyValue(g.name, g.value);
  }
  json->EndObject();
  json->Key("histograms");
  json->BeginObject();
  for (const auto& h : snapshot.histograms) {
    json->Key(h.name);
    json->BeginObject();
    json->KeyValue("count", h.count);
    json->KeyValue("sum_ns", h.sum_ns);
    json->KeyValue("min_ns", h.min_ns);
    json->KeyValue("max_ns", h.max_ns);
    json->KeyValue("p50_ns", h.QuantileNanos(0.50));
    json->KeyValue("p95_ns", h.QuantileNanos(0.95));
    json->KeyValue("p99_ns", h.QuantileNanos(0.99));
    json->KeyValue("p50_est_ns", h.QuantileEstimateNanos(0.50));
    json->KeyValue("p90_est_ns", h.QuantileEstimateNanos(0.90));
    json->KeyValue("p99_est_ns", h.QuantileEstimateNanos(0.99));
    json->EndObject();
  }
  json->EndObject();
  if (metrics.overflow_count() > 0) {
    json->KeyValue("registration_overflow", metrics.overflow_count());
  }
  json->EndObject();
}

void AppendTraceObject(JsonWriter* json, const TraceSink& trace) {
  json->BeginObject();
  json->KeyValue("recorded", trace.recorded());
  json->KeyValue("dropped", trace.dropped());
  json->KeyValue("truncated", trace.truncated());
  json->Key("spans");
  json->BeginArray();
  for (const TraceEvent& event : trace.Snapshot()) {
    json->BeginObject();
    json->KeyValue("name", event.name_view());
    json->KeyValue("thread", static_cast<uint64_t>(event.thread_id));
    json->KeyValue("depth", static_cast<uint64_t>(event.depth));
    json->KeyValue("start_ns", event.start_ns);
    json->KeyValue("duration_ns", event.duration_ns);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

void AppendRunStatsObject(JsonWriter* json, const SkylineRunStats& stats) {
  json->BeginObject();
  json->KeyValue("input_rows", stats.input_rows);
  json->KeyValue("output_rows", stats.output_rows);
  json->KeyValue("passes", stats.passes);
  json->KeyValue("spilled_tuples", stats.spilled_tuples);
  json->KeyValue("temp_pages_read", stats.temp_io.pages_read);
  json->KeyValue("temp_pages_written", stats.temp_io.pages_written);
  json->KeyValue("extra_pages", stats.ExtraPages());
  json->KeyValue("window_comparisons", stats.window_comparisons);
  json->KeyValue("batch_comparisons", stats.batch_comparisons);
  json->KeyValue("merge_comparisons", stats.merge_comparisons);
  json->KeyValue("window_blocks_pruned", stats.window_blocks_pruned);
  json->KeyValue("merge_blocks_pruned", stats.merge_blocks_pruned);
  json->KeyValue("window_replacements", stats.window_replacements);
  json->KeyValue("partition_scheme",
                 std::string_view(stats.partition_scheme));
  json->KeyValue("merge_candidates", stats.merge_candidates);
  json->KeyValue("representative_prunes", stats.representative_prunes);
  json->KeyValue("cascade_levels", stats.cascade_levels);
  json->KeyValue("table_zone_blocks_pruned", stats.table_zone_blocks_pruned);
  json->KeyValue("column_file_blocks_read", stats.column_file_blocks_read);
  json->KeyValue("dict_probe_hits", stats.dict_probe_hits);
  json->KeyValue("index_nodes_visited", stats.index_nodes_visited);
  json->KeyValue("index_blocks_skipped", stats.index_blocks_skipped);
  json->KeyValue("heap_peak", stats.heap_peak);
  json->KeyValue("zone_map_source", std::string_view(stats.zone_map_source));
  json->KeyValue("dominance_kernel", std::string_view(stats.dominance_kernel));
  json->KeyValue("access_path", std::string_view(stats.access_path));
  json->KeyValue("route_sample_rows", stats.route_sample_rows);
  json->KeyValue("route_sample_skyline", stats.route_sample_skyline);
  json->KeyValue("route_estimated_skyline", stats.route_estimated_skyline);
  json->KeyValue("route_bbs_threshold", stats.route_bbs_threshold);
  json->KeyValue("threads_used", stats.threads_used);
  json->KeyValue("threads_requested", stats.threads_requested);
  json->KeyValue("degraded_parallelism", stats.DegradedParallelism());
  json->KeyValue("sort_seconds", stats.sort_seconds);
  json->KeyValue("filter_seconds", stats.filter_seconds);
  json->KeyValue("block_scan_seconds", stats.block_scan_seconds);
  json->KeyValue("block_merge_seconds", stats.block_merge_seconds);
  json->KeyValue("scan_avg_busy_workers", stats.scan_avg_busy_workers);
  json->KeyValue("merge_avg_busy_workers", stats.merge_avg_busy_workers);
  json->KeyValue("scan_merge_overlap_seconds",
                 stats.scan_merge_overlap_seconds);
  json->KeyValue("total_seconds", stats.total_seconds());
  json->Key("sort");
  json->BeginObject();
  json->KeyValue("runs_generated", stats.sort_stats.runs_generated);
  json->KeyValue("merge_levels", stats.sort_stats.merge_levels);
  json->KeyValue("records_filtered", stats.sort_stats.records_filtered);
  json->KeyValue("threads_used", stats.sort_stats.threads_used);
  json->KeyValue("pages_read", stats.sort_stats.io.pages_read);
  json->KeyValue("pages_written", stats.sort_stats.io.pages_written);
  json->EndObject();
  json->EndObject();
}

void AppendRunReportObject(JsonWriter* json, const RunReport& report) {
  json->BeginObject();
  json->KeyValue("schema_version",
                 static_cast<int64_t>(RunReport::kSchemaVersion));
  json->KeyValue("tool", report.tool);
  if (!report.algorithm.empty()) {
    json->KeyValue("algorithm", report.algorithm);
  }
  json->KeyValue("wall_seconds", report.wall_seconds);
  if (!report.labels.empty()) {
    json->Key("labels");
    json->BeginObject();
    for (const auto& [key, value] : report.labels) json->KeyValue(key, value);
    json->EndObject();
  }
  if (!report.numbers.empty()) {
    json->Key("numbers");
    json->BeginObject();
    for (const auto& [key, value] : report.numbers) json->KeyValue(key, value);
    json->EndObject();
  }
  json->Key("stats");
  AppendRunStatsObject(json, report.stats);
  if (!report.plan.empty()) {
    json->Key("plan");
    AppendPlanStatsArray(json, report.plan);
  }
  if (report.metrics != nullptr) {
    json->Key("metrics");
    AppendMetricsObject(json, *report.metrics);
  }
  if (report.trace != nullptr) {
    json->Key("trace");
    AppendTraceObject(json, *report.trace);
  }
  json->EndObject();
}

std::string RenderRunReportJson(const RunReport& report) {
  JsonWriter json;
  AppendRunReportObject(&json, report);
  return json.TakeString();
}

std::string RenderRunReportText(const RunReport& report) {
  std::string out;
  char line[256];
  auto add = [&out, &line]() { out += line; };

  std::snprintf(line, sizeof(line), "== run report (%s%s%s) ==\n",
                report.tool.c_str(), report.algorithm.empty() ? "" : ", ",
                report.algorithm.c_str());
  add();
  const SkylineRunStats& s = report.stats;
  std::snprintf(line, sizeof(line),
                "rows in/out %llu/%llu  passes %llu  spilled %llu  "
                "extra pages %llu\n",
                static_cast<unsigned long long>(s.input_rows),
                static_cast<unsigned long long>(s.output_rows),
                static_cast<unsigned long long>(s.passes),
                static_cast<unsigned long long>(s.spilled_tuples),
                static_cast<unsigned long long>(s.ExtraPages()));
  add();
  std::snprintf(line, sizeof(line),
                "comparisons: window %llu (batch %llu)  merge %llu  "
                "kernel %s  threads %llu\n",
                static_cast<unsigned long long>(s.window_comparisons),
                static_cast<unsigned long long>(s.batch_comparisons),
                static_cast<unsigned long long>(s.merge_comparisons),
                s.dominance_kernel,
                static_cast<unsigned long long>(s.threads_used));
  add();
  if (s.merge_candidates > 0) {
    std::snprintf(
        line, sizeof(line),
        "merge: scheme %s  candidates %llu  rep-pruned %llu  "
        "cascade levels %llu  busy scan/merge %.2f/%.2f  overlap %.4fs\n",
        s.partition_scheme,
        static_cast<unsigned long long>(s.merge_candidates),
        static_cast<unsigned long long>(s.representative_prunes),
        static_cast<unsigned long long>(s.cascade_levels),
        s.scan_avg_busy_workers, s.merge_avg_busy_workers,
        s.scan_merge_overlap_seconds);
    add();
  }
  if (s.index_nodes_visited > 0 || s.index_blocks_skipped > 0) {
    std::snprintf(line, sizeof(line),
                  "index: nodes visited %llu  blocks skipped %llu  "
                  "heap peak %llu\n",
                  static_cast<unsigned long long>(s.index_nodes_visited),
                  static_cast<unsigned long long>(s.index_blocks_skipped),
                  static_cast<unsigned long long>(s.heap_peak));
    add();
  }
  if (s.route_sample_rows > 0) {
    std::snprintf(line, sizeof(line),
                  "route: %s — sampled %llu rows -> %llu skyline, "
                  "est %.0f vs bbs cutoff %.0f\n",
                  s.access_path[0] != '\0' ? s.access_path : "?",
                  static_cast<unsigned long long>(s.route_sample_rows),
                  static_cast<unsigned long long>(s.route_sample_skyline),
                  s.route_estimated_skyline, s.route_bbs_threshold);
    add();
  }
  if (s.DegradedParallelism()) {
    std::snprintf(line, sizeof(line),
                  "WARNING: degraded parallelism — %llu threads requested "
                  "but only %llu used; timings are not a scaling "
                  "measurement\n",
                  static_cast<unsigned long long>(s.threads_requested),
                  static_cast<unsigned long long>(s.threads_used));
    add();
  }
  std::snprintf(line, sizeof(line),
                "time: sort %.4fs  filter %.4fs  total %.4fs  wall %.4fs\n",
                s.sort_seconds, s.filter_seconds, s.total_seconds(),
                report.wall_seconds);
  add();

  if (!report.plan.empty()) {
    out += "plan (per-operator):\n";
    out += RenderPlanStatsText(report.plan);
  }

  if (report.metrics != nullptr) {
    const MetricsSnapshot snapshot = report.metrics->Aggregate();
    if (!snapshot.counters.empty()) out += "counters:\n";
    for (const auto& c : snapshot.counters) {
      std::snprintf(line, sizeof(line), "  %-40s %lld\n", c.name.c_str(),
                    static_cast<long long>(c.value));
      add();
    }
    if (!snapshot.gauges.empty()) out += "gauges:\n";
    for (const auto& g : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %lld\n", g.name.c_str(),
                    static_cast<long long>(g.value));
      add();
    }
    if (!snapshot.histograms.empty()) out += "latency histograms:\n";
    for (const auto& h : snapshot.histograms) {
      std::snprintf(
          line, sizeof(line),
          "  %-40s n=%llu mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms "
          "max=%.3fms\n",
          h.name.c_str(), static_cast<unsigned long long>(h.count),
          h.count > 0 ? static_cast<double>(h.sum_ns) /
                            static_cast<double>(h.count) / 1e6
                      : 0.0,
          static_cast<double>(h.QuantileEstimateNanos(0.50)) / 1e6,
          static_cast<double>(h.QuantileEstimateNanos(0.90)) / 1e6,
          static_cast<double>(h.QuantileEstimateNanos(0.99)) / 1e6,
          static_cast<double>(h.max_ns) / 1e6);
      add();
    }
  }

  if (report.trace != nullptr) {
    out += "trace spans (chronological):\n";
    for (const TraceEvent& event : report.trace->Snapshot()) {
      std::snprintf(line, sizeof(line), "  t%-3u %*s%-28s %.3fms\n",
                    event.thread_id, static_cast<int>(2 * event.depth), "",
                    event.name, static_cast<double>(event.duration_ns) / 1e6);
      add();
    }
    if (report.trace->dropped() > 0) {
      std::snprintf(line, sizeof(line),
                    "  (ring buffer dropped %llu earlier spans)\n",
                    static_cast<unsigned long long>(report.trace->dropped()));
      add();
    }
    if (report.trace->truncated() > 0) {
      std::snprintf(line, sizeof(line),
                    "  (%llu span names were truncated to %zu chars)\n",
                    static_cast<unsigned long long>(report.trace->truncated()),
                    TraceEvent::kNameCapacity - 1);
      add();
    }
  }
  return out;
}

void PublishRunStats(MetricsRegistry* metrics, std::string_view prefix,
                     const SkylineRunStats& stats) {
  if (metrics == nullptr) return;
  const std::string p(prefix);
  auto counter = [metrics, &p](const char* field, uint64_t value) {
    if (value > 0) metrics->GetCounter(p + "." + field).Add(value);
  };
  counter("runs", 1);
  counter("input_rows", stats.input_rows);
  counter("output_rows", stats.output_rows);
  counter("passes", stats.passes);
  counter("spilled_tuples", stats.spilled_tuples);
  counter("temp_pages_read", stats.temp_io.pages_read);
  counter("temp_pages_written", stats.temp_io.pages_written);
  counter("window_comparisons", stats.window_comparisons);
  counter("batch_comparisons", stats.batch_comparisons);
  counter("merge_comparisons", stats.merge_comparisons);
  counter("window_blocks_pruned", stats.window_blocks_pruned);
  counter("merge_blocks_pruned", stats.merge_blocks_pruned);
  counter("window_replacements", stats.window_replacements);
  counter("table_zone_blocks_pruned", stats.table_zone_blocks_pruned);
  counter("column_file_blocks_read", stats.column_file_blocks_read);
  counter("dict_probe_hits", stats.dict_probe_hits);
  counter("index_nodes_visited", stats.index_nodes_visited);
  counter("index_blocks_skipped", stats.index_blocks_skipped);
  counter("heap_peak", stats.heap_peak);
  counter("merge_candidates", stats.merge_candidates);
  counter("representative_prunes", stats.representative_prunes);
  counter("cascade_levels", stats.cascade_levels);
  counter("degraded_parallelism_runs", stats.DegradedParallelism() ? 1 : 0);
  counter("sort_runs_generated", stats.sort_stats.runs_generated);
  counter("sort_merge_levels", stats.sort_stats.merge_levels);
  counter("sort_records_filtered", stats.sort_stats.records_filtered);
  counter("sort_pages_read", stats.sort_stats.io.pages_read);
  counter("sort_pages_written", stats.sort_stats.io.pages_written);
  metrics->GetGauge(p + ".threads_used")
      .Set(static_cast<int64_t>(stats.threads_used));
  metrics->GetHistogram(p + ".sort_seconds")
      .ObserveSeconds(stats.sort_seconds);
  metrics->GetHistogram(p + ".filter_seconds")
      .ObserveSeconds(stats.filter_seconds);
}

}  // namespace skyline
