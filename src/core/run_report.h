#ifndef SKYLINE_CORE_RUN_REPORT_H_
#define SKYLINE_CORE_RUN_REPORT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/plan_stats.h"
#include "core/run_stats.h"

namespace skyline {

/// One run's observability artifact: the per-run SkylineRunStats plus
/// optional aggregated metrics and the trace span log, rendered to a
/// versioned JSON document (or a human-oriented text table).
///
/// Schema v1 ("schema_version": 1):
///   { schema_version, tool, algorithm, wall_seconds,
///     labels:  {string: string, ...},         // producer extras
///     numbers: {string: number, ...},         // producer extras
///     stats:   {input_rows, output_rows, passes, spilled_tuples,
///               temp_pages_read, temp_pages_written, extra_pages,
///               window_comparisons, batch_comparisons, merge_comparisons,
///               window_blocks_pruned, merge_blocks_pruned,
///               window_replacements, dominance_kernel, threads_used,
///               access_path, route_sample_rows, route_sample_skyline,
///               route_estimated_skyline, route_bbs_threshold,
///               sort_seconds, filter_seconds, block_scan_seconds,
///               block_merge_seconds, total_seconds,
///               sort: {runs_generated, merge_levels, records_filtered,
///                      threads_used, pages_read, pages_written}},
///     plan:    [{label, depth, rows_in, rows_out, next_calls, open_ns,
///                total_ns, self_ns, counters: {...},
///                notes: {...}}, ...],              // if collected
///     metrics: {counters: {...}, gauges: {...},
///               histograms: {name: {count, sum_ns, min_ns, max_ns,
///                                   p50_ns, p95_ns, p99_ns,   // bounds
///                                   p50_est_ns, p90_est_ns,
///                                   p99_est_ns}}},            // if set
///     trace:   {recorded, dropped, truncated,
///               spans: [{name, thread, depth, start_ns,
///                        duration_ns}, ...]}}                   // if set
/// New keys may be added within a version; existing keys only change
/// meaning with a schema_version bump.
struct RunReport {
  static constexpr int kSchemaVersion = 1;

  /// Producer ("parallel_sfs_bench", "sql_shell", ...).
  std::string tool;
  /// Algorithm that ran ("sfs", "bnl", ...); empty to omit.
  std::string algorithm;
  SkylineRunStats stats;
  double wall_seconds = 0.0;

  /// Producer-specific extras rendered under "labels" / "numbers".
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> numbers;

  /// Per-operator profile of the executed plan (CollectPlanStats); empty
  /// omits the "plan" section.
  std::vector<PlanNodeStats> plan;

  /// Borrowed sinks; null omits the corresponding section.
  const MetricsRegistry* metrics = nullptr;
  const TraceSink* trace = nullptr;
};

/// Renders the full versioned JSON document (ends with '\n').
std::string RenderRunReportJson(const RunReport& report);

/// Renders a compact human-readable summary (stats, top metrics, span
/// tree) for terminals.
std::string RenderRunReportText(const RunReport& report);

/// Emits the report as a JSON object value into an in-progress document
/// (the benchmark embeds one report per run).
void AppendRunReportObject(JsonWriter* json, const RunReport& report);

/// Emits just the "stats" object body for `stats` into `json` (the caller
/// brackets it with Key/Begin/End as needed).
void AppendRunStatsObject(JsonWriter* json, const SkylineRunStats& stats);

/// Publishes `stats` into `metrics` as "<prefix>.<field>" counters/gauges
/// plus "<prefix>.sort_seconds"/"<prefix>.filter_seconds" latency
/// histograms — the bridge from the passive per-run struct to the live
/// registry a server scrapes. Null `metrics` is a no-op.
void PublishRunStats(MetricsRegistry* metrics, std::string_view prefix,
                     const SkylineRunStats& stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_RUN_REPORT_H_
