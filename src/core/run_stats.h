#ifndef SKYLINE_CORE_RUN_STATS_H_
#define SKYLINE_CORE_RUN_STATS_H_

#include <cstdint>

#include "sort/external_sort.h"
#include "storage/io_stats.h"

namespace skyline {

/// Observability for one skyline computation (SFS or BNL), matching the
/// quantities the paper reports: pass counts, the "extra pages" I/O measure
/// (temp pages written plus read back, excluding the initial input scan),
/// dominance-comparison counts (CPU-effort proxy), and phase timings.
struct SkylineRunStats {
  uint64_t input_rows = 0;
  uint64_t output_rows = 0;
  /// Filter passes over (progressively shrinking) input.
  uint64_t passes = 0;
  /// Tuples written to temp files across all passes.
  uint64_t spilled_tuples = 0;
  /// Temp-file page traffic: each spilled page costs one write plus one
  /// read on the next pass — the paper's Figures 10/14/15 metric.
  IoStats temp_io;
  /// Presort cost (SFS always; BNL only for forced input orders).
  SortStats sort_stats;
  /// Pairwise dominance tests against the window. For the block-parallel
  /// filter this sums every worker's local-window tests plus the merge
  /// phase's cross-block tests. On the columnar window path a tested block
  /// counts all of its entries (the batched kernel relates them at once)
  /// and a zone-map-pruned block counts none.
  uint64_t window_comparisons = 0;
  /// Dominance tests executed through the batched SIMD kernel — a subset
  /// of window_comparisons; zero when the spec forces the row fallback.
  uint64_t batch_comparisons = 0;
  /// 64-entry window blocks skipped outright because their zone maps
  /// proved no entry could dominate, equal, or be dominated by the probe.
  uint64_t window_blocks_pruned = 0;
  /// Same, for the block-parallel merge phase's candidate indexes.
  uint64_t merge_blocks_pruned = 0;
  /// Dominance kernel variant the filter ran with: "scalar", "sse2", or
  /// "avx2" for the columnar window; "row" when the spec's criterion types
  /// force the row-at-a-time comparator. Static string, never null.
  const char* dominance_kernel = "row";
  /// BNL only: tuples that replaced dominated window entries.
  uint64_t window_replacements = 0;
  /// SFS block prefilter (presorted-input path): 64-row input blocks
  /// skipped wholesale because a window entry dominates the block's
  /// zone-map corner.
  uint64_t table_zone_blocks_pruned = 0;
  /// Blocks of the persisted column file read to serve this query (zero
  /// when the zones came from a scan or the in-process cache).
  uint64_t column_file_blocks_read = 0;
  /// Successful dictionary probe lookups (string DIFF specs only).
  uint64_t dict_probe_hits = 0;
  /// Where the table zone maps came from: "column_file" (persisted
  /// sidecar), "cache" (in-process TableZoneCache hit), "scan" (rebuilt
  /// this query), or "none" (prefilter not engaged). Static string.
  const char* zone_map_source = "none";
  /// BBS only: index nodes (interior and leaf entries) popped from the
  /// branch-and-bound heap and actually examined.
  uint64_t index_nodes_visited = 0;
  /// BBS only: column-file blocks the index proved dominated (or outside
  /// the constraint box) and therefore never read from disk — out of
  /// ceil(input_rows / 64) total.
  uint64_t index_blocks_skipped = 0;
  /// BBS only: high-water mark of the branch-and-bound heap.
  uint64_t heap_peak = 0;
  /// Access path the computation actually ran ("sfs", "bnl", "less",
  /// "bbs", "special2d", "special3d", ...; "" = not recorded). For kAuto
  /// this is the routing outcome; for explicit algorithms it echoes the
  /// request. Static string.
  const char* access_path = "";
  /// kAuto routing evidence (ChooseSkylineAccess): rows sampled, skyline
  /// measured on the sample, the extrapolated full-table estimate, and the
  /// BBS cutoff it was compared against. All zero when no sample was taken
  /// (special scans, no index, explicit algorithm).
  uint64_t route_sample_rows = 0;
  uint64_t route_sample_skyline = 0;
  double route_estimated_skyline = 0.0;
  double route_bbs_threshold = 0.0;
  /// Worker threads the filter phase actually used (1 = sequential SFS).
  uint64_t threads_used = 1;
  /// Worker threads the caller asked for, after "0 = all hardware"
  /// resolution but before any clamp or small-input block reduction.
  /// 0 = not recorded (single-threaded entry points). threads_used <
  /// threads_requested is the degraded-parallelism signal: a host or
  /// input too small to honor the request must never masquerade as a
  /// scaling measurement.
  uint64_t threads_requested = 0;
  /// Block-parallel only: cross-block dominance tests of the merge phase
  /// (representative pre-prune probes included).
  uint64_t merge_comparisons = 0;
  /// Block-parallel only: partitioning scheme of the filter phase
  /// ("stride", "grid", "angular"; "none" = sequential). Static string.
  const char* partition_scheme = "none";
  /// Block-parallel only: local-skyline candidates entering the merge.
  uint64_t merge_candidates = 0;
  /// Candidates eliminated by the cross-partition representative
  /// pre-filter before any block-to-block probing.
  uint64_t representative_prunes = 0;
  /// Pairwise merge rounds of the filtered cascade (0 = single partition
  /// or the all-pairs merge path).
  uint64_t cascade_levels = 0;
  double sort_seconds = 0.0;
  double filter_seconds = 0.0;
  /// Block-parallel only: wall time until the last block's local skyline
  /// was available, and time spent in the cross-block merge phase (both
  /// are within filter_seconds).
  double block_scan_seconds = 0.0;
  double block_merge_seconds = 0.0;
  /// Average pool workers busy during the scan / merge phases (pool
  /// busy-nanoseconds over phase wall time; the caller participating in
  /// the merge's ParallelFor adds up to one uncounted worker). Zero when
  /// the phase did not run on a pool.
  double scan_avg_busy_workers = 0.0;
  double merge_avg_busy_workers = 0.0;
  /// Merge-side work (candidate index building) that ran while block
  /// scans were still in flight — real scan/merge phase overlap, not
  /// attributable to either phase's exclusive wall time.
  double scan_merge_overlap_seconds = 0.0;

  /// True when the filter could not use as many workers as requested
  /// (clamped to hardware, or the input was too small for the partition
  /// floor). Meaningless when threads_requested was not recorded.
  bool DegradedParallelism() const {
    return threads_requested > 0 && threads_used < threads_requested;
  }

  double total_seconds() const { return sort_seconds + filter_seconds; }

  /// The paper's extra-pages metric (writes + re-reads of temp pages).
  uint64_t ExtraPages() const { return temp_io.TotalPages(); }
};

}  // namespace skyline

#endif  // SKYLINE_CORE_RUN_STATS_H_
