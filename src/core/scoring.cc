#include "core/scoring.h"

#include <cmath>

#include "common/logging.h"

namespace skyline {

EntropyScorer::EntropyScorer(const SkylineSpec* spec,
                             std::vector<ColumnStats> stats)
    : spec_(spec) {
  SKYLINE_CHECK_EQ(stats.size(), spec->schema().num_columns());
  norms_.reserve(spec->value_columns().size());
  for (const auto& vc : spec->value_columns()) {
    const ColumnStats& cs = stats[vc.column];
    ColumnNorm norm;
    norm.column = vc.column;
    norm.max = vc.max;
    norm.lo = cs.valid ? cs.min : 0.0;
    const double span = cs.valid ? cs.max - cs.min : 0.0;
    norm.inv_span = span > 0.0 ? 1.0 / span : 0.0;
    norms_.push_back(norm);
  }
}

namespace {

std::vector<ColumnStats> TableStats(const SkylineSpec* spec,
                                    const Table& table) {
  SKYLINE_CHECK(table.schema().Equals(spec->schema()))
      << "table schema does not match skyline spec schema";
  std::vector<ColumnStats> stats;
  stats.reserve(table.schema().num_columns());
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    stats.push_back(table.stats(c));
  }
  return stats;
}

}  // namespace

EntropyScorer::EntropyScorer(const SkylineSpec* spec, const Table& table)
    : EntropyScorer(spec, TableStats(spec, table)) {}

double EntropyScorer::Normalized(size_t value_index, const char* row) const {
  const ColumnNorm& norm = norms_[value_index];
  const double v = spec_->schema().NumericValue(norm.column, row);
  double x = (v - norm.lo) * norm.inv_span;
  if (x < 0.0) x = 0.0;
  if (x > 1.0) x = 1.0;
  return norm.max ? x : 1.0 - x;
}

double EntropyScorer::Score(const char* row) const {
  double score = 0.0;
  for (size_t i = 0; i < norms_.size(); ++i) {
    score += std::log1p(Normalized(i, row));
  }
  return score;
}

LinearScorer::LinearScorer(const SkylineSpec* spec,
                           std::vector<ColumnStats> stats,
                           std::vector<double> weights)
    : normalizer_(spec, std::move(stats)), weights_(std::move(weights)) {
  SKYLINE_CHECK_EQ(weights_.size(), spec->value_columns().size());
  for (double w : weights_) {
    SKYLINE_CHECK_GT(w, 0.0) << "linear scoring weights must be positive";
  }
}

double LinearScorer::Score(const char* row) const {
  double score = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    score += weights_[i] * normalizer_.Normalized(i, row);
  }
  return score;
}

EntropyOrdering::EntropyOrdering(const SkylineSpec* spec,
                                 std::vector<ColumnStats> stats)
    : spec_(spec),
      scorer_(spec, std::move(stats)),
      tie_break_(MakeNestedSkylineOrdering(*spec)) {}

EntropyOrdering::EntropyOrdering(const SkylineSpec* spec, const Table& table)
    : spec_(spec), scorer_(spec, table),
      tie_break_(MakeNestedSkylineOrdering(*spec)) {}

int EntropyOrdering::Compare(const char* a, const char* b) const {
  for (size_t col : spec_->diff_columns()) {
    int c = spec_->schema().CompareColumn(col, a, b);
    if (c != 0) return c;
  }
  const double ka = scorer_.Score(a);
  const double kb = scorer_.Score(b);
  if (ka > kb) return -1;  // larger score first
  if (kb > ka) return 1;
  return tie_break_->Compare(a, b);
}

bool EntropyOrdering::has_key() const { return !spec_->has_diff(); }

double EntropyOrdering::Key(const char* row) const {
  return scorer_.Score(row);
}

Result<RankEntropyScorer> RankEntropyScorer::Build(const SkylineSpec* spec,
                                                   const Table& table,
                                                   size_t buckets,
                                                   size_t sample_size) {
  if (!table.schema().Equals(spec->schema())) {
    return Status::InvalidArgument(
        "table schema does not match skyline spec schema");
  }
  std::vector<EquiDepthHistogram> histograms;
  histograms.reserve(spec->value_columns().size());
  for (const auto& vc : spec->value_columns()) {
    SKYLINE_ASSIGN_OR_RETURN(
        EquiDepthHistogram histogram,
        BuildColumnHistogram(table, vc.column, buckets, sample_size));
    histograms.push_back(std::move(histogram));
  }
  return RankEntropyScorer(spec, std::move(histograms));
}

double RankEntropyScorer::Rank(size_t value_index, const char* row) const {
  const auto& vc = spec_->value_columns()[value_index];
  const double v = spec_->schema().NumericValue(vc.column, row);
  const double cdf = histograms_[value_index].Cdf(v);
  return vc.max ? cdf : 1.0 - cdf;
}

double RankEntropyScorer::Score(const char* row) const {
  double score = 0.0;
  for (size_t i = 0; i < histograms_.size(); ++i) {
    score += std::log1p(Rank(i, row));
  }
  return score;
}

Result<RankEntropyOrdering> RankEntropyOrdering::Build(const SkylineSpec* spec,
                                                       const Table& table,
                                                       size_t buckets,
                                                       size_t sample_size) {
  SKYLINE_ASSIGN_OR_RETURN(
      RankEntropyScorer scorer,
      RankEntropyScorer::Build(spec, table, buckets, sample_size));
  return RankEntropyOrdering(spec, std::move(scorer),
                             MakeNestedSkylineOrdering(*spec));
}

int RankEntropyOrdering::Compare(const char* a, const char* b) const {
  // DIFF columns are the outermost keys of the tie-break ordering too, so
  // delegating the tie to it preserves group contiguity.
  for (size_t col : spec_->diff_columns()) {
    int c = spec_->schema().CompareColumn(col, a, b);
    if (c != 0) return c;
  }
  const double ka = scorer_.Score(a);
  const double kb = scorer_.Score(b);
  if (ka > kb) return -1;
  if (kb > ka) return 1;
  return tie_break_->Compare(a, b);
}

std::unique_ptr<LexicographicOrdering> MakeNestedSkylineOrdering(
    const SkylineSpec& spec) {
  std::vector<SortKey> keys;
  keys.reserve(spec.diff_columns().size() + spec.value_columns().size());
  for (size_t col : spec.diff_columns()) {
    keys.push_back({col, /*descending=*/false});
  }
  for (const auto& vc : spec.value_columns()) {
    // MAX criteria sort descending (best first); MIN ascending.
    keys.push_back({vc.column, /*descending=*/vc.max});
  }
  return std::make_unique<LexicographicOrdering>(&spec.schema(),
                                                 std::move(keys));
}

}  // namespace skyline
