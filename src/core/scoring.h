#ifndef SKYLINE_CORE_SCORING_H_
#define SKYLINE_CORE_SCORING_H_

#include <memory>
#include <vector>

#include "core/skyline_spec.h"
#include "relation/histogram.h"
#include "relation/table.h"
#include "sort/comparator.h"

namespace skyline {

/// The paper's entropy scoring function (Section 4.3):
///
///   E(t) = Σᵢ ln(xᵢ + 1)
///
/// where xᵢ is the i-th MIN/MAX criterion value normalized into [0,1]
/// (flipped for MIN so larger is always better). Ordering by E descending
/// approximates ordering by dominance probability Πᵢ xᵢ, which maximizes the
/// cumulative dominance number of the tuples that fill the SFS window.
///
/// Normalization uses per-column min/max statistics — exactly what an RDBMS
/// catalog keeps — so scores are computed from a tuple alone.
class EntropyScorer {
 public:
  /// `stats` holds one ColumnStats per schema column (as produced by
  /// TableBuilder). Columns with invalid stats (e.g. constant/empty input)
  /// contribute 0.
  EntropyScorer(const SkylineSpec* spec, std::vector<ColumnStats> stats);

  /// Convenience: pull stats from a table (whose schema must match).
  EntropyScorer(const SkylineSpec* spec, const Table& table);

  double Score(const char* row) const;

  /// Normalized value of the i-th value criterion in [0,1] (1 = best).
  double Normalized(size_t value_index, const char* row) const;

 private:
  struct ColumnNorm {
    size_t column;
    bool max;
    double lo;
    double inv_span;  // 0 when the column is constant or stats invalid
  };

  const SkylineSpec* spec_;
  std::vector<ColumnNorm> norms_;
};

/// Positive linear scoring W(t) = Σ wᵢ·xᵢ over normalized criterion values
/// (Definition 3). Used to validate Lemma 2 / Theorem 4 experimentally: the
/// top scorer of any positive linear weighting is in the skyline, but not
/// every skyline tuple is a linear-scoring winner.
class LinearScorer {
 public:
  /// One positive weight per value criterion.
  LinearScorer(const SkylineSpec* spec, std::vector<ColumnStats> stats,
               std::vector<double> weights);

  double Score(const char* row) const;

 private:
  EntropyScorer normalizer_;  // reused for its Normalized() accessor
  std::vector<double> weights_;
};

/// RowOrdering that sorts by entropy score descending, with DIFF columns
/// outermost (ascending) so DIFF groups are contiguous. When the spec has no
/// DIFF columns the ordering exposes a scalar key, enabling the sorter's
/// single-key fast path (the paper's "sorting on a single attribute is
/// faster than nested-sorting" observation).
class EntropyOrdering : public RowOrdering {
 public:
  EntropyOrdering(const SkylineSpec* spec, std::vector<ColumnStats> stats);
  EntropyOrdering(const SkylineSpec* spec, const Table& table);

  int Compare(const char* a, const char* b) const override;
  bool has_key() const override;
  double Key(const char* row) const override;

 private:
  const SkylineSpec* spec_;
  EntropyScorer scorer_;
  /// Equal entropy scores do not imply equivalent tuples: normalization
  /// goes through double, so distinct int64 values above 2^53 (or any
  /// colliding value mix) can score identically while one dominates the
  /// other. Breaking the tie with the exact nested order keeps the sort a
  /// strict topological order of dominance regardless.
  std::unique_ptr<LexicographicOrdering> tie_break_;
};

/// Entropy scoring normalized by *rank* (approximate CDF from equi-depth
/// histograms) instead of by value. The paper's E assumes uniformly
/// distributed attributes so that the normalized value equals the
/// dominance probability; under skew that equality breaks and E's window-
/// filling heuristic weakens. Rank normalization restores it exactly:
/// Cdf(v) *is* the fraction of tuples worse on that attribute, whatever
/// the marginal distribution.
///
/// Cdf is monotone but only *weakly*: sampled histograms can assign equal
/// ranks to distinct values (everything beyond the sample extremes, for
/// instance), so score ties can hide a dominance pair. The ordering below
/// therefore breaks score ties with the nested lexicographic comparison —
/// the combination is a strict topological order (Theorems 6/7 compose) —
/// and consequently opts out of the sorter's scalar-key fast path.
class RankEntropyScorer {
 public:
  /// Builds per-criterion histograms from `table` (`buckets` resolution;
  /// `sample_size` rows sampled, 0 = all).
  static Result<RankEntropyScorer> Build(const SkylineSpec* spec,
                                         const Table& table, size_t buckets,
                                         size_t sample_size = 0);

  double Score(const char* row) const;

  /// Rank of the i-th value criterion in [0,1] (1 = best).
  double Rank(size_t value_index, const char* row) const;

 private:
  RankEntropyScorer(const SkylineSpec* spec,
                    std::vector<EquiDepthHistogram> histograms)
      : spec_(spec), histograms_(std::move(histograms)) {}

  const SkylineSpec* spec_;
  std::vector<EquiDepthHistogram> histograms_;  // one per value criterion
};

/// RowOrdering over rank-entropy scores (DIFF outermost, score descending,
/// nested lexicographic tie-break), analogous to EntropyOrdering.
class RankEntropyOrdering : public RowOrdering {
 public:
  static Result<RankEntropyOrdering> Build(const SkylineSpec* spec,
                                           const Table& table, size_t buckets,
                                           size_t sample_size = 0);

  int Compare(const char* a, const char* b) const override;
  // No scalar key: ties must be broken lexicographically (see class
  // comment of RankEntropyScorer).

 private:
  RankEntropyOrdering(const SkylineSpec* spec, RankEntropyScorer scorer,
                      std::unique_ptr<LexicographicOrdering> tie_break)
      : spec_(spec),
        scorer_(std::move(scorer)),
        tie_break_(std::move(tie_break)) {}

  const SkylineSpec* spec_;
  RankEntropyScorer scorer_;
  std::unique_ptr<LexicographicOrdering> tie_break_;
};

/// The nested (lexicographic) presort of the paper's Figure 6: DIFF columns
/// outermost ascending, then each MIN/MAX criterion (descending for MAX,
/// ascending for MIN). Any such order is a topological sort of dominance
/// (Theorem 7).
std::unique_ptr<LexicographicOrdering> MakeNestedSkylineOrdering(
    const SkylineSpec& spec);

}  // namespace skyline

#endif  // SKYLINE_CORE_SCORING_H_
