#include "core/sfs.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/canonical_key.h"
#include "core/dominance_batch.h"
#include "core/scoring.h"
#include "core/sfs_parallel.h"
#include "relation/column_store.h"

namespace skyline {

SfsIterator::SfsIterator(Env* env, TempFileManager* temp_files,
                         std::string sorted_path, const SkylineSpec* spec,
                         size_t window_pages, bool use_projection,
                         SkylineRunStats* stats)
    : env_(env),
      temp_files_(temp_files),
      input_path_(std::move(sorted_path)),
      spec_(spec),
      window_(spec, window_pages, use_projection),
      stats_(stats != nullptr ? stats : &local_stats_),
      out_row_(spec->schema().row_width()),
      prev_row_(spec->schema().row_width()) {}

void SfsIterator::SpillZoneTracker::Init(const SkylineSpec& spec) {
  enabled = true;
  num_schema_columns = spec.schema().num_columns();
  const auto& value_cols = spec.value_columns();
  const auto& dom_values = spec.dom_value_columns();
  for (size_t i = 0; i < value_cols.size(); ++i) {
    if (dom_values[i].type == ColumnType::kFixedString) {
      enabled = false;
      return;
    }
    columns.push_back(value_cols[i].column);
    types.push_back(dom_values[i].type);
    offsets.push_back(dom_values[i].offset);
  }
  const auto& diff_cols = spec.diff_columns();
  const auto& dom_diffs = spec.dom_diff_columns();
  for (size_t i = 0; i < diff_cols.size(); ++i) {
    if (dom_diffs[i].type == ColumnType::kFixedString) {
      enabled = false;
      return;
    }
    columns.push_back(diff_cols[i]);
    types.push_back(dom_diffs[i].type);
    offsets.push_back(dom_diffs[i].offset);
  }
  const size_t n = columns.size();
  cur_min.assign(n, std::numeric_limits<int64_t>::max());
  cur_max.assign(n, std::numeric_limits<int64_t>::min());
  zmin.resize(n);
  zmax.resize(n);
}

void SfsIterator::SpillZoneTracker::Observe(const char* row) {
  for (size_t i = 0; i < columns.size(); ++i) {
    const int64_t key = CanonicalKeyOf(types[i], row + offsets[i]);
    cur_min[i] = std::min(cur_min[i], key);
    cur_max[i] = std::max(cur_max[i], key);
  }
  ++rows;
  if (rows % DominanceIndex::kBlockEntries == 0) SealBlock();
}

void SfsIterator::SpillZoneTracker::SealBlock() {
  for (size_t i = 0; i < columns.size(); ++i) {
    zmin[i].push_back(cur_min[i]);
    zmax[i].push_back(cur_max[i]);
    cur_min[i] = std::numeric_limits<int64_t>::max();
    cur_max[i] = std::numeric_limits<int64_t>::min();
  }
}

std::shared_ptr<const TableColumnZones>
SfsIterator::SpillZoneTracker::Take() {
  if (rows % DominanceIndex::kBlockEntries != 0) SealBlock();
  auto zones = std::make_shared<TableColumnZones>();
  zones->block_rows = DominanceIndex::kBlockEntries;
  zones->row_count = rows;
  zones->source = "spill";
  zones->columns.resize(num_schema_columns);
  for (size_t i = 0; i < columns.size(); ++i) {
    zones->columns[columns[i]].zmin = std::move(zmin[i]);
    zones->columns[columns[i]].zmax = std::move(zmax[i]);
    zmin[i].clear();
    zmax[i].clear();
  }
  rows = 0;
  return zones;
}

Status SfsIterator::Open() {
  // The first pass reads the (sorted) input; per the paper's accounting
  // that scan is not part of the algorithm's "extra pages", so it does not
  // feed temp_io.
  reader_ = std::make_unique<HeapFileReader>(
      env_, input_path_, spec_->schema().row_width(), nullptr);
  SKYLINE_RETURN_IF_ERROR(reader_->Open());
  stats_->input_rows = reader_->record_count();
  stats_->passes = 1;
  stats_->dominance_kernel = window_.kernel_name();
  // The prefilter is only sound when its zones describe exactly this file.
  if (prefilter_ != nullptr &&
      (!prefilter_->usable() || residue_writer_ != nullptr ||
       prefilter_->row_count() != reader_->record_count())) {
    prefilter_.reset();
  }
  // Spill-pass zone tracking is sound whenever skipped rows don't need to
  // reach a residue side-output.
  if (residue_writer_ == nullptr) spill_zones_.Init(*spec_);
  if (prefilter_ != nullptr || spill_zones_.enabled) {
    corner_row_.resize(spec_->schema().row_width());
  }
  BeginPassSpan();
  return Status::OK();
}

void SfsIterator::BeginPassSpan() {
  pass_span_.reset();  // records the previous pass's span, if any
  if (ctx_ != nullptr && ctx_->trace != nullptr) {
    pass_span_ = std::make_unique<TraceSpan>(
        ctx_->trace, "filter-pass", static_cast<int64_t>(stats_->passes));
  }
}

void SfsIterator::SyncWindowStats() {
  stats_->window_comparisons = window_.comparisons();
  stats_->batch_comparisons = window_.batch_comparisons();
  stats_->window_blocks_pruned = window_.blocks_pruned();
  stats_->dict_probe_hits = window_.dict_hits();
}

void SfsIterator::MaybeSkipBlocks() {
  const uint64_t block = prefilter_->block_rows();
  const uint64_t rows = reader_->record_count();
  while (pass_rows_read_ < rows && pass_rows_read_ % block == 0) {
    const size_t b = static_cast<size_t>(pass_rows_read_ / block);
    // A corner needs uniform DIFF values over the block; otherwise the
    // block is filtered row by row.
    if (!prefilter_->BuildCorner(b, corner_row_.data())) return;
    if (!window_.AnyEntryDominates(corner_row_.data())) return;
    // Every row of the block is at most the corner on every criterion and
    // shares its DIFF group, so a strict dominator of the corner strictly
    // dominates them all: skip the block wholesale.
    ++stats_->table_zone_blocks_pruned;
    pass_rows_read_ = std::min<uint64_t>(pass_rows_read_ + block, rows);
    Status st = reader_->SeekToRecord(pass_rows_read_);
    if (!st.ok()) {
      status_ = st;
      return;
    }
  }
}

const char* SfsIterator::Next() {
  if (done_ || !status_.ok()) return nullptr;
  const bool poll_cancel = ctx_ != nullptr && ctx_->has_cancel_hook();
  const bool sample_probes = ctx_ != nullptr && ctx_->trace != nullptr;
  while (true) {
    if (prefilter_ != nullptr) {
      MaybeSkipBlocks();
      if (!status_.ok()) return nullptr;
    }
    const char* row = reader_->Next();
    if (row == nullptr) {
      if (!reader_->status().ok()) {
        status_ = reader_->status();
        return nullptr;
      }
      if (!StartNextPass()) return nullptr;
      continue;
    }
    ++pass_rows_read_;
    ++probe_count_;
    if (poll_cancel && (probe_count_ & 4095u) == 0) {
      status_ = ctx_->CheckCancelled();
      if (!status_.ok()) {
        pass_span_.reset();
        return nullptr;
      }
    }
    // DIFF group boundary: groups are contiguous in the sorted input, and
    // tuples in different groups never dominate each other, so the window
    // can be cleared wholesale (the paper's diff optimization).
    if (spec_->has_diff()) {
      if (have_prev_ && !spec_->SameDiffGroup(prev_row_.data(), row)) {
        window_.Clear();
      }
      std::memcpy(prev_row_.data(), row, prev_row_.size());
      have_prev_ = true;
    }

    Window::Verdict verdict;
    if (sample_probes && probe_count_ % kProbeSampleStride == 0) {
      TraceSpan probe_span(ctx_->trace, "window-probe");
      verdict = window_.Test(row);
    } else {
      verdict = window_.Test(row);
    }
    switch (verdict) {
      case Window::Verdict::kDominated:
        if (residue_writer_ != nullptr) {
          Status st = residue_writer_->Append(row);
          if (!st.ok()) {
            status_ = st;
            return nullptr;
          }
        }
        break;  // eliminated; fetch next
      case Window::Verdict::kAdded:
      case Window::Verdict::kDuplicateSkyline:
        // Confirmed skyline: pipeline it out immediately.
        ++stats_->output_rows;
        std::memcpy(out_row_.data(), row, out_row_.size());
        SyncWindowStats();
        return out_row_.data();
      case Window::Verdict::kWindowFull: {
        // Not dominated but no window space: defer to the next pass.
        if (spill_writer_ == nullptr) {
          spill_path_ = temp_files_->Allocate("sfs_spill");
          spill_writer_ = std::make_unique<HeapFileWriter>(
              env_, spill_path_, spec_->schema().row_width(),
              &stats_->temp_io);
          Status st = spill_writer_->Open();
          if (!st.ok()) {
            status_ = st;
            return nullptr;
          }
        }
        Status st = spill_writer_->Append(row);
        if (!st.ok()) {
          status_ = st;
          return nullptr;
        }
        if (spill_zones_.enabled) spill_zones_.Observe(row);
        ++stats_->spilled_tuples;
        break;
      }
      case Window::Verdict::kSortViolation:
        status_ = Status::InvalidArgument(
            "SFS input is not sorted by a monotone scoring order: a tuple "
            "dominates one that precedes it");
        return nullptr;
    }
  }
}

bool SfsIterator::StartNextPass() {
  SyncWindowStats();
  if (spill_writer_ == nullptr) {
    // Nothing was deferred: every input tuple was either emitted or
    // eliminated, so the skyline is complete.
    done_ = true;
    pass_span_.reset();
    return false;
  }
  Status st = spill_writer_->Finish();
  if (!st.ok()) {
    status_ = st;
    pass_span_.reset();
    return false;
  }
  spill_writer_.reset();

  // The previous pass's temp input (if any) is no longer needed.
  if (!first_pass_) {
    temp_files_->Delete(input_path_);
  }
  first_pass_ = false;
  input_path_ = spill_path_;
  spill_path_.clear();

  reader_ = std::make_unique<HeapFileReader>(
      env_, input_path_, spec_->schema().row_width(), &stats_->temp_io);
  st = reader_->Open();
  if (!st.ok()) {
    status_ = st;
    pass_span_.reset();
    return false;
  }
  // Swap in the zone maps tracked while writing this spill file; the next
  // pass then skips spill blocks wholly dominated by its growing window.
  // The first pass's input prefilter no longer describes the current file
  // either way.
  prefilter_.reset();
  if (spill_zones_.enabled) {
    auto corner = std::make_shared<BlockCornerBuilder>(spec_,
                                                       spill_zones_.Take());
    if (corner->usable()) prefilter_ = std::move(corner);
  }
  window_.Clear();
  have_prev_ = false;
  pass_rows_read_ = 0;
  ++stats_->passes;
  BeginPassSpan();
  return true;
}

Result<Table> ComputeSkylineSfs(const Table& input, const SkylineSpec& spec,
                                const SfsOptions& options,
                                const ExecContext& ctx,
                                const std::string& output_path,
                                SkylineRunStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;
  *s = SkylineRunStats{};
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  Env* env = input.env();
  TempFileManager temp_files(env, ctx.TempPrefixOr(output_path + ".sfs_tmp"));

  // Phase 1: presort by a monotone scoring order (Theorems 6/7 guarantee
  // any such order is a topological sort of dominance).
  std::string sorted_path = input.path();
  if (options.presort != Presort::kNone) {
    std::unique_ptr<RowOrdering> owned_ordering;
    const RowOrdering* ordering = nullptr;
    switch (options.presort) {
      case Presort::kNested:
        owned_ordering = MakeNestedSkylineOrdering(spec);
        ordering = owned_ordering.get();
        break;
      case Presort::kEntropy:
        owned_ordering = std::make_unique<EntropyOrdering>(&spec, input);
        ordering = owned_ordering.get();
        break;
      case Presort::kCustom:
        if (options.custom_ordering == nullptr) {
          return Status::InvalidArgument(
              "Presort::kCustom requires SfsOptions::custom_ordering");
        }
        ordering = options.custom_ordering;
        break;
      case Presort::kNone:
        break;
    }
    SortOptions sort_options = options.sort_options;
    const size_t requested = ctx.RequestedThreads(options.threads);
    if (ctx.threads.has_value()) {
      // The context override drives every phase under it.
      sort_options.threads = ctx.ResolveThreads(sort_options.threads);
    } else if (requested != 1 && sort_options.threads == 1) {
      // One knob drives both phases — clamped, so a request for more
      // workers than the machine has never oversubscribes the sort either.
      sort_options.threads = ClampThreadsToHardware(requested);
    }
    Stopwatch sort_timer;
    TraceSpan presort_span(ctx.trace, "presort");
    SKYLINE_ASSIGN_OR_RETURN(
        sorted_path,
        SortHeapFile(env, &temp_files, input.path(), spec.schema().row_width(),
                     *ordering, sort_options, ctx, &s->sort_stats));
    presort_span.End();
    s->sort_seconds = sort_timer.ElapsedSeconds();
  }
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  // Phase 2: filter passes, pipelining confirmed skyline rows straight into
  // the output table. With more than one usable worker (requests are
  // clamped to the hardware: every extra block re-filters its sample and
  // inflates the merge, so oversubscription is a strict loss — a 1-core
  // host ran threads=2 1.6× slower than sequential) and no residue
  // side-output, the block-parallel filter replaces the sequential
  // iterator; a clamp of 1 falls back to the sequential algorithm.
  const size_t filter_threads = ctx.ResolveThreads(options.threads);
  // The pre-clamp request (0 resolved to "all hardware"): threads_used
  // falling short of it is the degraded-parallelism honesty signal.
  const size_t threads_requested =
      ResolveThreadCount(ctx.RequestedThreads(options.threads));
  if (filter_threads > 1 && options.residue_path.empty()) {
    Stopwatch filter_timer;
    ParallelSfsOptions popt;
    popt.window_pages = options.window_pages;
    popt.use_projection = options.use_projection;
    popt.threads = filter_threads;
    popt.partition = options.partition;
    popt.merge_mode = options.merge;
    popt.representatives = options.merge_representatives;
    popt.exec = &ctx;
    TableBuilder builder(env, output_path, spec.schema());
    SKYLINE_RETURN_IF_ERROR(builder.Open());
    SKYLINE_RETURN_IF_ERROR(ParallelSfsFilter(
        env, sorted_path, spec, popt,
        [&builder](const char* row) { return builder.AppendRaw(row); }, s));
    // The filter only knows its clamped thread count; restore the caller's
    // actual request so the degraded flag survives the clamp.
    s->threads_requested = threads_requested;
    if (s->DegradedParallelism()) {
      LogWarning("degraded parallelism: " +
                 std::to_string(s->threads_requested) +
                 " threads requested but only " +
                 std::to_string(s->threads_used) +
                 " used; timings are not a scaling measurement");
    }
    s->filter_seconds = filter_timer.ElapsedSeconds();
    return builder.Finish();
  }

  Stopwatch filter_timer;
  s->threads_requested = threads_requested;
  if (threads_requested > 1) {
    // Sequential fallback despite a multi-thread request (hardware clamp
    // or a residue path forcing the pipelined filter).
    LogWarning("degraded parallelism: " + std::to_string(threads_requested) +
               " threads requested but the filter is running sequentially");
  }
  SfsIterator iter(env, &temp_files, sorted_path, &spec, options.window_pages,
                   options.use_projection, s);
  iter.set_exec_context(&ctx);
  // Zone-map block prefilter: only the unsorted-in-place path
  // (Presort::kNone) filters the original table file, whose 64-row blocks
  // are what the cached/persisted zone maps describe. Zone maps are
  // advisory — any load failure just means no block skipping.
  if (options.presort == Presort::kNone && options.residue_path.empty()) {
    bool cache_hit = false;
    auto zones_or = TableZoneCache::Instance().GetOrLoad(input, &cache_hit);
    if (zones_or.ok()) {
      std::shared_ptr<const TableColumnZones> zones =
          std::move(zones_or).value();
      s->zone_map_source = cache_hit ? "cache" : zones->source;
      if (!cache_hit && std::string_view(zones->source) == "column_file") {
        s->column_file_blocks_read =
            (zones->row_count + zones->block_rows - 1) / zones->block_rows;
      }
      auto corner =
          std::make_shared<BlockCornerBuilder>(&spec, std::move(zones));
      if (corner->usable()) iter.set_block_prefilter(std::move(corner));
    }
  }
  std::unique_ptr<HeapFileWriter> residue;
  if (!options.residue_path.empty()) {
    residue = std::make_unique<HeapFileWriter>(
        env, options.residue_path, spec.schema().row_width(), nullptr);
    SKYLINE_RETURN_IF_ERROR(residue->Open());
    iter.set_residue_writer(residue.get());
  }
  SKYLINE_RETURN_IF_ERROR(iter.Open());

  TableBuilder builder(env, output_path, spec.schema());
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  while (const char* row = iter.Next()) {
    SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
  }
  SKYLINE_RETURN_IF_ERROR(iter.status());
  if (residue != nullptr) {
    SKYLINE_RETURN_IF_ERROR(residue->Finish());
  }
  s->filter_seconds = filter_timer.ElapsedSeconds();
  return builder.Finish();
}

}  // namespace skyline
