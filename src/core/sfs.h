#ifndef SKYLINE_CORE_SFS_H_
#define SKYLINE_CORE_SFS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/run_stats.h"
#include "core/sfs_parallel.h"
#include "core/skyline_spec.h"
#include "core/window.h"
#include "core/zone_prefilter.h"
#include "relation/table.h"
#include "sort/external_sort.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// Which monotone presort order SFS applies before filtering.
enum class Presort {
  /// Nested lexicographic sort over the skyline attributes (Figure 6).
  kNested,
  /// Entropy-score sort (the w/E optimization; single-key, better window
  /// dominance numbers).
  kEntropy,
  /// Input is already in a monotone order — skip sorting. SFS still
  /// detects violations and fails with InvalidArgument.
  kNone,
  /// Sort by SfsOptions::custom_ordering — the paper's Section 4.4
  /// "combined with any preference ordering": if the user's preference is
  /// a monotone scoring, SFS emits the skyline *in preference order*, so
  /// the first results are the user's favorites (ideal with top-N). The
  /// ordering must be monotone w.r.t. dominance; violations are detected
  /// during filtering and reported as InvalidArgument.
  kCustom,
};

/// Options for the Sort-Filter-Skyline algorithm.
struct SfsOptions {
  /// Buffer pages allocated to the filter window.
  size_t window_pages = 500;
  /// Store only projected skyline attributes in the window, with duplicate
  /// elimination (the w/P optimization).
  bool use_projection = true;
  Presort presort = Presort::kEntropy;
  /// Worker threads for the whole computation. 1 (the default) is the
  /// classic sequential algorithm. >1 enables the block-parallel filter
  /// (core/sfs_parallel.h) with that many workers and, unless
  /// sort_options.threads was set explicitly, the parallel presort;
  /// 0 means one worker per hardware thread. The parallel filter emits the
  /// same rows in the same order as sequential SFS (byte-identical when
  /// the sequential filter needs a single pass), but materializes each
  /// block's candidates in memory and does not support residue_path
  /// (residue_path forces the sequential filter).
  size_t threads = 1;
  /// Partition scheme for the block-parallel filter (threads > 1): how
  /// rows of the presorted stream are dealt to the workers (stride / grid
  /// / angular; see core/partition.h). The skyline is byte-identical
  /// across schemes; the choice only moves work between the local filters
  /// and the merge. SQL sessions reach this through SqlOptions::sfs.
  PartitionSchemeKind partition = PartitionSchemeKind::kStride;
  /// How the block-parallel filter merges local skylines: the filtered
  /// cascade (default) or the measured all-pairs baseline.
  ParallelMergeMode merge = ParallelMergeMode::kFilteredCascade;
  /// Representatives each partition broadcasts for the cascade's
  /// cross-partition pre-prune; 0 disables the pre-prune.
  size_t merge_representatives = 16;
  /// Buffer pages for the presort (the paper grants the sort 1,000 pages,
  /// separate from the filter window allocation).
  SortOptions sort_options;
  /// If non-empty, every eliminated (dominated) tuple is also written to a
  /// heap file at this path — the complement of the skyline, used by the
  /// iterative strata labeller. The residue is in no particular order.
  std::string residue_path;
  /// The preference ordering used when presort == Presort::kCustom. Must
  /// outlive the call and be monotone w.r.t. dominance (any order induced
  /// by a monotone scoring function qualifies — Theorem 6).
  const RowOrdering* custom_ordering = nullptr;
};

/// Pull-based, pipelined SFS filter over an already-sorted heap file.
/// Every row returned by Next() is a confirmed skyline tuple the moment it
/// is returned — the property that makes SFS's output stream non-blocking
/// and usable for top-N early termination.
///
/// Handles multi-pass operation transparently: non-dominated tuples that
/// overflow the window spill to a temp file which seeds the next pass, until
/// a pass spills nothing.
class SfsIterator {
 public:
  /// `sorted_path` must be a heap file of spec->schema() rows in a monotone
  /// (topological w.r.t. dominance) order, with DIFF columns outermost.
  /// All pointers must outlive the iterator; `stats` may be null.
  SfsIterator(Env* env, TempFileManager* temp_files, std::string sorted_path,
              const SkylineSpec* spec, size_t window_pages,
              bool use_projection, SkylineRunStats* stats);

  SfsIterator(const SfsIterator&) = delete;
  SfsIterator& operator=(const SfsIterator&) = delete;

  /// Opens the first pass.
  Status Open();

  /// Routes eliminated (dominated) tuples to `writer` as a side output.
  /// Must be set before iteration starts; the caller owns and finishes the
  /// writer. May be null (the default) to discard eliminated tuples.
  void set_residue_writer(HeapFileWriter* writer) { residue_writer_ = writer; }

  /// Attaches a zone-map block prefilter built over the *input file's* row
  /// blocks (only sound when the input is filtered unsorted-in-place, i.e.
  /// Presort::kNone, so the file's blocks are the zone-map blocks). At
  /// every block boundary the block's corner row is tested against the
  /// window; if a confirmed entry dominates the corner the whole block is
  /// skipped without reading its rows. Ignored when a residue writer is
  /// set (skipped rows must still reach the residue). Set before Open; may
  /// be null. Later passes do not reuse this prefilter (spill files have
  /// different block alignment) — instead the iterator builds fresh zone
  /// maps over each spill file as it is written, so every pass gets block
  /// skipping regardless of how the first pass's input was produced.
  void set_block_prefilter(std::shared_ptr<const BlockCornerBuilder> p) {
    prefilter_ = std::move(p);
  }

  /// Attaches an execution context (must outlive the iterator; set before
  /// Open). The iterator then emits one "filter-pass-N" trace span per
  /// pass plus sampled "window-probe" spans (one in every
  /// kProbeSampleStride window tests), and polls the cancellation hook
  /// every few thousand rows.
  void set_exec_context(const ExecContext* ctx) { ctx_ = ctx; }

  /// Every this-many window probes, one is wrapped in a "window-probe"
  /// span — dense enough to see probe latency, sparse enough to keep the
  /// per-row cost to a counter increment.
  static constexpr uint64_t kProbeSampleStride = 8192;

  /// Returns the next skyline row (full schema row, valid until the next
  /// call), or nullptr when exhausted or on error (check status()).
  const char* Next();

  const Status& status() const { return status_; }
  const SkylineRunStats& stats() const { return *stats_; }

 private:
  /// Finishes the current pass's spill file and starts the next pass.
  /// Returns false when the computation is complete (or on error).
  bool StartNextPass();

  /// Publishes the window's comparison/pruning counters into stats_.
  void SyncWindowStats();

  /// First pass only: while positioned at a zone block boundary, tests the
  /// next block's corner row against the window and seeks past wholly
  /// dominated blocks. May set status_.
  void MaybeSkipBlocks();

  /// Opens the "filter-pass-<passes>" span (closing any previous one).
  void BeginPassSpan();

  /// Builds zone maps over the spill file as it is written, so the next
  /// pass can skip wholly dominated 64-row spill blocks the same way the
  /// first pass skips input blocks. Tracks only the spec's criterion
  /// columns (the ones BlockCornerBuilder reads) and only when they are
  /// all numeric — string criteria would need a cross-pass dictionary for
  /// codes to stay comparable, and the win there is marginal.
  struct SpillZoneTracker {
    bool enabled = false;
    /// Parallel arrays over the tracked criterion columns.
    std::vector<size_t> columns;     // schema column index
    std::vector<ColumnType> types;
    std::vector<size_t> offsets;
    size_t num_schema_columns = 0;
    uint64_t rows = 0;
    std::vector<int64_t> cur_min, cur_max;       // open block accumulators
    std::vector<std::vector<int64_t>> zmin, zmax;  // sealed blocks

    /// Configures the tracked columns from `spec`; disables itself when
    /// any criterion column is non-numeric.
    void Init(const SkylineSpec& spec);
    /// Folds one spilled row into the open block (sealing it at 64 rows).
    void Observe(const char* row);
    void SealBlock();
    /// Returns zones describing every observed row and restarts the
    /// tracker for the next pass's spill.
    std::shared_ptr<const TableColumnZones> Take();
  };

  Env* env_;
  TempFileManager* temp_files_;
  std::string input_path_;  // current pass's input
  const SkylineSpec* spec_;
  Window window_;
  SkylineRunStats local_stats_;
  SkylineRunStats* stats_;

  std::unique_ptr<HeapFileReader> reader_;
  std::unique_ptr<HeapFileWriter> spill_writer_;
  HeapFileWriter* residue_writer_ = nullptr;
  std::shared_ptr<const BlockCornerBuilder> prefilter_;
  SpillZoneTracker spill_zones_;
  std::vector<char> corner_row_;
  uint64_t pass_rows_read_ = 0;
  const ExecContext* ctx_ = nullptr;
  std::unique_ptr<TraceSpan> pass_span_;
  uint64_t probe_count_ = 0;
  std::string spill_path_;
  std::vector<char> out_row_;
  std::vector<char> prev_row_;  // DIFF group tracking
  bool have_prev_ = false;
  bool first_pass_ = true;
  bool done_ = false;
  Status status_;
};

/// Computes the skyline of `input` under `spec` with SFS, writing the
/// result (full rows, in the presort's monotone order) to a new table at
/// `output_path`. `stats` may be null.
///
/// The context supplies the thread override (ctx.threads beats
/// options.threads; see ExecContext's resolution contract), the temp-file
/// prefix, the trace sink (spans: "presort" wrapping the external sort's
/// "run-formation"/"merge-N", then "filter-pass-N" or
/// "block-scan"/"block-merge"), the metrics sink, and cancellation.
Result<Table> ComputeSkylineSfs(const Table& input, const SkylineSpec& spec,
                                const SfsOptions& options,
                                const ExecContext& ctx,
                                const std::string& output_path,
                                SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_SFS_H_
