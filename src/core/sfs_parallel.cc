#include "core/sfs_parallel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dominance_batch.h"
#include "core/window.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace skyline {
namespace {

Status SortViolationError() {
  return Status::InvalidArgument(
      "SFS input is not sorted by a monotone scoring order: a tuple "
      "dominates one that precedes it");
}

/// Result of one worker's local filter over its sample: candidate skyline
/// rows in position order plus that worker's counters.
struct BlockResult {
  Status status;
  std::vector<char> rows;      // candidate full rows, position order
  std::vector<uint64_t> pos;   // global record index per candidate
  uint64_t comparisons = 0;
  uint64_t batch_comparisons = 0;
  uint64_t blocks_pruned = 0;
  uint64_t dict_hits = 0;
  uint64_t passes = 1;
};

/// Runs the standard window filter over block `block_index`'s sample of the
/// sorted file: chunks of `chunk_rows` records assigned round-robin across
/// `num_blocks` blocks. The sample is a subsequence of the sorted stream,
/// so it is itself monotone-sorted (and DIFF groups stay contiguous in it)
/// — the window machinery applies unchanged. Window overflow is handled
/// with in-memory multi-pass rounds over the deferred rows (the sample is a
/// bounded slice, so deferral stays in memory rather than spilling to a
/// temp file); candidates are restored to position order afterwards.
BlockResult FilterBlock(Env* env, const std::string& sorted_path,
                        const SkylineSpec& spec,
                        const ParallelSfsOptions& options,
                        const ExecContext& ctx, uint64_t total,
                        uint64_t chunk_rows, size_t num_blocks,
                        size_t block_index) {
  BlockResult result;
  const size_t width = spec.schema().row_width();
  HeapFileReader reader(env, sorted_path, width, nullptr);
  result.status = reader.Open();
  if (!result.status.ok()) return result;
  const bool poll_cancel = ctx.has_cancel_hook();
  uint64_t polled = 0;

  Window window(&spec, options.window_pages, options.use_projection);
  std::vector<char> deferred;
  std::vector<uint64_t> deferred_pos;
  std::vector<char> prev_row(width);
  bool have_prev = false;

  // One filtering round shared by the streaming pass and the in-memory
  // deferral rounds.
  auto test_row = [&](const char* row, uint64_t global_pos) -> Status {
    if (spec.has_diff()) {
      if (have_prev && !spec.SameDiffGroup(prev_row.data(), row)) {
        window.Clear();
      }
      std::memcpy(prev_row.data(), row, width);
      have_prev = true;
    }
    switch (window.Test(row)) {
      case Window::Verdict::kDominated:
        break;
      case Window::Verdict::kAdded:
      case Window::Verdict::kDuplicateSkyline:
        result.rows.insert(result.rows.end(), row, row + width);
        result.pos.push_back(global_pos);
        break;
      case Window::Verdict::kWindowFull:
        deferred.insert(deferred.end(), row, row + width);
        deferred_pos.push_back(global_pos);
        break;
      case Window::Verdict::kSortViolation:
        return SortViolationError();
    }
    return Status::OK();
  };

  for (uint64_t chunk = block_index; chunk * chunk_rows < total;
       chunk += num_blocks) {
    const uint64_t begin = chunk * chunk_rows;
    const uint64_t end = std::min<uint64_t>(total, begin + chunk_rows);
    result.status = reader.SeekToRecord(begin);
    if (!result.status.ok()) return result;
    for (uint64_t i = begin; i < end; ++i) {
      const char* row = reader.Next();
      if (row == nullptr) {
        result.status = reader.status().ok()
                            ? Status::Corruption("sorted input truncated")
                            : reader.status();
        return result;
      }
      if (poll_cancel && (++polled & 4095u) == 0) {
        result.status = ctx.CheckCancelled();
        if (!result.status.ok()) return result;
      }
      result.status = test_row(row, i);
      if (!result.status.ok()) return result;
    }
  }

  while (!deferred.empty()) {
    ++result.passes;
    window.Clear();
    have_prev = false;
    std::vector<char> round = std::move(deferred);
    std::vector<uint64_t> round_pos = std::move(deferred_pos);
    deferred = {};
    deferred_pos = {};
    for (size_t i = 0; i < round_pos.size(); ++i) {
      result.status = test_row(round.data() + i * width, round_pos[i]);
      if (!result.status.ok()) return result;
    }
  }

  if (result.passes > 1) {
    // Deferral rounds append out of order; restore position order so the
    // global merge emits a deterministic stream.
    std::vector<uint32_t> order(result.pos.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&result](uint32_t a, uint32_t b) {
                       return result.pos[a] < result.pos[b];
                     });
    std::vector<char> sorted_rows(result.rows.size());
    std::vector<uint64_t> sorted_pos(result.pos.size());
    for (size_t i = 0; i < order.size(); ++i) {
      std::memcpy(sorted_rows.data() + i * width,
                  result.rows.data() + order[i] * width, width);
      sorted_pos[i] = result.pos[order[i]];
    }
    result.rows = std::move(sorted_rows);
    result.pos = std::move(sorted_pos);
  }
  result.comparisons = window.comparisons();
  result.batch_comparisons = window.batch_comparisons();
  result.blocks_pruned = window.blocks_pruned();
  result.dict_hits = window.dict_hits();
  return result;
}

}  // namespace

Status ParallelSfsFilter(Env* env, const std::string& sorted_path,
                         const SkylineSpec& spec,
                         const ParallelSfsOptions& options,
                         const std::function<Status(const char* row)>& sink,
                         SkylineRunStats* stats) {
  SkylineRunStats local_stats;
  SkylineRunStats* s = stats != nullptr ? stats : &local_stats;
  const ExecContext& ctx =
      options.exec != nullptr ? *options.exec : DefaultExecContext();
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  const size_t width = spec.schema().row_width();
  uint64_t total = 0;
  {
    HeapFileReader probe(env, sorted_path, width, nullptr);
    SKYLINE_RETURN_IF_ERROR(probe.Open());
    total = probe.record_count();
  }
  s->input_rows = total;
  s->passes = 1;

  const size_t threads = ResolveThreadCount(options.threads);
  const uint64_t min_block = std::max<uint64_t>(1, options.min_block_rows);
  const size_t blocks = static_cast<size_t>(std::max<uint64_t>(
      1, std::min<uint64_t>(threads, total / min_block)));
  s->threads_used = blocks;
  if (total == 0) return Status::OK();

  // Page-aligned stride chunks: each block samples the whole sorted stream,
  // so every block sees its share of the strong early eliminators and local
  // skylines stay near the global skyline's size (contiguous range blocks
  // degenerate on anti-correlated data: later ranges, missing the early
  // eliminators, keep nearly everything).
  const uint64_t per_page = std::max<size_t>(1, RecordsPerPage(width));
  const uint64_t chunk_rows =
      options.chunk_rows > 0
          ? options.chunk_rows
          : per_page * ParallelSfsOptions::kDefaultChunkPages;

  ThreadPool pool(std::min(threads, blocks));

  Stopwatch scan_timer;
  TraceSpan scan_span(ctx.trace, "block-scan");
  std::vector<std::future<BlockResult>> futures;
  futures.reserve(blocks);
  for (size_t k = 0; k < blocks; ++k) {
    futures.push_back(
        pool.Submit([env, &sorted_path, &spec, &options, &ctx, total,
                     chunk_rows, blocks, k]() {
          return FilterBlock(env, sorted_path, spec, options, ctx, total,
                             chunk_rows, blocks, k);
        }));
  }
  std::vector<BlockResult> results;
  results.reserve(blocks);
  for (auto& future : futures) {
    BlockResult block = future.get();
    s->window_comparisons += block.comparisons;
    s->batch_comparisons += block.batch_comparisons;
    s->window_blocks_pruned += block.blocks_pruned;
    s->dict_probe_hits += block.dict_hits;
    s->passes = std::max<uint64_t>(s->passes, block.passes);
    results.push_back(std::move(block));
  }
  s->block_scan_seconds = scan_timer.ElapsedSeconds();
  scan_span.End();
  for (const BlockResult& block : results) {
    SKYLINE_RETURN_IF_ERROR(block.status);
  }

  // Merge phase: a candidate is a global skyline tuple iff no other block's
  // local survivor dominates it (its own block already resolved intra-block
  // dominance). This is sound by transitivity: any eliminated dominator of
  // a candidate is itself dominated by some locally-surviving tuple, which
  // then dominates the candidate too; and it is complete because local
  // skylines are supersets of the global skyline's restriction. Every
  // candidate is testable independently — the whole phase parallelizes.
  Stopwatch merge_timer;
  TraceSpan merge_span(ctx.trace, "block-merge");
  std::atomic<bool> cancel_requested{false};
  const bool poll_cancel = ctx.has_cancel_hook();
  std::vector<std::vector<uint8_t>> keep(blocks);
  std::vector<size_t> base(blocks + 1, 0);
  for (size_t k = 0; k < blocks; ++k) {
    keep[k].assign(results[k].pos.size(), 1);
    base[k + 1] = base[k] + results[k].pos.size();
  }
  const size_t candidate_count = base[blocks];

  std::atomic<uint64_t> merge_comparisons{0};
  std::atomic<uint64_t> merge_blocks_pruned{0};
  std::atomic<uint64_t> merge_batch_comparisons{0};
  const bool columnar = DominanceIndex(&spec).columnar();
  if (blocks > 1 && candidate_count > 0) {
    const bool has_diff = spec.has_diff();
    // Columnar mirrors of every block's candidates: the merge probes reuse
    // the same zone-map pruning + batched kernel as the window scan, which
    // cuts the all-pairs merge from one CompareDominance per candidate
    // pair to one kernel call per unpruned 64-candidate block. All indexes
    // share one dictionary set — a probe encoded against index k is tested
    // against index j, so string codes must be comparable across blocks.
    // The build loop is sequential (Encode is single-writer); the merge
    // phase only probes via the const Find path.
    auto merge_dicts = std::make_shared<SpecDictionaries>(&spec);
    std::vector<DominanceIndex> indexes;
    if (columnar) {
      indexes.reserve(blocks);
      for (size_t k = 0; k < blocks; ++k) {
        DominanceIndex index(&spec, nullptr, merge_dicts);
        index.Reserve(results[k].pos.size());
        for (size_t i = 0; i < results[k].pos.size(); ++i) {
          index.Append(results[k].rows.data() + i * width);
        }
        indexes.push_back(std::move(index));
      }
    }
    const size_t grain = std::max<size_t>(
        16, candidate_count / (8 * pool.num_threads() + 1));
    ParallelFor(
        &pool, candidate_count,
        [&](size_t flat) {
          if (poll_cancel) {
            if (cancel_requested.load(std::memory_order_relaxed)) return;
            if ((flat & 511u) == 0 && ctx.cancelled()) {
              cancel_requested.store(true, std::memory_order_relaxed);
              return;
            }
          }
          const size_t k =
              std::upper_bound(base.begin(), base.end(), flat) -
              base.begin() - 1;
          const size_t i = flat - base[k];
          const char* probe = results[k].rows.data() + i * width;
          const uint64_t probe_pos = results[k].pos[i];
          uint64_t tests = 0;
          uint64_t pruned = 0;
          DominanceIndex::Probe keys;
          if (columnar) indexes[k].EncodeProbe(probe, &keys);
          for (size_t j = 0; j < blocks && keep[k][i]; ++j) {
            if (j == k) continue;
            const BlockResult& other = results[j];
            // Only earlier-position tuples can dominate (the sort order is
            // topological w.r.t. dominance); pos is ascending per block.
            const size_t limit =
                std::upper_bound(other.pos.begin(), other.pos.end(),
                                 probe_pos) -
                other.pos.begin();
            if (columnar) {
              // DIFF equality is folded into the kernel masks, so one loop
              // serves both spec shapes.
              const size_t index_blocks = DominanceIndex::BlockCountFor(limit);
              for (size_t b = 0; b < index_blocks; ++b) {
                if (indexes[j].CanPruneBlock(keys, b)) {
                  ++pruned;
                  continue;
                }
                tests += indexes[j].BlockEntries(b, limit);
                if (indexes[j].TestBlock(keys, b, limit).dominates != 0) {
                  keep[k][i] = 0;
                  break;
                }
              }
            } else if (has_diff) {
              // Position order keeps DIFF groups contiguous, so the
              // candidate's group — the only comparable entries — is
              // exactly the tail of the earlier-position prefix.
              for (size_t m = limit; m-- > 0;) {
                const char* entry = other.rows.data() + m * width;
                if (!spec.SameDiffGroup(entry, probe)) break;
                ++tests;
                if (CompareDominance(spec, entry, probe) ==
                    DomResult::kFirstDominates) {
                  keep[k][i] = 0;
                  break;
                }
              }
            } else {
              // Forward scan: the earliest (best-scoring) tuples are the
              // strongest eliminators — the same heuristic that makes the
              // sequential window effective.
              for (size_t m = 0; m < limit; ++m) {
                ++tests;
                if (CompareDominance(spec, other.rows.data() + m * width,
                                     probe) == DomResult::kFirstDominates) {
                  keep[k][i] = 0;
                  break;
                }
              }
            }
          }
          merge_comparisons.fetch_add(tests, std::memory_order_relaxed);
          merge_blocks_pruned.fetch_add(pruned, std::memory_order_relaxed);
          if (columnar) {
            merge_batch_comparisons.fetch_add(tests,
                                              std::memory_order_relaxed);
          }
        },
        grain);
    s->dict_probe_hits += merge_dicts->TotalProbeHits();
  }

  if (cancel_requested.load(std::memory_order_relaxed)) {
    return Status::Cancelled("operation cancelled by ExecContext hook");
  }

  // Emit survivors in global position order (k-way merge over the blocks'
  // position-sorted candidate lists).
  std::vector<size_t> cursor(blocks, 0);
  for (;;) {
    size_t best = blocks;
    uint64_t best_pos = 0;
    for (size_t k = 0; k < blocks; ++k) {
      while (cursor[k] < results[k].pos.size() && !keep[k][cursor[k]]) {
        ++cursor[k];
      }
      if (cursor[k] >= results[k].pos.size()) continue;
      if (best == blocks || results[k].pos[cursor[k]] < best_pos) {
        best = k;
        best_pos = results[k].pos[cursor[k]];
      }
    }
    if (best == blocks) break;
    SKYLINE_RETURN_IF_ERROR(
        sink(results[best].rows.data() + cursor[best] * width));
    ++s->output_rows;
    ++cursor[best];
  }
  s->block_merge_seconds += merge_timer.ElapsedSeconds();
  s->merge_comparisons = merge_comparisons.load();
  s->window_comparisons += s->merge_comparisons;
  s->batch_comparisons += merge_batch_comparisons.load();
  s->merge_blocks_pruned = merge_blocks_pruned.load();
  s->dominance_kernel = columnar ? ActiveDominanceKernel().name : "row";
  return Status::OK();
}

}  // namespace skyline
