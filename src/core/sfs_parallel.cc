#include "core/sfs_parallel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dominance_batch.h"
#include "core/representatives.h"
#include "core/window.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace skyline {
namespace {

Status SortViolationError() {
  return Status::InvalidArgument(
      "SFS input is not sorted by a monotone scoring order: a tuple "
      "dominates one that precedes it");
}

/// Result of one worker's local filter over its partition: candidate
/// skyline rows in position order plus that worker's counters.
struct BlockResult {
  Status status;
  std::vector<char> rows;      // candidate full rows, position order
  std::vector<uint64_t> pos;   // global record index per candidate
  /// Indices into rows/pos of this partition's broadcast representatives
  /// (highest-entropy candidates), ascending; empty when not requested.
  std::vector<uint32_t> rep_indices;
  uint64_t comparisons = 0;
  uint64_t batch_comparisons = 0;
  uint64_t blocks_pruned = 0;
  uint64_t dict_hits = 0;
  uint64_t passes = 1;
};

/// Runs the standard window filter over partition `block_index`'s rows.
/// With a position-based scheme (stride, or a single block) the worker
/// seeks straight to its page-aligned chunks; value-based schemes (grid,
/// angular) scan the whole stream and keep the rows the scheme assigns
/// here. Either way the partition is a subsequence of the sorted stream,
/// so it is itself monotone-sorted (and DIFF groups stay contiguous in it)
/// — the window machinery applies unchanged. Window overflow is handled
/// with in-memory multi-pass rounds over the deferred rows (the partition
/// is a bounded slice, so deferral stays in memory rather than spilling to
/// a temp file); candidates are restored to position order afterwards.
BlockResult FilterBlock(Env* env, const std::string& sorted_path,
                        const SkylineSpec& spec,
                        const ParallelSfsOptions& options,
                        const ExecContext& ctx, uint64_t total,
                        uint64_t chunk_rows, size_t num_blocks,
                        size_t block_index, const PartitionScheme* scheme,
                        size_t rep_count) {
  BlockResult result;
  const size_t width = spec.schema().row_width();
  HeapFileReader reader(env, sorted_path, width, nullptr);
  result.status = reader.Open();
  if (!result.status.ok()) return result;
  const bool poll_cancel = ctx.has_cancel_hook();
  uint64_t polled = 0;

  Window window(&spec, options.window_pages, options.use_projection);
  std::vector<char> deferred;
  std::vector<uint64_t> deferred_pos;
  std::vector<char> prev_row(width);
  bool have_prev = false;

  // One filtering round shared by the streaming pass and the in-memory
  // deferral rounds.
  auto test_row = [&](const char* row, uint64_t global_pos) -> Status {
    if (spec.has_diff()) {
      if (have_prev && !spec.SameDiffGroup(prev_row.data(), row)) {
        window.Clear();
      }
      std::memcpy(prev_row.data(), row, width);
      have_prev = true;
    }
    switch (window.Test(row)) {
      case Window::Verdict::kDominated:
        break;
      case Window::Verdict::kAdded:
      case Window::Verdict::kDuplicateSkyline:
        result.rows.insert(result.rows.end(), row, row + width);
        result.pos.push_back(global_pos);
        break;
      case Window::Verdict::kWindowFull:
        deferred.insert(deferred.end(), row, row + width);
        deferred_pos.push_back(global_pos);
        break;
      case Window::Verdict::kSortViolation:
        return SortViolationError();
    }
    return Status::OK();
  };

  if (scheme == nullptr || scheme->position_based()) {
    for (uint64_t chunk = block_index; chunk * chunk_rows < total;
         chunk += num_blocks) {
      const uint64_t begin = chunk * chunk_rows;
      const uint64_t end = std::min<uint64_t>(total, begin + chunk_rows);
      result.status = reader.SeekToRecord(begin);
      if (!result.status.ok()) return result;
      for (uint64_t i = begin; i < end; ++i) {
        const char* row = reader.Next();
        if (row == nullptr) {
          result.status = reader.status().ok()
                              ? Status::Corruption("sorted input truncated")
                              : reader.status();
          return result;
        }
        if (poll_cancel && (++polled & 4095u) == 0) {
          result.status = ctx.CheckCancelled();
          if (!result.status.ok()) return result;
        }
        result.status = test_row(row, i);
        if (!result.status.ok()) return result;
      }
    }
  } else {
    result.status = reader.SeekToRecord(0);
    if (!result.status.ok()) return result;
    for (uint64_t i = 0; i < total; ++i) {
      const char* row = reader.Next();
      if (row == nullptr) {
        result.status = reader.status().ok()
                            ? Status::Corruption("sorted input truncated")
                            : reader.status();
        return result;
      }
      if (poll_cancel && (++polled & 4095u) == 0) {
        result.status = ctx.CheckCancelled();
        if (!result.status.ok()) return result;
      }
      if (scheme->OwnerOf(row, i) != block_index) continue;
      result.status = test_row(row, i);
      if (!result.status.ok()) return result;
    }
  }

  while (!deferred.empty()) {
    ++result.passes;
    window.Clear();
    have_prev = false;
    std::vector<char> round = std::move(deferred);
    std::vector<uint64_t> round_pos = std::move(deferred_pos);
    deferred = {};
    deferred_pos = {};
    for (size_t i = 0; i < round_pos.size(); ++i) {
      result.status = test_row(round.data() + i * width, round_pos[i]);
      if (!result.status.ok()) return result;
    }
  }

  if (result.passes > 1) {
    // Deferral rounds append out of order; restore position order so the
    // global merge emits a deterministic stream.
    std::vector<uint32_t> order(result.pos.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&result](uint32_t a, uint32_t b) {
                       return result.pos[a] < result.pos[b];
                     });
    std::vector<char> sorted_rows(result.rows.size());
    std::vector<uint64_t> sorted_pos(result.pos.size());
    for (size_t i = 0; i < order.size(); ++i) {
      std::memcpy(sorted_rows.data() + i * width,
                  result.rows.data() + order[i] * width, width);
      sorted_pos[i] = result.pos[order[i]];
    }
    result.rows = std::move(sorted_rows);
    result.pos = std::move(sorted_pos);
  }
  if (rep_count > 0 && !result.pos.empty()) {
    result.rep_indices =
        SelectRepresentatives(spec, result.rows.data(), result.pos, rep_count);
  }
  result.comparisons = window.comparisons();
  result.batch_comparisons = window.batch_comparisons();
  result.blocks_pruned = window.blocks_pruned();
  result.dict_hits = window.dict_hits();
  return result;
}

/// One position-sorted candidate list of the filtered cascade (a level-0
/// partition, the pooled representatives, or a merged survivor list).
/// `index` is the columnar mirror of ALL entries — including entries whose
/// keep bit has dropped: a dominated candidate is still a sound eliminator
/// (whatever it dominates, its own dominator dominates too, by
/// transitivity), so indexes never need rebuilding mid-level.
struct CascadeList {
  std::vector<char> rows;
  std::vector<uint64_t> pos;
  std::vector<uint8_t> keep;
  std::unique_ptr<DominanceIndex> index;  // null on the row fallback
};

std::unique_ptr<DominanceIndex> BuildIndex(
    const SkylineSpec& spec, const std::shared_ptr<SpecDictionaries>& dicts,
    const char* rows, size_t count, size_t width) {
  auto index = std::make_unique<DominanceIndex>(&spec, nullptr, dicts);
  index->Reserve(count);
  for (size_t i = 0; i < count; ++i) index->Append(rows + i * width);
  return index;
}

/// True when some entry of `list` at a position strictly before
/// `probe_pos` dominates `probe` (only earlier-position tuples can
/// dominate — the sort order is topological w.r.t. dominance). Columnar
/// lists zone-prune with the dominator-only corner test before each
/// batched kernel call; the row fallback scans the candidate's contiguous
/// DIFF group backward (DIFF specs) or the prefix forward.
bool ListDominates(const SkylineSpec& spec, size_t width, bool has_diff,
                   const CascadeList& list, const DominanceIndex::Probe& keys,
                   const char* probe, uint64_t probe_pos, uint64_t* tests,
                   uint64_t* pruned) {
  const size_t limit =
      std::lower_bound(list.pos.begin(), list.pos.end(), probe_pos) -
      list.pos.begin();
  if (limit == 0) return false;
  if (list.index != nullptr) {
    const size_t index_blocks = DominanceIndex::BlockCountFor(limit);
    for (size_t b = 0; b < index_blocks; ++b) {
      if (list.index->CanPruneBlockForDominators(keys, b)) {
        ++*pruned;
        continue;
      }
      *tests += list.index->BlockEntries(b, limit);
      if (list.index->TestBlock(keys, b, limit).dominates != 0) return true;
    }
  } else if (has_diff) {
    // Position order keeps DIFF groups contiguous, so the probe's group —
    // the only comparable entries — is exactly the tail of the
    // earlier-position prefix.
    for (size_t m = limit; m-- > 0;) {
      const char* entry = list.rows.data() + m * width;
      if (!spec.SameDiffGroup(entry, probe)) break;
      ++*tests;
      if (CompareDominance(spec, entry, probe) == DomResult::kFirstDominates) {
        return true;
      }
    }
  } else {
    // Forward scan: the earliest (best-scoring) tuples are the strongest
    // eliminators — the same heuristic that makes the window effective.
    for (size_t m = 0; m < limit; ++m) {
      ++*tests;
      if (CompareDominance(spec, list.rows.data() + m * width, probe) ==
          DomResult::kFirstDominates) {
        return true;
      }
    }
  }
  return false;
}

/// Merges the surviving entries of `a` and `b` into one position-sorted
/// list (two-pointer merge; both inputs are position-sorted subsequences,
/// so the union is too, and DIFF groups stay contiguous). Dominated
/// entries are dropped here — survivor-only lists are sound eliminator
/// sets at the next level by the transitivity chain argument.
CascadeList CompactPair(const SkylineSpec& spec, size_t width, bool columnar,
                        const std::shared_ptr<SpecDictionaries>& dicts,
                        const CascadeList& a, const CascadeList& b) {
  CascadeList out;
  size_t alive = 0;
  for (uint8_t k : a.keep) alive += k;
  for (uint8_t k : b.keep) alive += k;
  out.rows.reserve(alive * width);
  out.pos.reserve(alive);
  size_t i = 0;
  size_t j = 0;
  auto skip_dead = [](const CascadeList& list, size_t* c) {
    while (*c < list.pos.size() && !list.keep[*c]) ++*c;
  };
  for (;;) {
    skip_dead(a, &i);
    skip_dead(b, &j);
    const bool have_a = i < a.pos.size();
    const bool have_b = j < b.pos.size();
    if (!have_a && !have_b) break;
    const CascadeList* src = &a;
    size_t* c = &i;
    if (!have_a || (have_b && b.pos[j] < a.pos[i])) {
      src = &b;
      c = &j;
    }
    out.rows.insert(out.rows.end(), src->rows.data() + *c * width,
                    src->rows.data() + (*c + 1) * width);
    out.pos.push_back(src->pos[*c]);
    ++*c;
  }
  out.keep.assign(out.pos.size(), 1);
  if (columnar && !out.pos.empty()) {
    out.index = BuildIndex(spec, dicts, out.rows.data(), out.pos.size(), width);
  }
  return out;
}

/// Drops dominated entries from a single list in place (rebuilding its
/// index when columnar). Used between the representative pre-prune and the
/// first cascade level: the representatives kill most non-skyline
/// candidates, and level 0 is the largest level — probing survivor-only
/// lists there avoids re-scanning every kill the pool already made.
void CompactList(const SkylineSpec& spec, size_t width, bool columnar,
                 const std::shared_ptr<SpecDictionaries>& dicts,
                 CascadeList* list) {
  size_t alive = 0;
  for (uint8_t k : list->keep) alive += k;
  if (alive == list->pos.size()) return;
  CascadeList out;
  out.rows.reserve(alive * width);
  out.pos.reserve(alive);
  for (size_t i = 0; i < list->pos.size(); ++i) {
    if (!list->keep[i]) continue;
    out.rows.insert(out.rows.end(), list->rows.data() + i * width,
                    list->rows.data() + (i + 1) * width);
    out.pos.push_back(list->pos[i]);
  }
  out.keep.assign(out.pos.size(), 1);
  if (columnar && !out.pos.empty()) {
    out.index = BuildIndex(spec, dicts, out.rows.data(), out.pos.size(), width);
  }
  *list = std::move(out);
}

}  // namespace

Status ParallelSfsFilter(Env* env, const std::string& sorted_path,
                         const SkylineSpec& spec,
                         const ParallelSfsOptions& options,
                         const std::function<Status(const char* row)>& sink,
                         SkylineRunStats* stats) {
  SkylineRunStats local_stats;
  SkylineRunStats* s = stats != nullptr ? stats : &local_stats;
  static const ExecContext* const kNoContext = new ExecContext();
  const ExecContext& ctx = options.exec != nullptr ? *options.exec : *kNoContext;
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  const size_t width = spec.schema().row_width();
  uint64_t total = 0;
  {
    HeapFileReader probe(env, sorted_path, width, nullptr);
    SKYLINE_RETURN_IF_ERROR(probe.Open());
    total = probe.record_count();
  }
  s->input_rows = total;
  s->passes = 1;

  const size_t threads = ResolveThreadCount(options.threads);
  s->threads_requested = threads;
  const uint64_t min_block = std::max<uint64_t>(1, options.min_block_rows);
  const size_t blocks = static_cast<size_t>(std::max<uint64_t>(
      1, std::min<uint64_t>(threads, total / min_block)));
  s->threads_used = blocks;
  if (total == 0) return Status::OK();

  // Page-aligned stride chunks: each block samples the whole sorted stream,
  // so every block sees its share of the strong early eliminators and local
  // skylines stay near the global skyline's size (contiguous range blocks
  // degenerate on anti-correlated data: later ranges, missing the early
  // eliminators, keep nearly everything).
  const uint64_t per_page = std::max<size_t>(1, RecordsPerPage(width));
  const uint64_t chunk_rows =
      options.chunk_rows > 0
          ? options.chunk_rows
          : per_page * ParallelSfsOptions::kDefaultChunkPages;

  // Fit the partition scheme before spinning up workers (grid/angular read
  // a deterministic row sample; stride reads nothing). A single block
  // needs no scheme: the chunk loop covers the whole stream.
  std::unique_ptr<PartitionScheme> scheme;
  if (blocks > 1) {
    PartitionSchemeOptions popts;
    popts.kind = options.partition;
    popts.stride_chunk_rows = chunk_rows;
    Result<std::unique_ptr<PartitionScheme>> fitted =
        MakePartitionScheme(env, sorted_path, spec, blocks, popts);
    SKYLINE_RETURN_IF_ERROR(fitted.status());
    scheme = std::move(fitted).value();
    s->partition_scheme = scheme->name();
  }

  const bool cascade =
      options.merge_mode == ParallelMergeMode::kFilteredCascade;
  const bool columnar = DominanceIndex(&spec).columnar();
  const size_t rep_count =
      cascade && blocks > 1 ? options.representatives : 0;

  ThreadPool pool(std::min(threads, blocks));

  // All merge-side indexes (level-0 partitions, representative pool, and
  // every cascade level) share one dictionary set — a probe encoded
  // against one index is tested against others, which is only sound when
  // all of them code through the same dictionary. Index builds run on this
  // thread only (Encode is single-writer) in deterministic order; the
  // merge's parallel probes go through the const Find path.
  auto merge_dicts = std::make_shared<SpecDictionaries>(&spec);

  Stopwatch scan_timer;
  const ThreadPool::BusyTotals scan_busy0 = pool.Totals();
  TraceSpan scan_span(ctx.trace, "block-scan");
  std::vector<std::future<BlockResult>> futures;
  futures.reserve(blocks);
  const PartitionScheme* scheme_ptr = scheme.get();
  for (size_t k = 0; k < blocks; ++k) {
    futures.push_back(pool.Submit([env, &sorted_path, &spec, &options, &ctx,
                                   total, chunk_rows, blocks, k, scheme_ptr,
                                   rep_count]() {
      // Worker-side span: these are the only events recorded off the
      // submitting thread, so an exported trace shows the per-block scans
      // on their own timeline rows.
      TraceSpan block_span(ctx.trace, "filter-block",
                           static_cast<int64_t>(k));
      return FilterBlock(env, sorted_path, spec, options, ctx, total,
                         chunk_rows, blocks, k, scheme_ptr, rep_count);
    }));
  }
  // Collect in partition order. In cascade mode each partition's level-0
  // candidate index is built the moment its scan lands — merge-side work
  // overlapping the still-running later scans; builds that complete before
  // the last scan are charged to scan_merge_overlap_seconds.
  std::vector<BlockResult> results;
  results.reserve(blocks);
  std::vector<std::unique_ptr<DominanceIndex>> eager_indexes(blocks);
  const bool eager_build = cascade && columnar && blocks > 1;
  for (size_t k = 0; k < blocks; ++k) {
    BlockResult block = futures[k].get();
    s->window_comparisons += block.comparisons;
    s->batch_comparisons += block.batch_comparisons;
    s->window_blocks_pruned += block.blocks_pruned;
    s->dict_probe_hits += block.dict_hits;
    s->passes = std::max<uint64_t>(s->passes, block.passes);
    if (eager_build && block.status.ok() && !block.pos.empty()) {
      Stopwatch build_timer;
      eager_indexes[k] = BuildIndex(spec, merge_dicts, block.rows.data(),
                                    block.pos.size(), width);
      if (k + 1 < blocks) {
        s->scan_merge_overlap_seconds += build_timer.ElapsedSeconds();
      }
    }
    results.push_back(std::move(block));
  }
  s->block_scan_seconds = scan_timer.ElapsedSeconds();
  const ThreadPool::BusyTotals scan_busy1 = pool.Totals();
  if (s->block_scan_seconds > 0) {
    s->scan_avg_busy_workers =
        static_cast<double>(scan_busy1.busy_nanos - scan_busy0.busy_nanos) /
        1e9 / s->block_scan_seconds;
  }
  scan_span.End();
  for (const BlockResult& block : results) {
    SKYLINE_RETURN_IF_ERROR(block.status);
  }

  size_t candidate_count = 0;
  for (const BlockResult& block : results) candidate_count += block.pos.size();
  if (blocks > 1) s->merge_candidates = candidate_count;

  // Merge phase: a candidate is a global skyline tuple iff no other block's
  // local survivor dominates it (its own block already resolved intra-block
  // dominance). This is sound by transitivity: any eliminated dominator of
  // a candidate is itself dominated by some locally-surviving tuple, which
  // then dominates the candidate too; and it is complete because local
  // skylines are supersets of the global skyline's restriction. Every
  // candidate is testable independently — the whole phase parallelizes.
  Stopwatch merge_timer;
  TraceSpan merge_span(ctx.trace, "block-merge");
  const ThreadPool::BusyTotals merge_busy0 = pool.Totals();
  std::atomic<bool> cancel_requested{false};
  const bool poll_cancel = ctx.has_cancel_hook();
  const bool has_diff = spec.has_diff();
  std::atomic<uint64_t> merge_comparisons{0};
  std::atomic<uint64_t> merge_blocks_pruned{0};
  std::atomic<uint64_t> merge_batch_comparisons{0};
  std::atomic<uint64_t> representative_prunes{0};

  auto finish_merge_stats = [&]() {
    s->block_merge_seconds += merge_timer.ElapsedSeconds();
    const ThreadPool::BusyTotals merge_busy1 = pool.Totals();
    if (s->block_merge_seconds > 0) {
      s->merge_avg_busy_workers =
          static_cast<double>(merge_busy1.busy_nanos - merge_busy0.busy_nanos) /
          1e9 / s->block_merge_seconds;
    }
    s->merge_comparisons = merge_comparisons.load();
    s->window_comparisons += s->merge_comparisons;
    s->batch_comparisons += merge_batch_comparisons.load();
    s->merge_blocks_pruned = merge_blocks_pruned.load();
    s->representative_prunes = representative_prunes.load();
    s->dict_probe_hits += merge_dicts->TotalProbeHits();
    s->dominance_kernel = columnar ? ActiveDominanceKernel().name : "row";
  };

  if (cascade && blocks > 1 && candidate_count > 0) {
    // ---- Filtered cascade ----
    // The pooled representatives are copied before the candidate arrays
    // move into the cascade lists (rep_indices index the original arrays).
    CascadeList reps;
    if (rep_count > 0) {
      std::vector<std::pair<uint64_t, const char*>> pool_rows;
      for (const BlockResult& block : results) {
        for (uint32_t idx : block.rep_indices) {
          pool_rows.emplace_back(block.pos[idx],
                                 block.rows.data() + idx * width);
        }
      }
      std::sort(pool_rows.begin(), pool_rows.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      reps.rows.reserve(pool_rows.size() * width);
      reps.pos.reserve(pool_rows.size());
      for (const auto& [rep_pos, row] : pool_rows) {
        reps.rows.insert(reps.rows.end(), row, row + width);
        reps.pos.push_back(rep_pos);
      }
      // Re-select the pooled rows down to the global top-K: every
      // candidate probes the whole pool, so the pool's size is a direct
      // per-candidate cost while its kill count saturates quickly.
      const size_t cap = options.representative_pool_cap;
      if (cap > 0 && reps.pos.size() > cap) {
        const std::vector<uint32_t> top =
            SelectRepresentatives(spec, reps.rows.data(), reps.pos, cap);
        CascadeList capped;
        capped.rows.reserve(top.size() * width);
        capped.pos.reserve(top.size());
        for (uint32_t idx : top) {
          capped.rows.insert(capped.rows.end(), reps.rows.data() + idx * width,
                             reps.rows.data() + (idx + 1) * width);
          capped.pos.push_back(reps.pos[idx]);
        }
        reps = std::move(capped);
      }
      if (columnar && !reps.pos.empty()) {
        reps.index = BuildIndex(spec, merge_dicts, reps.rows.data(),
                                reps.pos.size(), width);
      }
    }

    std::vector<CascadeList> lists;
    lists.reserve(blocks);
    for (size_t k = 0; k < blocks; ++k) {
      if (results[k].pos.empty()) continue;
      CascadeList list;
      list.rows = std::move(results[k].rows);
      list.pos = std::move(results[k].pos);
      list.keep.assign(list.pos.size(), 1);
      list.index = std::move(eager_indexes[k]);
      lists.push_back(std::move(list));
    }
    // Pair neighbors in stream order so a pair's position ranges overlap
    // as much as possible — overlap is where eliminations happen.
    std::stable_sort(lists.begin(), lists.end(),
                     [](const CascadeList& a, const CascadeList& b) {
                       return a.pos.front() < b.pos.front();
                     });

    std::vector<size_t> base;
    auto rebase = [&]() {
      base.assign(lists.size() + 1, 0);
      for (size_t li = 0; li < lists.size(); ++li) {
        base[li + 1] = base[li] + lists[li].pos.size();
      }
      return base.back();
    };
    auto locate = [&](size_t flat, size_t* li, size_t* i) {
      *li = std::upper_bound(base.begin(), base.end(), flat) - base.begin() - 1;
      *i = flat - base[*li];
    };
    auto poll = [&](size_t flat) {
      if (!poll_cancel) return false;
      if (cancel_requested.load(std::memory_order_relaxed)) return true;
      if ((flat & 63u) == 0 && ctx.cancelled()) {
        cancel_requested.store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    };
    auto grain_for = [&](size_t n) {
      return std::max<size_t>(16, n / (8 * pool.num_threads() + 1));
    };

    // Representative pre-prune: every candidate against the pooled
    // representatives of ALL partitions, before any block-to-block
    // probing. Own-partition representatives are harmless (local skylines
    // are pairwise non-dominating) and the lower_bound position limit
    // excludes the candidate itself.
    if (!reps.pos.empty() && lists.size() > 1) {
      const size_t n = rebase();
      ParallelFor(
          &pool, n,
          [&](size_t flat) {
            if (poll(flat)) return;
            size_t li = 0;
            size_t i = 0;
            locate(flat, &li, &i);
            const char* probe = lists[li].rows.data() + i * width;
            uint64_t tests = 0;
            uint64_t pruned = 0;
            DominanceIndex::Probe keys;
            if (reps.index != nullptr) reps.index->EncodeProbe(probe, &keys);
            if (ListDominates(spec, width, has_diff, reps, keys, probe,
                              lists[li].pos[i], &tests, &pruned)) {
              lists[li].keep[i] = 0;
              representative_prunes.fetch_add(1, std::memory_order_relaxed);
            }
            merge_comparisons.fetch_add(tests, std::memory_order_relaxed);
            merge_blocks_pruned.fetch_add(pruned, std::memory_order_relaxed);
            if (columnar) {
              merge_batch_comparisons.fetch_add(tests,
                                                std::memory_order_relaxed);
            }
          },
          grain_for(n));
      if (cancel_requested.load(std::memory_order_relaxed)) {
        return Status::Cancelled("operation cancelled by ExecContext hook");
      }
      // Compact before the first (largest) cascade level so its probes
      // scan survivor-only lists instead of rediscovering the pool's
      // kills. Sound for the same reason as inter-level compaction: every
      // dropped entry has a dominator that is still present (a
      // representative is itself a local-skyline candidate in some list).
      if (representative_prunes.load(std::memory_order_relaxed) > 0) {
        for (CascadeList& list : lists) {
          CompactList(spec, width, columnar, merge_dicts, &list);
        }
        lists.erase(
            std::remove_if(lists.begin(), lists.end(),
                           [](const CascadeList& l) { return l.pos.empty(); }),
            lists.end());
      }
    }

    // Cascade levels: lists merge pairwise (neighbors in stream order);
    // each candidate probes only its pair partner, and each level halves
    // the list count. Within a level every candidate tests independently
    // — keep bits are written only by the candidate's own iteration —
    // and freshly-dominated entries remain sound eliminators for the rest
    // of the level, so no synchronization beyond the level barrier is
    // needed.
    uint64_t cascade_levels = 0;
    while (lists.size() > 1) {
      ++cascade_levels;
      const size_t n = rebase();
      const size_t nlists = lists.size();
      ParallelFor(
          &pool, n,
          [&](size_t flat) {
            if (poll(flat)) return;
            size_t li = 0;
            size_t i = 0;
            locate(flat, &li, &i);
            if (!lists[li].keep[i]) return;
            const size_t partner = li ^ 1;
            if (partner >= nlists) return;  // unpaired tail passes through
            const CascadeList& other = lists[partner];
            const char* probe = lists[li].rows.data() + i * width;
            uint64_t tests = 0;
            uint64_t pruned = 0;
            DominanceIndex::Probe keys;
            if (other.index != nullptr) other.index->EncodeProbe(probe, &keys);
            if (ListDominates(spec, width, has_diff, other, keys, probe,
                              lists[li].pos[i], &tests, &pruned)) {
              lists[li].keep[i] = 0;
            }
            merge_comparisons.fetch_add(tests, std::memory_order_relaxed);
            merge_blocks_pruned.fetch_add(pruned, std::memory_order_relaxed);
            if (columnar) {
              merge_batch_comparisons.fetch_add(tests,
                                                std::memory_order_relaxed);
            }
          },
          grain_for(n));
      if (cancel_requested.load(std::memory_order_relaxed)) {
        return Status::Cancelled("operation cancelled by ExecContext hook");
      }
      std::vector<CascadeList> next;
      next.reserve((nlists + 1) / 2);
      for (size_t p = 0; p + 1 < nlists; p += 2) {
        CascadeList merged = CompactPair(spec, width, columnar, merge_dicts,
                                         lists[p], lists[p + 1]);
        if (!merged.pos.empty()) next.push_back(std::move(merged));
      }
      if (nlists & 1) {
        CascadeList tail = std::move(lists.back());
        if (!tail.pos.empty()) next.push_back(std::move(tail));
      }
      lists = std::move(next);
    }
    s->cascade_levels = cascade_levels;

    // The final list is position-sorted by construction — the emitted
    // stream is byte-identical to the all-pairs k-way merge's.
    if (!lists.empty()) {
      const CascadeList& last = lists.front();
      for (size_t i = 0; i < last.pos.size(); ++i) {
        if (!last.keep[i]) continue;
        SKYLINE_RETURN_IF_ERROR(sink(last.rows.data() + i * width));
        ++s->output_rows;
      }
    }
    finish_merge_stats();
    return Status::OK();
  }

  // ---- All-pairs merge (baseline) and the trivial single-block case ----
  std::vector<std::vector<uint8_t>> keep(blocks);
  std::vector<size_t> base(blocks + 1, 0);
  for (size_t k = 0; k < blocks; ++k) {
    keep[k].assign(results[k].pos.size(), 1);
    base[k + 1] = base[k] + results[k].pos.size();
  }

  if (blocks > 1 && candidate_count > 0) {
    // Columnar mirrors of every block's candidates: the merge probes reuse
    // the same zone-map pruning + batched kernel as the window scan, which
    // cuts the all-pairs merge from one CompareDominance per candidate
    // pair to one kernel call per unpruned 64-candidate block.
    std::vector<DominanceIndex> indexes;
    if (columnar) {
      indexes.reserve(blocks);
      for (size_t k = 0; k < blocks; ++k) {
        DominanceIndex index(&spec, nullptr, merge_dicts);
        index.Reserve(results[k].pos.size());
        for (size_t i = 0; i < results[k].pos.size(); ++i) {
          index.Append(results[k].rows.data() + i * width);
        }
        indexes.push_back(std::move(index));
      }
    }
    const size_t grain = std::max<size_t>(
        16, candidate_count / (8 * pool.num_threads() + 1));
    ParallelFor(
        &pool, candidate_count,
        [&](size_t flat) {
          if (poll_cancel) {
            if (cancel_requested.load(std::memory_order_relaxed)) return;
            if ((flat & 511u) == 0 && ctx.cancelled()) {
              cancel_requested.store(true, std::memory_order_relaxed);
              return;
            }
          }
          const size_t k =
              std::upper_bound(base.begin(), base.end(), flat) -
              base.begin() - 1;
          const size_t i = flat - base[k];
          const char* probe = results[k].rows.data() + i * width;
          const uint64_t probe_pos = results[k].pos[i];
          uint64_t tests = 0;
          uint64_t pruned = 0;
          DominanceIndex::Probe keys;
          if (columnar) indexes[k].EncodeProbe(probe, &keys);
          for (size_t j = 0; j < blocks && keep[k][i]; ++j) {
            if (j == k) continue;
            const BlockResult& other = results[j];
            // Only earlier-position tuples can dominate (the sort order is
            // topological w.r.t. dominance); pos is ascending per block.
            const size_t limit =
                std::upper_bound(other.pos.begin(), other.pos.end(),
                                 probe_pos) -
                other.pos.begin();
            if (columnar) {
              // DIFF equality is folded into the kernel masks, so one loop
              // serves both spec shapes.
              const size_t index_blocks = DominanceIndex::BlockCountFor(limit);
              for (size_t b = 0; b < index_blocks; ++b) {
                if (indexes[j].CanPruneBlock(keys, b)) {
                  ++pruned;
                  continue;
                }
                tests += indexes[j].BlockEntries(b, limit);
                if (indexes[j].TestBlock(keys, b, limit).dominates != 0) {
                  keep[k][i] = 0;
                  break;
                }
              }
            } else if (has_diff) {
              // Position order keeps DIFF groups contiguous, so the
              // candidate's group — the only comparable entries — is
              // exactly the tail of the earlier-position prefix.
              for (size_t m = limit; m-- > 0;) {
                const char* entry = other.rows.data() + m * width;
                if (!spec.SameDiffGroup(entry, probe)) break;
                ++tests;
                if (CompareDominance(spec, entry, probe) ==
                    DomResult::kFirstDominates) {
                  keep[k][i] = 0;
                  break;
                }
              }
            } else {
              // Forward scan: the earliest (best-scoring) tuples are the
              // strongest eliminators — the same heuristic that makes the
              // sequential window effective.
              for (size_t m = 0; m < limit; ++m) {
                ++tests;
                if (CompareDominance(spec, other.rows.data() + m * width,
                                     probe) == DomResult::kFirstDominates) {
                  keep[k][i] = 0;
                  break;
                }
              }
            }
          }
          merge_comparisons.fetch_add(tests, std::memory_order_relaxed);
          merge_blocks_pruned.fetch_add(pruned, std::memory_order_relaxed);
          if (columnar) {
            merge_batch_comparisons.fetch_add(tests,
                                              std::memory_order_relaxed);
          }
        },
        grain);
  }

  if (cancel_requested.load(std::memory_order_relaxed)) {
    return Status::Cancelled("operation cancelled by ExecContext hook");
  }

  // Emit survivors in global position order (k-way merge over the blocks'
  // position-sorted candidate lists).
  std::vector<size_t> cursor(blocks, 0);
  for (;;) {
    size_t best = blocks;
    uint64_t best_pos = 0;
    for (size_t k = 0; k < blocks; ++k) {
      while (cursor[k] < results[k].pos.size() && !keep[k][cursor[k]]) {
        ++cursor[k];
      }
      if (cursor[k] >= results[k].pos.size()) continue;
      if (best == blocks || results[k].pos[cursor[k]] < best_pos) {
        best = k;
        best_pos = results[k].pos[cursor[k]];
      }
    }
    if (best == blocks) break;
    SKYLINE_RETURN_IF_ERROR(
        sink(results[best].rows.data() + cursor[best] * width));
    ++s->output_rows;
    ++cursor[best];
  }
  finish_merge_stats();
  return Status::OK();
}

}  // namespace skyline
