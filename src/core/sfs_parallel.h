#ifndef SKYLINE_CORE_SFS_PARALLEL_H_
#define SKYLINE_CORE_SFS_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/partition.h"
#include "core/run_stats.h"
#include "core/skyline_spec.h"
#include "env/env.h"

namespace skyline {

/// How local skylines are combined into the global skyline.
enum class ParallelMergeMode {
  /// Filtered cascade (the default): candidates are pre-pruned against the
  /// pooled cross-partition representatives, then partitions merge
  /// pairwise in sorted-position order — each candidate is probed only
  /// against blocks that can still dominate it (dominator-side zone-map
  /// corner test first, SIMD batch probe second), and each level halves
  /// the list count until one survivor list remains.
  kFilteredCascade,
  /// Every candidate against every other partition's local skyline — the
  /// v1 merge, kept as the measured baseline for the cascade's
  /// comparison-count savings.
  kAllPairs,
};

/// Options for the block-parallel SFS filter.
struct ParallelSfsOptions {
  /// Buffer pages for each worker's filter window (same meaning as
  /// SfsOptions::window_pages; the budget is per worker).
  size_t window_pages = 500;
  /// Store projected rows in the windows, with duplicate elimination.
  bool use_projection = true;
  /// Worker threads; 0 means one per hardware thread. Callers may pass
  /// more workers than the machine has to *simulate* that many shards
  /// (the CI harness validating pruning ratios on small hosts does);
  /// production entry points clamp before getting here.
  size_t threads = 0;
  /// Blocks smaller than this are not worth a task; the block count is
  /// reduced until every block has at least this many rows.
  uint64_t min_block_rows = 4096;
  /// Rows per stride chunk (chunks are dealt round-robin to the blocks).
  /// 0 picks kDefaultChunkPages pages' worth — page-aligned so no worker
  /// reads a page for another worker's rows.
  uint64_t chunk_rows = 0;
  static constexpr uint64_t kDefaultChunkPages = 4;
  /// How rows of the sorted stream are assigned to partitions. Every
  /// scheme yields the same skyline bytes; they differ in balance and in
  /// how much cross-partition merge work survives the local filters.
  PartitionSchemeKind partition = PartitionSchemeKind::kStride;
  /// How local skylines merge into the global skyline.
  ParallelMergeMode merge_mode = ParallelMergeMode::kFilteredCascade;
  /// Representatives each partition broadcasts for the cross-partition
  /// pre-prune (filtered-cascade mode only). 0 disables the pre-prune.
  size_t representatives = 16;
  /// Upper bound on the *pooled* representative set. Broadcasting from
  /// many partitions inflates the pool (partitions x representatives) and
  /// every candidate probes the whole pool, so past a point the pool costs
  /// more than it saves; re-selecting the pooled rows down to a small
  /// global top-K keeps the strongest eliminators (kill counts barely
  /// move) while capping the per-candidate probe cost. 0 disables the cap.
  size_t representative_pool_cap = 32;
  /// Execution context (trace sink for the "block-scan" / "block-merge"
  /// spans, cancellation hook polled by the workers and the merge
  /// phases). Null means no sinks and no cancellation; thread selection
  /// stays with `threads` above.
  const ExecContext* exec = nullptr;
};

/// Block-parallel SFS filter over a presorted heap file.
///
/// The paper's presort guarantees (Theorems 6/7) that a tuple can only be
/// dominated by tuples *earlier* in the sorted stream. The configured
/// PartitionScheme assigns every row to one of P partitions; a partition's
/// rows form a subsequence of the sorted stream, so each is itself
/// monotone-sorted (with DIFF groups contiguous) and independently
/// filterable with the standard window machinery, whatever the scheme.
/// Stride partitions are read with page-aligned seeks; value-based
/// partitions (grid/angular) scan the stream and keep their rows.
///
/// Block k's local skyline is a superset of the global skyline's
/// restriction to block k. The merge removes the candidates some other
/// partition dominates: in filtered-cascade mode via the representative
/// pre-prune plus pairwise position-ordered merges (see ParallelMergeMode),
/// in all-pairs mode by probing every other block. Either way survivors
/// are exactly the global skyline, emitted in global sorted order —
/// byte-identical across schemes, merge modes, and thread counts (and to
/// the sequential filter whenever it completes in one pass).
///
/// `sink` receives each confirmed skyline row (full schema() row) and may
/// not be called again after returning an error. `stats` may be null.
Status ParallelSfsFilter(Env* env, const std::string& sorted_path,
                         const SkylineSpec& spec,
                         const ParallelSfsOptions& options,
                         const std::function<Status(const char* row)>& sink,
                         SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_SFS_PARALLEL_H_
