#ifndef SKYLINE_CORE_SFS_PARALLEL_H_
#define SKYLINE_CORE_SFS_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/run_stats.h"
#include "core/skyline_spec.h"
#include "env/env.h"

namespace skyline {

/// Options for the block-parallel SFS filter.
struct ParallelSfsOptions {
  /// Buffer pages for each worker's filter window (same meaning as
  /// SfsOptions::window_pages; the budget is per worker).
  size_t window_pages = 500;
  /// Store projected rows in the windows, with duplicate elimination.
  bool use_projection = true;
  /// Worker threads; 0 means one per hardware thread.
  size_t threads = 0;
  /// Blocks smaller than this are not worth a task; the block count is
  /// reduced until every block has at least this many rows.
  uint64_t min_block_rows = 4096;
  /// Rows per stride chunk (chunks are dealt round-robin to the blocks).
  /// 0 picks kDefaultChunkPages pages' worth — page-aligned so no worker
  /// reads a page for another worker's rows.
  uint64_t chunk_rows = 0;
  static constexpr uint64_t kDefaultChunkPages = 4;
  /// Execution context (trace sink for the "block-scan" / "block-merge"
  /// spans, cancellation hook polled by the workers). Null uses
  /// DefaultExecContext(); thread selection stays with `threads` above.
  const ExecContext* exec = nullptr;
};

/// Block-parallel SFS filter over a presorted heap file.
///
/// The paper's presort guarantees (Theorems 6/7) that a tuple can only be
/// dominated by tuples *earlier* in the sorted stream. Each of the P
/// blocks samples the stream in page-aligned round-robin chunks; a sample
/// is a subsequence of the sorted stream, so it is itself monotone-sorted
/// and independently filterable with the standard window machinery. The
/// stride layout (rather than P contiguous ranges) matters for balance:
/// every block sees its share of the strong early eliminators, keeping
/// each local skyline near the global skyline's size, where the trailing
/// contiguous range — all mediocre tuples whose dominators sit in earlier
/// ranges — can degenerate to keeping nearly everything (dramatically so
/// on anti-correlated data).
///
/// Block k's local skyline is a superset of the global skyline's
/// restriction to block k. The merge phase tests each candidate against
/// the *other* blocks' local skylines: a candidate survives iff none
/// dominates it. That test is sound by transitivity — if any input tuple
/// dominates the candidate, then some locally-surviving tuple does too
/// (follow eliminator chains upward; they terminate at a local survivor) —
/// and every candidate is testable independently, so the merge
/// parallelizes as well. Survivors are exactly the global skyline and are
/// emitted in global sorted order via a k-way position merge.
///
/// Emits exactly the rows sequential SFS emits, in the same (globally
/// sorted) order, including DIFF-group handling and projection/dedup
/// semantics; output is byte-identical to the sequential filter whenever
/// the sequential filter completes in one pass. (If a worker's window
/// overflows, the worker runs local multi-pass rounds in memory and
/// restores position order afterwards, so the parallel output is always in
/// sorted order — sequential SFS under overflow emits later passes after
/// earlier ones instead.)
///
/// `sink` receives each confirmed skyline row (full schema() row) and may
/// not be called again after returning an error. `stats` may be null.
Status ParallelSfsFilter(Env* env, const std::string& sorted_path,
                         const SkylineSpec& spec,
                         const ParallelSfsOptions& options,
                         const std::function<Status(const char* row)>& sink,
                         SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_SFS_PARALLEL_H_
