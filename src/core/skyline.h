#ifndef SKYLINE_CORE_SKYLINE_H_
#define SKYLINE_CORE_SKYLINE_H_

/// Umbrella header: the full public API of the skyline library.
///
/// Core algorithm (the paper's contribution):
///  - SkylineSpec / Directive  — the `SKYLINE OF a1 MAX, ...` specification
///  - ComputeSkylineSfs / SfsIterator — Sort-Filter-Skyline with entropy
///    presort, projection, diff groups, pipelined output
///  - ComputeSkylineBnl — the block-nested-loops baseline
///  - ComputeStrataSfs / LabelStrataIterative — skyline strata
///  - DimensionalReduction — small-domain pre-reduction
///  - NaiveSkyline* / DivideConquerSkyline* — reference algorithms
///  - ExpectedSkylineSize / ExtrapolateSkylineSize / EstimateSfsCost —
///    cardinality estimation and optimizer costing
///
/// Section 6 extensions: ComputeSkylineLess (sort-phase elimination),
/// ComputeSkyline2D / ComputeSkyline3D (special-case scans), ComputeWinnow
/// (arbitrary strict-partial-order preferences), SkylineMaintainer
/// (incremental updates), RankEntropyOrdering (histogram-rank presort).
///
/// Substrate: Env (env/env.h), heap files (storage/), tables, generators,
/// CSV and sidecar-metadata I/O, histograms (relation/), external sort
/// (sort/), Volcano operators with the Query builder (exec/), and the
/// Figure 3 SQL dialect (sql/).

#include "common/exec_context.h"
#include "core/bnl.h"
#include "core/cardinality.h"
#include "core/compute_skyline.h"
#include "core/cost_model.h"
#include "core/dim_reduce.h"
#include "core/divide_conquer.h"
#include "core/dominance.h"
#include "core/less.h"
#include "core/maintenance.h"
#include "core/naive.h"
#include "core/run_report.h"
#include "core/run_stats.h"
#include "core/scoring.h"
#include "core/sfs.h"
#include "core/skyline_spec.h"
#include "core/special2d.h"
#include "core/special3d.h"
#include "core/strata.h"
#include "core/window.h"
#include "core/winnow.h"
#include "relation/csv.h"
#include "relation/generator.h"
#include "relation/histogram.h"
#include "relation/table.h"
#include "relation/table_io.h"

#endif  // SKYLINE_CORE_SKYLINE_H_
