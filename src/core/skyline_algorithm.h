#ifndef SKYLINE_CORE_SKYLINE_ALGORITHM_H_
#define SKYLINE_CORE_SKYLINE_ALGORITHM_H_

namespace skyline {

/// Which algorithm evaluates a skyline computation. Shared by the unified
/// ComputeSkyline dispatch (core/compute_skyline.h), the Volcano skyline
/// operator (exec/skyline_op.h), and the SQL executor's SqlOptions.
enum class SkylineAlgorithm {
  kSfs,
  kBnl,
  /// Pick automatically: the 2-dim scan or 3-dim staircase sweep when the
  /// spec has exactly that many MIN/MAX criteria (no window needed, O(n)
  /// dominance work), otherwise SFS. What a planner would do given the
  /// paper's Section 6 note that low-dimensional special cases "could be
  /// exploited".
  kAuto,
};

/// Stable lowercase name ("sfs", "bnl", "auto") for reports and plans.
inline const char* SkylineAlgorithmName(SkylineAlgorithm algorithm) {
  switch (algorithm) {
    case SkylineAlgorithm::kSfs:
      return "sfs";
    case SkylineAlgorithm::kBnl:
      return "bnl";
    case SkylineAlgorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

}  // namespace skyline

#endif  // SKYLINE_CORE_SKYLINE_ALGORITHM_H_
