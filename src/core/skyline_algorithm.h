#ifndef SKYLINE_CORE_SKYLINE_ALGORITHM_H_
#define SKYLINE_CORE_SKYLINE_ALGORITHM_H_

namespace skyline {

/// Which algorithm evaluates a skyline computation. Shared by the unified
/// ComputeSkyline dispatch (core/compute_skyline.h), the Volcano skyline
/// operator (exec/skyline_op.h), and the SQL executor's SqlOptions.
enum class SkylineAlgorithm {
  kSfs,
  kBnl,
  /// Branch-and-bound over the persistent z-order block index
  /// (core/bbs.h). Sub-linear when the skyline is small; requires the
  /// index sidecar and a DIFF-free columnar-capable spec, else the
  /// dispatch degrades to SFS.
  kBbs,
  /// Pick automatically: the 2-dim scan or 3-dim staircase sweep when the
  /// spec has exactly that many MIN/MAX criteria (no window needed, O(n)
  /// dominance work); BBS when an index is available and the cost model
  /// estimates a small skyline (core/cost_model.h); otherwise SFS. What a
  /// planner would do given the paper's Section 6 note that
  /// low-dimensional special cases "could be exploited".
  kAuto,
};

/// Stable lowercase name ("sfs", "bnl", "bbs", "auto") for reports and
/// plans.
inline const char* SkylineAlgorithmName(SkylineAlgorithm algorithm) {
  switch (algorithm) {
    case SkylineAlgorithm::kSfs:
      return "sfs";
    case SkylineAlgorithm::kBnl:
      return "bnl";
    case SkylineAlgorithm::kBbs:
      return "bbs";
    case SkylineAlgorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

}  // namespace skyline

#endif  // SKYLINE_CORE_SKYLINE_ALGORITHM_H_
