#include "core/skyline_constraint.h"

#include "core/canonical_key.h"

namespace skyline {

bool SkylineConstraint::Matches(const Schema& schema, const char* row) const {
  for (const auto& b : bounds) {
    const int64_t key =
        CanonicalKeyOf(schema.column(b.column).type, row + schema.offset(b.column));
    if (key < b.lo || key > b.hi) return false;
  }
  return true;
}

}  // namespace skyline
