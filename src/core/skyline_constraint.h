#ifndef SKYLINE_CORE_SKYLINE_CONSTRAINT_H_
#define SKYLINE_CORE_SKYLINE_CONSTRAINT_H_

#include <cstdint>
#include <vector>

#include "relation/schema.h"

namespace skyline {

/// A conjunction of per-column range bounds — the constrained-skyline box
/// of BBS-style literature: the skyline is computed over only the rows
/// whose listed numeric columns fall inside every [lo, hi] interval.
/// Bounds live in the *canonical ascending key space* (raw int32/int64,
/// float64 total-order bits), the same space as the zone maps and the
/// block index corners, so the BBS scan can intersect a bound against a
/// node corner with two integer compares before enqueueing the subtree.
///
/// The SQL binder builds these from pushable numeric WHERE range
/// predicates; an empty lo>hi interval is a legal way to say "no row
/// matches". Scan-based algorithms apply the box as a row filter; the
/// semantics are identical either way (skyline *of the filtered set*).
struct SkylineConstraint {
  struct Bound {
    size_t column = 0;  // schema column index (numeric)
    int64_t lo = INT64_MIN;
    int64_t hi = INT64_MAX;
  };

  std::vector<Bound> bounds;

  bool empty() const { return bounds.empty(); }

  /// True iff the row satisfies every bound.
  bool Matches(const Schema& schema, const char* row) const;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_SKYLINE_CONSTRAINT_H_
