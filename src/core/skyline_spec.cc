#include "core/skyline_spec.h"

#include <cstring>
#include <set>

#include "common/logging.h"

namespace skyline {

SkylineSpec::SkylineSpec(const SkylineSpec& other)
    : schema_(other.schema_),
      criteria_(other.criteria_),
      diff_columns_(other.diff_columns_),
      value_columns_(other.value_columns_),
      dom_diff_columns_(other.dom_diff_columns_),
      dom_value_columns_(other.dom_value_columns_),
      values_all_int32_(other.values_all_int32_),
      projected_schema_(other.projected_schema_),
      projected_spec_(other.projected_spec_
                          ? std::make_unique<SkylineSpec>(*other.projected_spec_)
                          : nullptr) {}

SkylineSpec& SkylineSpec::operator=(const SkylineSpec& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  criteria_ = other.criteria_;
  diff_columns_ = other.diff_columns_;
  value_columns_ = other.value_columns_;
  dom_diff_columns_ = other.dom_diff_columns_;
  dom_value_columns_ = other.dom_value_columns_;
  values_all_int32_ = other.values_all_int32_;
  projected_schema_ = other.projected_schema_;
  projected_spec_ = other.projected_spec_
                        ? std::make_unique<SkylineSpec>(*other.projected_spec_)
                        : nullptr;
  return *this;
}

Result<SkylineSpec> SkylineSpec::Make(const Schema& schema,
                                      std::vector<Criterion> criteria) {
  return MakeImpl(schema, std::move(criteria), /*build_projection=*/true);
}

Result<SkylineSpec> SkylineSpec::MakeImpl(const Schema& schema,
                                          std::vector<Criterion> criteria,
                                          bool build_projection) {
  if (criteria.empty()) {
    return Status::InvalidArgument("skyline spec needs at least one criterion");
  }
  SkylineSpec spec;
  spec.schema_ = schema;
  std::set<size_t> seen;
  for (const auto& criterion : criteria) {
    SKYLINE_ASSIGN_OR_RETURN(size_t col,
                             schema.ColumnIndex(criterion.column));
    if (!seen.insert(col).second) {
      return Status::InvalidArgument("column " + criterion.column +
                                     " appears twice in skyline spec");
    }
    if (criterion.directive == Directive::kDiff) {
      spec.diff_columns_.push_back(col);
    } else {
      if (!schema.IsNumeric(col)) {
        return Status::InvalidArgument(
            "MIN/MAX skyline column " + criterion.column +
            " must be numeric (int32, int64, or float64)");
      }
      spec.value_columns_.push_back(
          {col, criterion.directive == Directive::kMax});
    }
  }
  if (spec.value_columns_.empty()) {
    return Status::InvalidArgument(
        "skyline spec needs at least one MIN/MAX criterion");
  }
  spec.criteria_ = std::move(criteria);

  // Offset-resolved criterion layouts for the hot dominance comparator.
  auto resolve = [&schema](size_t col, bool max) {
    DomColumn dc;
    dc.offset = static_cast<uint32_t>(schema.offset(col));
    dc.length = static_cast<uint32_t>(schema.column_width(col));
    dc.type = schema.column(col).type;
    dc.max = max;
    return dc;
  };
  for (size_t col : spec.diff_columns_) {
    spec.dom_diff_columns_.push_back(resolve(col, /*max=*/true));
  }
  spec.values_all_int32_ = true;
  for (const auto& vc : spec.value_columns_) {
    spec.dom_value_columns_.push_back(resolve(vc.column, vc.max));
    if (schema.column(vc.column).type != ColumnType::kInt32) {
      spec.values_all_int32_ = false;
    }
  }

  // Projected layout: diff columns first, then value columns, preserving
  // each list's order. Column names survive so the projected schema is
  // self-describing.
  std::vector<ColumnDef> proj_columns;
  std::vector<Criterion> proj_criteria;
  for (size_t col : spec.diff_columns_) {
    proj_columns.push_back(schema.column(col));
    proj_criteria.push_back({schema.column(col).name, Directive::kDiff});
  }
  for (const auto& vc : spec.value_columns_) {
    proj_columns.push_back(schema.column(vc.column));
    proj_criteria.push_back({schema.column(vc.column).name,
                             vc.max ? Directive::kMax : Directive::kMin});
  }
  SKYLINE_ASSIGN_OR_RETURN(spec.projected_schema_,
                           Schema::Make(std::move(proj_columns)));
  if (build_projection) {
    // The projection of a projection is the identity, so the inner spec is
    // built without its own projection (projected_spec() then returns
    // *this for it).
    SKYLINE_ASSIGN_OR_RETURN(
        SkylineSpec proj,
        MakeImpl(spec.projected_schema_, std::move(proj_criteria),
                 /*build_projection=*/false));
    spec.projected_spec_ = std::make_unique<SkylineSpec>(std::move(proj));
  }
  return spec;
}

void SkylineSpec::ProjectRow(const char* full_row, char* out) const {
  size_t out_offset = 0;
  for (size_t col : diff_columns_) {
    const size_t width = schema_.column_width(col);
    std::memcpy(out + out_offset, full_row + schema_.offset(col), width);
    out_offset += width;
  }
  for (const auto& vc : value_columns_) {
    const size_t width = schema_.column_width(vc.column);
    std::memcpy(out + out_offset, full_row + schema_.offset(vc.column), width);
    out_offset += width;
  }
  SKYLINE_CHECK_EQ(out_offset, projected_schema_.row_width());
}

bool SkylineSpec::SameDiffGroup(const char* a, const char* b) const {
  for (size_t col : diff_columns_) {
    if (schema_.CompareColumn(col, a, b) != 0) return false;
  }
  return true;
}

std::string SkylineSpec::ToString() const {
  std::string out = "skyline of ";
  for (size_t i = 0; i < criteria_.size(); ++i) {
    if (i > 0) out += ", ";
    out += criteria_[i].column;
    switch (criteria_[i].directive) {
      case Directive::kMax:
        out += " max";
        break;
      case Directive::kMin:
        out += " min";
        break;
      case Directive::kDiff:
        out += " diff";
        break;
    }
  }
  return out;
}

}  // namespace skyline
