#ifndef SKYLINE_CORE_SKYLINE_SPEC_H_
#define SKYLINE_CORE_SKYLINE_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"

namespace skyline {

/// Per-attribute skyline directive, mirroring the paper's proposed
/// `SKYLINE OF a1 [MIN|MAX|DIFF], ...` SQL clause.
enum class Directive {
  /// Prefer larger values (the paper's default).
  kMax,
  /// Prefer smaller values.
  kMin,
  /// Partition: tuples with different values are mutually incomparable;
  /// the skyline is computed within each group.
  kDiff,
};

/// One criterion of a skyline query, named by column.
struct Criterion {
  std::string column;
  Directive directive = Directive::kMax;
};

/// A validated skyline query specification bound to a schema. Holds a copy
/// of the schema so it has no external lifetime requirements.
///
/// Resolved layout: `diff_columns()` lists DIFF attribute indices (in
/// declaration order); `value_columns()` lists the MIN/MAX attribute indices
/// with their directions.
class SkylineSpec {
 public:
  struct ValueColumn {
    size_t column;
    /// True for kMax (larger is better), false for kMin.
    bool max;
  };

  /// Criterion layout resolved to raw byte offsets, precomputed once at
  /// Make() time so the dominance comparator — the hottest function of
  /// every algorithm — touches no per-call schema indirection.
  struct DomColumn {
    uint32_t offset = 0;
    /// Byte length; only consulted for kFixedString comparisons.
    uint32_t length = 0;
    ColumnType type = ColumnType::kInt32;
    /// Value columns only: true when larger is better.
    bool max = true;
  };

  /// Validates and resolves `criteria` against `schema`:
  /// - every column must exist and appear at most once;
  /// - MIN/MAX columns must be numeric;
  /// - at least one MIN/MAX criterion is required.
  static Result<SkylineSpec> Make(const Schema& schema,
                                  std::vector<Criterion> criteria);

  const Schema& schema() const { return schema_; }
  const std::vector<Criterion>& criteria() const { return criteria_; }
  const std::vector<size_t>& diff_columns() const { return diff_columns_; }
  const std::vector<ValueColumn>& value_columns() const {
    return value_columns_;
  }
  size_t num_dimensions() const { return value_columns_.size(); }
  bool has_diff() const { return !diff_columns_.empty(); }

  /// Offset-resolved DIFF and MIN/MAX criterion layouts (same order as
  /// diff_columns() / value_columns()).
  const std::vector<DomColumn>& dom_diff_columns() const {
    return dom_diff_columns_;
  }
  const std::vector<DomColumn>& dom_value_columns() const {
    return dom_value_columns_;
  }
  /// True when every MIN/MAX criterion is an int32 column — the paper's
  /// experimental shape, served by a specialized comparison loop.
  bool values_all_int32() const { return values_all_int32_; }

  /// Schema holding only the skyline attributes (diff columns first, then
  /// value columns) — the paper's projection optimization stores rows in
  /// this reduced layout in the window.
  const Schema& projected_schema() const { return projected_schema_; }

  /// A spec expressing the same criteria over projected_schema() rows.
  /// For a spec that is already a projection, this is the spec itself.
  const SkylineSpec& projected_spec() const {
    return projected_spec_ ? *projected_spec_ : *this;
  }

  /// Copies the skyline attributes of `full_row` into `out`
  /// (projected_schema().row_width() bytes).
  void ProjectRow(const char* full_row, char* out) const;

  /// True if rows `a` and `b` agree on every DIFF column (always true when
  /// the spec has no DIFF criteria). Rows are full schema() rows.
  bool SameDiffGroup(const char* a, const char* b) const;

  /// Human-readable form, e.g. "skyline of S max, price min".
  std::string ToString() const;

  SkylineSpec(const SkylineSpec&);
  SkylineSpec& operator=(const SkylineSpec&);
  SkylineSpec(SkylineSpec&&) = default;
  SkylineSpec& operator=(SkylineSpec&&) = default;

 private:
  SkylineSpec() = default;

  static Result<SkylineSpec> MakeImpl(const Schema& schema,
                                      std::vector<Criterion> criteria,
                                      bool build_projection);

  Schema schema_;
  std::vector<Criterion> criteria_;
  std::vector<size_t> diff_columns_;
  std::vector<ValueColumn> value_columns_;
  std::vector<DomColumn> dom_diff_columns_;
  std::vector<DomColumn> dom_value_columns_;
  bool values_all_int32_ = false;
  Schema projected_schema_;
  /// Spec over the projected layout; null when this spec is itself a
  /// projection (its projection is the identity).
  std::unique_ptr<SkylineSpec> projected_spec_;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_SKYLINE_SPEC_H_
