#include "core/special2d.h"

#include <cstring>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "core/scoring.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"

namespace skyline {

Result<Table> ComputeSkyline2D(const Table& input, const SkylineSpec& spec,
                               const SortOptions& sort_options,
                               const ExecContext& ctx,
                               const std::string& output_path,
                               SkylineRunStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  if (spec.value_columns().size() != 2) {
    return Status::InvalidArgument(
        "ComputeSkyline2D requires exactly two MIN/MAX criteria, got " +
        std::to_string(spec.value_columns().size()));
  }
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;
  *s = SkylineRunStats{};
  s->input_rows = input.row_count();

  Env* env = input.env();
  const Schema& schema = spec.schema();
  const size_t width = schema.row_width();
  TempFileManager temp_files(env, output_path + ".sky2d_tmp");

  Stopwatch sort_timer;
  std::unique_ptr<LexicographicOrdering> ordering =
      MakeNestedSkylineOrdering(spec);
  SKYLINE_ASSIGN_OR_RETURN(
      std::string sorted_path,
      SortHeapFile(env, &temp_files, input.path(), width, *ordering,
                   sort_options, ctx, &s->sort_stats));
  s->sort_seconds = sort_timer.ElapsedSeconds();

  const auto& primary = spec.value_columns()[0];
  const auto& secondary = spec.value_columns()[1];
  // Direction-aware comparison: positive if a beats b on the criterion.
  auto better = [&schema](const SkylineSpec::ValueColumn& vc, const char* a,
                          const char* b) {
    int c = schema.CompareColumn(vc.column, a, b);
    return vc.max ? c : -c;
  };

  Stopwatch scan_timer;
  HeapFileReader reader(env, sorted_path, width, nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());
  TableBuilder builder(env, output_path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  // O(1) scan state: the last emitted skyline tuple. Within a DIFF group,
  // a tuple is skyline iff it strictly beats the last skyline tuple's
  // secondary value, or ties it on both criteria (an equivalent tuple —
  // sorting makes equivalents adjacent to their first representative's
  // run... not necessarily adjacent, but any tuple between two
  // equivalents in sort order would itself tie both keys).
  std::vector<char> last_skyline(width);
  bool have_last = false;
  ++s->passes;
  while (const char* row = reader.Next()) {
    bool is_skyline;
    if (!have_last || (spec.has_diff() &&
                       !spec.SameDiffGroup(last_skyline.data(), row))) {
      is_skyline = true;  // first tuple of the input or of a new group
    } else {
      const int sec = better(secondary, row, last_skyline.data());
      if (sec > 0) {
        is_skyline = true;  // strictly better secondary than any prior
      } else if (sec == 0) {
        // Ties the frontier's secondary: skyline iff it also ties the
        // primary (equivalent); a worse primary means domination.
        is_skyline = better(primary, row, last_skyline.data()) == 0;
      } else {
        is_skyline = false;  // worse secondary and (by sort) no better
                             // primary: dominated by last_skyline
      }
      ++s->window_comparisons;
    }
    if (is_skyline) {
      SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
      ++s->output_rows;
      std::memcpy(last_skyline.data(), row, width);
      have_last = true;
    }
  }
  SKYLINE_RETURN_IF_ERROR(reader.status());
  s->filter_seconds = scan_timer.ElapsedSeconds();
  return builder.Finish();
}

}  // namespace skyline
