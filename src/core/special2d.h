#ifndef SKYLINE_CORE_SPECIAL2D_H_
#define SKYLINE_CORE_SPECIAL2D_H_

#include <string>

#include "common/status.h"
#include "core/run_stats.h"
#include "core/skyline_spec.h"
#include "relation/table.h"
#include "sort/external_sort.h"

namespace skyline {

/// The classic two-dimensional special case the paper points to in Section
/// 6 ("special cases of skyline are known to have good solutions, as for
/// two- and three-dimensional skylines"): after the nested sort, a single
/// scan with O(1) state computes the skyline — no window at all.
///
/// With the input ordered best-first on the primary criterion (ties broken
/// best-first on the secondary), a tuple is skyline iff its secondary
/// value strictly beats the best secondary seen so far, or it exactly ties
/// the previously emitted skyline tuple on both criteria (equivalent
/// tuples are all skyline). DIFF columns are supported by resetting the
/// scan state at group boundaries.
///
/// Requires a spec with exactly two MIN/MAX criteria (any number of DIFF
/// columns). Output lands at `output_path` in sorted order; `stats` (may
/// be null) records sort cost and scan time.
Result<Table> ComputeSkyline2D(const Table& input, const SkylineSpec& spec,
                               const SortOptions& sort_options,
                               const ExecContext& ctx,
                               const std::string& output_path,
                               SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_SPECIAL2D_H_
