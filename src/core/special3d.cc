#include "core/special3d.h"

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/scoring.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"

namespace skyline {
namespace {

/// Direction-aware byte-key comparator: orders raw column values so that
/// "better" sorts *larger*. Keys are the column's raw bytes; comparison
/// delegates to the schema so int/float semantics are exact (no lossy
/// widening of int64 values).
class ValueKeyLess {
 public:
  ValueKeyLess(const Schema* schema, size_t column, bool max)
      : schema_(schema), column_(column), max_(max) {}

  bool operator()(const std::string& a, const std::string& b) const {
    // Keys are full-width row buffers; only this column's bytes are
    // compared, so rows equal on the column are equivalent keys.
    int c = schema_->CompareColumn(column_, a.data(), b.data());
    return max_ ? c < 0 : c > 0;  // "worse" sorts first
  }

 private:
  const Schema* schema_;
  size_t column_;
  bool max_;
};

}  // namespace

Result<Table> ComputeSkyline3D(const Table& input, const SkylineSpec& spec,
                               const SortOptions& sort_options,
                               const ExecContext& ctx,
                               const std::string& output_path,
                               SkylineRunStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  if (spec.value_columns().size() != 3) {
    return Status::InvalidArgument(
        "ComputeSkyline3D requires exactly three MIN/MAX criteria, got " +
        std::to_string(spec.value_columns().size()));
  }
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;
  *s = SkylineRunStats{};
  s->input_rows = input.row_count();

  Env* env = input.env();
  const Schema& schema = spec.schema();
  const size_t width = schema.row_width();
  TempFileManager temp_files(env, output_path + ".sky3d_tmp");

  Stopwatch sort_timer;
  std::unique_ptr<LexicographicOrdering> ordering =
      MakeNestedSkylineOrdering(spec);
  SKYLINE_ASSIGN_OR_RETURN(
      std::string sorted_path,
      SortHeapFile(env, &temp_files, input.path(), width, *ordering,
                   sort_options, ctx, &s->sort_stats));
  s->sort_seconds = sort_timer.ElapsedSeconds();

  const auto& primary = spec.value_columns()[0];
  const auto& secondary = spec.value_columns()[1];
  const auto& tertiary = spec.value_columns()[2];
  // Direction-aware "a beats b" (positive), over full-width row buffers.
  auto better = [&schema](const SkylineSpec::ValueColumn& vc, const char* a,
                          const char* b) {
    int c = schema.CompareColumn(vc.column, a, b);
    return vc.max ? c : -c;
  };

  Stopwatch scan_timer;
  HeapFileReader reader(env, sorted_path, width, nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());
  TableBuilder builder(env, output_path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  // Staircase over (secondary, tertiary) of all *strictly better primary*
  // tuples: keyed by secondary (worse-first under ValueKeyLess), each key
  // mapping to the best tertiary seen at that-or-better secondary...
  // invariant: ascending key order (worse→better secondary) has strictly
  // improving tertiary impossible — it has strictly *worsening* tertiary
  // as secondary improves? No: as secondary improves along the map,
  // tertiary must strictly worsen for both entries to be frontier points.
  // Keys and values are full row buffers (only the respective column's
  // bytes are ever compared).
  ValueKeyLess sec_less(&schema, secondary.column, secondary.max);
  std::map<std::string, std::string, ValueKeyLess> staircase(sec_less);

  auto tert_better_eq = [&](const std::string& a, const char* b) {
    return better(tertiary, a.data(), b) >= 0;
  };

  // True iff some strictly-better-primary tuple dominates `row` — i.e.
  // a staircase entry with secondary >= row's and tertiary >= row's.
  // Among entries with secondary >= row's, the best tertiary belongs to
  // the *worst qualifying secondary* (frontier property), which
  // lower_bound finds directly.
  auto dominated_by_staircase = [&](const char* row) {
    if (staircase.empty()) return false;
    auto it = staircase.lower_bound(std::string(row, width));
    if (it == staircase.end()) return false;  // nothing with sec >= row's
    ++s->window_comparisons;
    return tert_better_eq(it->second, row);
  };

  // Merges a confirmed skyline row into the staircase.
  auto merge_into_staircase = [&](const char* row) {
    const std::string key(row, width);
    auto it = staircase.lower_bound(key);
    // Covered check: an entry with secondary >= and tertiary >= makes this
    // row redundant as a frontier point (it still got output).
    if (it != staircase.end() && tert_better_eq(it->second, row)) return;
    // Erase predecessors (worse-or-equal secondary) whose tertiary is
    // worse-or-equal — they are covered by the new point.
    while (it != staircase.begin()) {
      auto prev = std::prev(it);
      if (better(tertiary, row, prev->second.data()) >= 0) {
        it = staircase.erase(prev);
      } else {
        break;
      }
    }
    staircase.insert_or_assign(key, key);
  };

  // One group of equal (diff-cols, primary) value, pending judgement.
  std::vector<char> group;        // raw rows
  std::vector<char> group_head(width);
  bool have_group = false;

  auto flush_group = [&]() -> Status {
    // Pass 1 within the group: the 2-dim scan over (secondary, tertiary)
    // decides within-group dominance (rows arrive secondary-best-first,
    // tertiary-best-first). Pass 2: survivors against the staircase.
    const char* last_sky = nullptr;
    std::vector<const char*> survivors;
    const size_t n = group.size() / width;
    for (size_t i = 0; i < n; ++i) {
      const char* row = group.data() + i * width;
      bool survives;
      if (last_sky == nullptr) {
        survives = true;
      } else {
        ++s->window_comparisons;
        const int tert = better(tertiary, row, last_sky);
        if (tert > 0) {
          survives = true;
        } else if (tert == 0) {
          survives = better(secondary, row, last_sky) == 0;
        } else {
          survives = false;
        }
      }
      if (survives) {
        last_sky = row;
        if (!dominated_by_staircase(row)) survivors.push_back(row);
      }
    }
    for (const char* row : survivors) {
      SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
      ++s->output_rows;
    }
    // Merge after judging the whole group (group members must not shadow
    // each other in the strict-primary staircase).
    for (const char* row : survivors) merge_into_staircase(row);
    group.clear();
    return Status::OK();
  };

  ++s->passes;
  while (const char* row = reader.Next()) {
    const bool new_diff_group =
        have_group && spec.has_diff() &&
        !spec.SameDiffGroup(group_head.data(), row);
    const bool new_primary_group =
        have_group && (new_diff_group ||
                       schema.CompareColumn(primary.column, group_head.data(),
                                            row) != 0);
    if (new_primary_group) {
      SKYLINE_RETURN_IF_ERROR(flush_group());
      if (new_diff_group) staircase.clear();
    }
    if (!have_group || new_primary_group) {
      std::memcpy(group_head.data(), row, width);
      have_group = true;
    }
    group.insert(group.end(), row, row + width);
  }
  SKYLINE_RETURN_IF_ERROR(reader.status());
  if (have_group) {
    SKYLINE_RETURN_IF_ERROR(flush_group());
  }
  s->filter_seconds = scan_timer.ElapsedSeconds();
  return builder.Finish();
}

}  // namespace skyline
