#ifndef SKYLINE_CORE_SPECIAL3D_H_
#define SKYLINE_CORE_SPECIAL3D_H_

#include <string>

#include "common/status.h"
#include "core/run_stats.h"
#include "core/skyline_spec.h"
#include "relation/table.h"
#include "sort/external_sort.h"

namespace skyline {

/// The three-dimensional special case (paper Section 6, after
/// Kung/Luccio/Preparata): after the nested sort a single sweep maintains
/// the two-dimensional *staircase* frontier of the already-processed
/// tuples — entries with ascending secondary value carry descending
/// tertiary value — and answers each dominance test with one
/// staircase lookup. O(n log s) dominance work for an s-entry frontier,
/// versus the general window's O(n·s).
///
/// Sweep detail: tuples are processed in groups with equal primary value.
/// A group member is dominated by a *strictly better* primary tuple iff
/// some staircase entry is at least as good on both remaining criteria
/// (one lookup); within the group, strictness must come from the
/// secondary/tertiary pair, which the sorted order resolves with the 2-dim
/// single-scan rule. Survivors merge into the staircase after the whole
/// group is judged.
///
/// Requires exactly three MIN/MAX criteria; DIFF columns are supported by
/// resetting the staircase at group boundaries. The frontier and one
/// primary-value group are memory-resident (both are bounded by the
/// skyline size, not the input). `stats` may be null.
Result<Table> ComputeSkyline3D(const Table& input, const SkylineSpec& spec,
                               const SortOptions& sort_options,
                               const ExecContext& ctx,
                               const std::string& output_path,
                               SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_SPECIAL3D_H_
