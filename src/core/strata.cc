#include "core/strata.h"

#include <cstring>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/scoring.h"
#include "core/window.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"

namespace skyline {
namespace {

std::vector<ColumnStats> CopyStats(const Table& table) {
  std::vector<ColumnStats> stats;
  stats.reserve(table.schema().num_columns());
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    stats.push_back(table.stats(c));
  }
  return stats;
}

}  // namespace

Result<std::vector<Table>> ComputeStrataSfs(const Table& input,
                                            const SkylineSpec& spec,
                                            const StrataOptions& options,
                                            const ExecContext& ctx,
                                            const std::string& output_prefix,
                                            StrataStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  if (options.num_strata == 0) {
    return Status::InvalidArgument("num_strata must be positive");
  }
  StrataStats local;
  StrataStats* s = stats != nullptr ? stats : &local;
  *s = StrataStats{};
  s->input_rows = input.row_count();
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  Env* env = input.env();
  TempFileManager temp_files(env,
                             ctx.TempPrefixOr(output_prefix + ".strata_tmp"));

  // Presort exactly as SFS does.
  std::string sorted_path = input.path();
  if (options.presort != Presort::kNone) {
    std::unique_ptr<RowOrdering> ordering;
    if (options.presort == Presort::kNested) {
      ordering = MakeNestedSkylineOrdering(spec);
    } else {
      ordering = std::make_unique<EntropyOrdering>(&spec, input);
    }
    Stopwatch sort_timer;
    TraceSpan presort_span(ctx.trace, "presort");
    SKYLINE_ASSIGN_OR_RETURN(
        sorted_path,
        SortHeapFile(env, &temp_files, input.path(), spec.schema().row_width(),
                     *ordering, options.sort_options, ctx, &s->sort_stats));
    presort_span.End();
    s->sort_seconds = sort_timer.ElapsedSeconds();
  }

  // One window and one output per stratum. In monotone input order a
  // tuple's stratum equals the first window level that does not dominate
  // it: if its stratum were j, transitivity gives it a dominator at every
  // level < j and none at level j.
  std::vector<std::unique_ptr<Window>> windows;
  std::vector<std::unique_ptr<TableBuilder>> builders;
  for (size_t level = 0; level < options.num_strata; ++level) {
    windows.push_back(std::make_unique<Window>(&spec, options.window_pages,
                                               options.use_projection));
    builders.push_back(std::make_unique<TableBuilder>(
        env, output_prefix + ".s" + std::to_string(level), spec.schema()));
    SKYLINE_RETURN_IF_ERROR(builders.back()->Open());
  }
  s->stratum_sizes.assign(options.num_strata, 0);

  Stopwatch filter_timer;
  TraceSpan filter_span(ctx.trace, "filter-pass", 1);
  HeapFileReader reader(env, sorted_path, spec.schema().row_width(), nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());

  const bool poll_cancel = ctx.has_cancel_hook();
  uint64_t scanned = 0;
  std::vector<char> prev_row(spec.schema().row_width());
  bool have_prev = false;
  while (const char* row = reader.Next()) {
    if (poll_cancel && (++scanned & 4095u) == 0) {
      SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
    }
    if (spec.has_diff()) {
      if (have_prev && !spec.SameDiffGroup(prev_row.data(), row)) {
        for (auto& window : windows) window->Clear();
      }
      std::memcpy(prev_row.data(), row, prev_row.size());
      have_prev = true;
    }
    for (size_t level = 0; level < options.num_strata; ++level) {
      const Window::Verdict verdict = windows[level]->Test(row);
      if (verdict == Window::Verdict::kDominated) {
        continue;  // falls through to the next stratum
      }
      if (verdict == Window::Verdict::kAdded ||
          verdict == Window::Verdict::kDuplicateSkyline) {
        SKYLINE_RETURN_IF_ERROR(builders[level]->AppendRaw(row));
        ++s->stratum_sizes[level];
        break;
      }
      if (verdict == Window::Verdict::kWindowFull) {
        return Status::ResourceExhausted(
            "stratum " + std::to_string(level) + " window overflow (" +
            std::to_string(windows[level]->capacity()) +
            " entries); enlarge window_pages or use LabelStrataIterative");
      }
      return Status::InvalidArgument(
          "strata input is not sorted by a monotone scoring order");
    }
    // Dominated at every level: deeper than the requested strata; discard.
  }
  SKYLINE_RETURN_IF_ERROR(reader.status());
  filter_span.End();
  s->filter_seconds = filter_timer.ElapsedSeconds();
  for (const auto& window : windows) {
    s->window_comparisons += window->comparisons();
  }

  std::vector<Table> strata;
  strata.reserve(options.num_strata);
  for (auto& builder : builders) {
    SKYLINE_ASSIGN_OR_RETURN(Table t, builder->Finish());
    strata.push_back(std::move(t));
  }
  return strata;
}

Result<std::vector<Table>> LabelStrataIterative(
    const Table& input, const SkylineSpec& spec, const SfsOptions& sfs_options,
    const ExecContext& ctx, size_t max_strata,
    const std::string& output_prefix, StrataStats* stats) {
  if (!input.schema().Equals(spec.schema())) {
    return Status::InvalidArgument("table schema does not match skyline spec");
  }
  StrataStats local;
  StrataStats* s = stats != nullptr ? stats : &local;
  *s = StrataStats{};
  s->input_rows = input.row_count();

  Env* env = input.env();
  TempFileManager temp_files(env,
                             ctx.TempPrefixOr(output_prefix + ".label_tmp"));

  std::vector<Table> strata;
  // `current` holds the not-yet-labelled residue; starts as the input.
  // Column stats of the input remain valid bounds for every residue.
  const std::vector<ColumnStats> base_stats = CopyStats(input);
  SKYLINE_ASSIGN_OR_RETURN(
      Table current,
      Table::Attach(input.schema(), env, input.path(), base_stats));

  size_t level = 0;
  while (current.row_count() > 0 &&
         (max_strata == 0 || level < max_strata)) {
    SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
    SfsOptions opts = sfs_options;
    opts.residue_path = temp_files.Allocate("residue");
    // Each stratum's SFS run manages its own temp prefix; pass everything
    // but temp_prefix through (nested runs would collide on one prefix).
    ExecContext stratum_ctx = ctx;
    stratum_ctx.temp_prefix.clear();
    SkylineRunStats run_stats;
    SKYLINE_ASSIGN_OR_RETURN(
        Table stratum,
        ComputeSkylineSfs(current, spec, opts, stratum_ctx,
                          output_prefix + ".s" + std::to_string(level),
                          &run_stats));
    s->sort_seconds += run_stats.sort_seconds;
    s->filter_seconds += run_stats.filter_seconds;
    s->window_comparisons += run_stats.window_comparisons;
    s->stratum_sizes.push_back(stratum.row_count());
    strata.push_back(std::move(stratum));
    ++level;

    const std::string previous_path = current.path();
    SKYLINE_ASSIGN_OR_RETURN(
        current,
        Table::Attach(input.schema(), env, opts.residue_path, base_stats));
    if (previous_path != input.path()) temp_files.Delete(previous_path);
  }
  return strata;
}

}  // namespace skyline
