#ifndef SKYLINE_CORE_STRATA_H_
#define SKYLINE_CORE_STRATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/run_stats.h"
#include "core/sfs.h"
#include "core/skyline_spec.h"
#include "relation/table.h"

namespace skyline {

/// Options for skyline strata computation (Section 4.4 of the paper).
/// Stratum s₀ is the skyline; s₁ is the skyline after removing s₀; etc.
struct StrataOptions {
  /// How many strata to compute.
  size_t num_strata = 4;
  /// Buffer pages for each of the `num_strata` windows.
  size_t window_pages = 500;
  bool use_projection = true;
  Presort presort = Presort::kEntropy;
  SortOptions sort_options;
};

/// Per-run observability for strata computation.
struct StrataStats {
  std::vector<uint64_t> stratum_sizes;
  uint64_t input_rows = 0;
  SortStats sort_stats;
  double sort_seconds = 0.0;
  double filter_seconds = 0.0;
  uint64_t window_comparisons = 0;
};

/// Computes the first `num_strata` skyline strata simultaneously with the
/// paper's multi-window SFS adaptation: a tuple dominated at window level j
/// falls through to level j+1; a tuple not dominated at level j belongs to
/// stratum j. Requires a single filtering pass, so each window must hold its
/// stratum (returns ResourceExhausted if any window overflows — use
/// LabelStrataIterative for unbounded strata). Tuples deeper than the last
/// stratum are discarded.
///
/// Writes stratum i to "<output_prefix>.s<i>"; returns the strata tables in
/// order. `stats` may be null.
Result<std::vector<Table>> ComputeStrataSfs(const Table& input,
                                            const SkylineSpec& spec,
                                            const StrataOptions& options,
                                            const ExecContext& ctx,
                                            const std::string& output_prefix,
                                            StrataStats* stats);

/// Labels every tuple with its stratum by running full SFS repeatedly:
/// compute the skyline, remove it, recurse on the residue (the paper's
/// future-work "label each tuple with its stratum number"). Handles any
/// stratum size at the cost of one SFS run per stratum. Stops after
/// `max_strata` strata (0 = until the input is exhausted).
Result<std::vector<Table>> LabelStrataIterative(
    const Table& input, const SkylineSpec& spec, const SfsOptions& sfs_options,
    const ExecContext& ctx, size_t max_strata,
    const std::string& output_prefix, StrataStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_STRATA_H_
