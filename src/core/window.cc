#include "core/window.h"

#include <cstring>

#include "common/logging.h"

namespace skyline {

Window::Window(const SkylineSpec* spec, size_t window_pages, bool projected)
    : spec_(spec),
      entry_spec_(projected ? &spec->projected_spec() : spec),
      window_pages_(window_pages),
      projected_(projected),
      entry_width_(projected ? spec->projected_schema().row_width()
                             : spec->schema().row_width()),
      capacity_(window_pages * RecordsPerPage(entry_width_)) {
  SKYLINE_CHECK_GT(window_pages, 0u);
  SKYLINE_CHECK_GT(capacity_, 0u) << "entry wider than a page";
  storage_.reserve(capacity_ * entry_width_);
  scratch_.resize(entry_width_);
}

Window::Verdict Window::Test(const char* full_row) {
  const char* probe = full_row;
  if (projected_) {
    spec_->ProjectRow(full_row, scratch_.data());
    probe = scratch_.data();
  }
  for (size_t i = 0; i < entry_count_; ++i) {
    const char* entry = storage_.data() + i * entry_width_;
    ++comparisons_;
    switch (CompareDominance(*entry_spec_, entry, probe)) {
      case DomResult::kFirstDominates:
        return Verdict::kDominated;
      case DomResult::kEquivalent:
        // The probe is skyline (an equivalent confirmed entry exists, and
        // entries are mutually non-dominating). With dedup on we need not
        // store a second copy; without projection we keep scanning and
        // store it so output mirrors the window exactly.
        if (projected_) return Verdict::kDuplicateSkyline;
        break;
      case DomResult::kSecondDominates:
        // Input out of monotone order: a later tuple dominates a confirmed
        // window tuple, which Theorem 6/7 rules out for sorted input.
        return Verdict::kSortViolation;
      case DomResult::kIncomparable:
        break;
    }
  }
  if (entry_count_ == capacity_) return Verdict::kWindowFull;
  storage_.insert(storage_.end(), probe, probe + entry_width_);
  ++entry_count_;
  return Verdict::kAdded;
}

void Window::Clear() {
  storage_.clear();
  entry_count_ = 0;
}

const char* Window::EntryAt(size_t i) const {
  SKYLINE_CHECK_LT(i, entry_count_);
  return storage_.data() + i * entry_width_;
}

}  // namespace skyline
