#include "core/window.h"

#include <cstring>

#include "common/logging.h"

namespace skyline {

Window::Window(const SkylineSpec* spec, size_t window_pages, bool projected)
    : spec_(spec),
      entry_spec_(projected ? &spec->projected_spec() : spec),
      window_pages_(window_pages),
      projected_(projected),
      entry_width_(projected ? spec->projected_schema().row_width()
                             : spec->schema().row_width()),
      capacity_(window_pages * RecordsPerPage(entry_width_)),
      index_(entry_spec_) {
  SKYLINE_CHECK_GT(window_pages, 0u);
  SKYLINE_CHECK_GT(capacity_, 0u) << "entry wider than a page";
  storage_.reserve(capacity_ * entry_width_);
  scratch_.resize(entry_width_);
  index_.Reserve(capacity_);
}

Window::Verdict Window::Test(const char* full_row) {
  const char* probe = full_row;
  if (projected_) {
    spec_->ProjectRow(full_row, scratch_.data());
    probe = scratch_.data();
  }
  const Verdict verdict =
      index_.columnar() ? TestColumnar(probe) : TestRowFallback(probe);
  if (verdict != Verdict::kAdded) return verdict;
  if (entry_count_ == capacity_) return Verdict::kWindowFull;
  storage_.insert(storage_.end(), probe, probe + entry_width_);
  index_.Append(probe);
  ++entry_count_;
  return Verdict::kAdded;
}

/// Block-batched scan. Relation classes are mutually exclusive across the
/// whole window (e1 ≻ probe together with probe ≽ e2 or probe ≡ e1 with
/// probe ≻ e2 would force one entry to dominate another), so the scan can
/// stop at the first block with any relation and the verdict is identical
/// to the row-at-a-time first-hit loop.
Window::Verdict Window::TestColumnar(const char* probe) {
  index_.EncodeProbe(probe, &probe_);
  const size_t blocks = DominanceIndex::BlockCountFor(entry_count_);
  for (size_t b = 0; b < blocks; ++b) {
    if (index_.CanPruneBlock(probe_, b)) {
      ++blocks_pruned_;
      continue;
    }
    const uint64_t tested = index_.BlockEntries(b, entry_count_);
    comparisons_ += tested;
    batch_comparisons_ += tested;
    const BlockMasks masks = index_.TestBlock(probe_, b, entry_count_);
    if (masks.dominates != 0) return Verdict::kDominated;
    if (masks.dominated != 0) return Verdict::kSortViolation;
    if (masks.equal != 0) {
      // The probe is skyline (an equivalent confirmed entry exists, and
      // entries are mutually non-dominating). With dedup on we need not
      // store a second copy; without projection we store it so output
      // mirrors the window exactly — and exclusivity says the remaining
      // blocks hold no relation, so the scan can end either way.
      if (projected_) return Verdict::kDuplicateSkyline;
      break;
    }
  }
  return Verdict::kAdded;
}

bool Window::AnyEntryDominates(const char* full_row) {
  if (entry_count_ == 0) return false;
  const char* probe = full_row;
  if (projected_) {
    spec_->ProjectRow(full_row, scratch_.data());
    probe = scratch_.data();
  }
  if (index_.columnar()) {
    index_.EncodeProbe(probe, &probe_);
    return index_.AnyEntryDominates(probe_, entry_count_);
  }
  for (size_t i = 0; i < entry_count_; ++i) {
    const char* entry = storage_.data() + i * entry_width_;
    if (CompareDominance(*entry_spec_, entry, probe) ==
        DomResult::kFirstDominates) {
      return true;
    }
  }
  return false;
}

/// Row-at-a-time scan for specs the columnar index cannot serve (too many
/// criterion columns, or the forced row path). Identical to the
/// pre-columnar Window behavior, including per-entry comparison accounting
/// with first-hit early exit.
Window::Verdict Window::TestRowFallback(const char* probe) {
  for (size_t i = 0; i < entry_count_; ++i) {
    const char* entry = storage_.data() + i * entry_width_;
    ++comparisons_;
    switch (CompareDominance(*entry_spec_, entry, probe)) {
      case DomResult::kFirstDominates:
        return Verdict::kDominated;
      case DomResult::kEquivalent:
        if (projected_) return Verdict::kDuplicateSkyline;
        break;
      case DomResult::kSecondDominates:
        // Input out of monotone order: a later tuple dominates a confirmed
        // window tuple, which Theorem 6/7 rules out for sorted input.
        return Verdict::kSortViolation;
      case DomResult::kIncomparable:
        break;
    }
  }
  return Verdict::kAdded;
}

void Window::Clear() {
  storage_.clear();
  index_.Clear();
  entry_count_ = 0;
}

const char* Window::EntryAt(size_t i) const {
  SKYLINE_CHECK_LT(i, entry_count_);
  return storage_.data() + i * entry_width_;
}

}  // namespace skyline
