#ifndef SKYLINE_CORE_WINDOW_H_
#define SKYLINE_CORE_WINDOW_H_

#include <cstdint>
#include <vector>

#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "core/skyline_spec.h"
#include "storage/page.h"

namespace skyline {

/// The SFS filter window: a page-budgeted cache of (projected) skyline
/// tuples against which the sorted input stream is checked. Unlike BNL's
/// window, entries are never replaced — every entry is a confirmed skyline
/// tuple of the current pass (the paper's key structural simplification).
///
/// With `projected` true, entries store only the skyline attributes
/// (spec.projected_schema()) and duplicates are eliminated — the paper's
/// projection optimization, which fits ~2.5× more entries per page for the
/// experimental tuple shape (40 B of attributes vs 100 B tuples).
///
/// Storage is hybrid: entries keep their row-major bytes (EntryAt, output)
/// while a columnar DominanceIndex mirrors the criterion columns in
/// 64-entry blocks with zone maps. Every criterion lowers to an order-key
/// lane (int32/int64 keys, doubles via the total-order bits, string DIFF
/// via dictionary codes), so Test relates the probe to a whole block per
/// batched-kernel call and skips blocks the zone maps prove unrelated;
/// only specs beyond the column cap fall back to the row-at-a-time
/// CompareDominance scan. Both paths return identical verdicts: for a
/// window (pairwise non-dominating entries, equivalents allowed) at most
/// one relation class — dominator, equal, or dominated — can occur across
/// all entries, so first-hit order cannot change the outcome.
class Window {
 public:
  enum class Verdict {
    /// Row is dominated by a window entry: discard it.
    kDominated,
    /// Row is skyline and was added to the window: emit it.
    kAdded,
    /// Row is skyline but equal (on all skyline attributes) to an existing
    /// entry, which already filters everything it would: emit it without
    /// storing (only returned when projection/dedup is on).
    kDuplicateSkyline,
    /// Row is not dominated but the window is full: spill it to the next
    /// pass's temp file.
    kWindowFull,
    /// Row *dominates* a window entry — impossible for input in a monotone
    /// (topological) order; reported so SFS can reject unsorted input.
    kSortViolation,
  };

  /// `spec` must outlive the window. `window_pages` bounds capacity to
  /// window_pages * RecordsPerPage(entry width).
  Window(const SkylineSpec* spec, size_t window_pages, bool projected);

  /// Tests `full_row` (a spec->schema() row) against all entries and
  /// applies the verdict's side effect (kAdded stores the row/projection).
  Verdict Test(const char* full_row);

  /// True when some window entry strictly dominates `full_row` (a
  /// spec->schema() row). No side effects, no verdict accounting beyond
  /// the block counters. The SFS block prefilter probes synthetic
  /// "corner" rows through this: if an entry dominates the componentwise
  /// best of an input block, it dominates every row in that block.
  bool AnyEntryDominates(const char* full_row);

  /// Drops all entries (used between passes and at DIFF group boundaries).
  void Clear();

  size_t entry_count() const { return entry_count_; }
  size_t capacity() const { return capacity_; }
  bool full() const { return entry_count_ == capacity_; }
  size_t entry_width() const { return entry_width_; }
  size_t window_pages() const { return window_pages_; }
  bool projected() const { return projected_; }

  /// Pointer to stored entry `i` (projected or full row per mode).
  const char* EntryAt(size_t i) const;

  /// Cumulative pairwise dominance tests performed — the CPU-effort metric
  /// used to show SFS's stability vs BNL's CPU-boundedness. The batched
  /// path counts every entry of a tested block (it relates all of them at
  /// once) and none of a zone-map-pruned block.
  uint64_t comparisons() const { return comparisons_; }

  /// Dominance tests executed through the batched SIMD kernel (a subset of
  /// comparisons(); zero when the spec forces the row fallback).
  uint64_t batch_comparisons() const { return batch_comparisons_; }

  /// Blocks skipped outright because their zone maps proved no entry could
  /// relate to the probe.
  uint64_t blocks_pruned() const { return blocks_pruned_; }

  /// Successful dictionary probe lookups (string DIFF specs only).
  uint64_t dict_hits() const { return index_.dict_probe_hits(); }

  /// Kernel variant Test uses: "scalar"/"sse2"/"avx2" on the columnar
  /// path, "row" when the column cap forces the row-at-a-time scan.
  const char* kernel_name() const {
    return index_.columnar() ? index_.kernel_name() : "row";
  }

 private:
  Verdict TestColumnar(const char* probe);
  Verdict TestRowFallback(const char* probe);

  const SkylineSpec* spec_;
  /// Spec used to compare stored entries (projected or identity).
  const SkylineSpec* entry_spec_;
  size_t window_pages_;
  bool projected_;
  size_t entry_width_;
  size_t capacity_;
  size_t entry_count_ = 0;
  std::vector<char> storage_;
  std::vector<char> scratch_;  // projection buffer for the row under test
  DominanceIndex index_;
  DominanceIndex::Probe probe_;
  uint64_t comparisons_ = 0;
  uint64_t batch_comparisons_ = 0;
  uint64_t blocks_pruned_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_WINDOW_H_
