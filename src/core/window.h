#ifndef SKYLINE_CORE_WINDOW_H_
#define SKYLINE_CORE_WINDOW_H_

#include <cstdint>
#include <vector>

#include "core/dominance.h"
#include "core/skyline_spec.h"
#include "storage/page.h"

namespace skyline {

/// The SFS filter window: a page-budgeted cache of (projected) skyline
/// tuples against which the sorted input stream is checked. Unlike BNL's
/// window, entries are never replaced — every entry is a confirmed skyline
/// tuple of the current pass (the paper's key structural simplification).
///
/// With `projected` true, entries store only the skyline attributes
/// (spec.projected_schema()) and duplicates are eliminated — the paper's
/// projection optimization, which fits ~2.5× more entries per page for the
/// experimental tuple shape (40 B of attributes vs 100 B tuples).
class Window {
 public:
  enum class Verdict {
    /// Row is dominated by a window entry: discard it.
    kDominated,
    /// Row is skyline and was added to the window: emit it.
    kAdded,
    /// Row is skyline but equal (on all skyline attributes) to an existing
    /// entry, which already filters everything it would: emit it without
    /// storing (only returned when projection/dedup is on).
    kDuplicateSkyline,
    /// Row is not dominated but the window is full: spill it to the next
    /// pass's temp file.
    kWindowFull,
    /// Row *dominates* a window entry — impossible for input in a monotone
    /// (topological) order; reported so SFS can reject unsorted input.
    kSortViolation,
  };

  /// `spec` must outlive the window. `window_pages` bounds capacity to
  /// window_pages * RecordsPerPage(entry width).
  Window(const SkylineSpec* spec, size_t window_pages, bool projected);

  /// Tests `full_row` (a spec->schema() row) against all entries and
  /// applies the verdict's side effect (kAdded stores the row/projection).
  Verdict Test(const char* full_row);

  /// Drops all entries (used between passes and at DIFF group boundaries).
  void Clear();

  size_t entry_count() const { return entry_count_; }
  size_t capacity() const { return capacity_; }
  bool full() const { return entry_count_ == capacity_; }
  size_t entry_width() const { return entry_width_; }
  size_t window_pages() const { return window_pages_; }
  bool projected() const { return projected_; }

  /// Pointer to stored entry `i` (projected or full row per mode).
  const char* EntryAt(size_t i) const;

  /// Cumulative pairwise dominance tests performed — the CPU-effort metric
  /// used to show SFS's stability vs BNL's CPU-boundedness.
  uint64_t comparisons() const { return comparisons_; }

 private:
  const SkylineSpec* spec_;
  /// Spec used to compare stored entries (projected or identity).
  const SkylineSpec* entry_spec_;
  size_t window_pages_;
  bool projected_;
  size_t entry_width_;
  size_t capacity_;
  size_t entry_count_ = 0;
  std::vector<char> storage_;
  std::vector<char> scratch_;  // projection buffer for the row under test
  uint64_t comparisons_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_WINDOW_H_
