#include "core/winnow.h"

#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/temp_file_manager.h"

namespace skyline {
namespace {

/// BNL-style window generalized to an arbitrary preference relation.
/// Mirrors the window in bnl.cc; kept separate because the dominance
/// calls, the error handling for ill-formed preferences, and the verdict
/// plumbing differ enough that sharing would obscure both.
class WinnowWindow {
 public:
  WinnowWindow(const Schema* schema, size_t window_pages)
      : schema_(schema),
        width_(schema->row_width()),
        capacity_(window_pages * RecordsPerPage(width_)) {
    SKYLINE_CHECK_GT(capacity_, 0u);
    rows_.reserve(capacity_ * width_);
  }

  size_t size() const { return timestamps_.size(); }
  bool full() const { return timestamps_.size() == capacity_; }
  const char* RowAt(size_t i) const { return rows_.data() + i * width_; }
  uint64_t TimestampAt(size_t i) const { return timestamps_[i]; }
  uint64_t PassAt(size_t i) const { return passes_[i]; }
  uint64_t comparisons() const { return comparisons_; }
  uint64_t replacements() const { return replacements_; }

  /// Compares `row` against all entries under `prefers`. On success sets
  /// *survives; evicted entries are removed. Fails if the preference is
  /// not antisymmetric on some compared pair.
  Status TestAndEvict(const PreferenceRelation& prefers, const char* row,
                      bool* survives) {
    RowView probe(schema_, row);
    size_t i = 0;
    while (i < timestamps_.size()) {
      ++comparisons_;
      RowView entry(schema_, RowAt(i));
      const bool entry_wins = prefers(entry, probe);
      const bool probe_wins = prefers(probe, entry);
      if (entry_wins && probe_wins) {
        return Status::InvalidArgument(
            "preference relation is not antisymmetric: two tuples each "
            "strictly preferred to the other");
      }
      if (entry_wins) {
        *survives = false;
        return Status::OK();
      }
      if (probe_wins) {
        ++replacements_;
        RemoveAt(i);
        continue;
      }
      ++i;
    }
    *survives = true;
    return Status::OK();
  }

  void Insert(const char* row, uint64_t timestamp, uint64_t pass) {
    SKYLINE_CHECK(!full());
    rows_.insert(rows_.end(), row, row + width_);
    timestamps_.push_back(timestamp);
    passes_.push_back(pass);
  }

  void RemoveAt(size_t i) {
    const size_t last = timestamps_.size() - 1;
    if (i != last) {
      std::memcpy(rows_.data() + i * width_, rows_.data() + last * width_,
                  width_);
      timestamps_[i] = timestamps_[last];
      passes_[i] = passes_[last];
    }
    rows_.resize(last * width_);
    timestamps_.pop_back();
    passes_.pop_back();
  }

 private:
  const Schema* schema_;
  size_t width_;
  size_t capacity_;
  std::vector<char> rows_;
  std::vector<uint64_t> timestamps_;
  std::vector<uint64_t> passes_;
  uint64_t comparisons_ = 0;
  uint64_t replacements_ = 0;
};

}  // namespace

Result<Table> ComputeWinnow(const Table& input,
                            const PreferenceRelation& prefers,
                            const WinnowOptions& options,
                            const std::string& output_path,
                            SkylineRunStats* stats) {
  if (!prefers) {
    return Status::InvalidArgument("winnow needs a preference relation");
  }
  SkylineRunStats local;
  SkylineRunStats* s = stats != nullptr ? stats : &local;
  *s = SkylineRunStats{};

  Env* env = input.env();
  const Schema& schema = input.schema();
  const size_t width = schema.row_width();
  TempFileManager temp_files(env, output_path + ".winnow_tmp");

  Stopwatch timer;
  TableBuilder builder(env, output_path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  WinnowWindow window(&schema, options.window_pages);
  std::string input_path = input.path();
  uint64_t pass = 1;
  bool first_pass = true;

  while (true) {
    ++s->passes;
    HeapFileReader reader(env, input_path, width,
                          first_pass ? nullptr : &s->temp_io);
    SKYLINE_RETURN_IF_ERROR(reader.Open());
    if (first_pass) s->input_rows = reader.record_count();

    std::unique_ptr<HeapFileWriter> spill;
    std::string spill_path;
    uint64_t spilled_this_pass = 0;
    uint64_t read_index = 0;

    while (const char* row = reader.Next()) {
      // Irreflexivity spot-check (cheap; catches e.g. ">=" mistakes).
      if (read_index == 0 && first_pass) {
        RowView v(&schema, row);
        if (prefers(v, v)) {
          return Status::InvalidArgument(
              "preference relation is not irreflexive: a tuple is "
              "preferred to itself");
        }
      }
      // Confirm previous-pass entries that have met all predecessors.
      for (size_t i = 0; i < window.size();) {
        if (window.PassAt(i) == pass - 1 &&
            window.TimestampAt(i) <= read_index) {
          SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(window.RowAt(i)));
          ++s->output_rows;
          window.RemoveAt(i);
        } else {
          ++i;
        }
      }
      bool survives = false;
      SKYLINE_RETURN_IF_ERROR(window.TestAndEvict(prefers, row, &survives));
      if (survives) {
        if (!window.full()) {
          window.Insert(row, spilled_this_pass, pass);
        } else {
          if (spill == nullptr) {
            spill_path = temp_files.Allocate("winnow_spill");
            spill = std::make_unique<HeapFileWriter>(env, spill_path, width,
                                                     &s->temp_io);
            SKYLINE_RETURN_IF_ERROR(spill->Open());
          }
          SKYLINE_RETURN_IF_ERROR(spill->Append(row));
          ++spilled_this_pass;
          ++s->spilled_tuples;
        }
      }
      ++read_index;
    }
    SKYLINE_RETURN_IF_ERROR(reader.status());

    for (size_t i = 0; i < window.size();) {
      if (window.PassAt(i) <= pass - 1) {
        SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(window.RowAt(i)));
        ++s->output_rows;
        window.RemoveAt(i);
      } else {
        ++i;
      }
    }

    if (spill == nullptr) {
      for (size_t i = 0; i < window.size(); ++i) {
        SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(window.RowAt(i)));
        ++s->output_rows;
      }
      break;
    }
    SKYLINE_RETURN_IF_ERROR(spill->Finish());
    if (!first_pass) temp_files.Delete(input_path);
    input_path = spill_path;
    first_pass = false;
    ++pass;
  }

  s->window_comparisons = window.comparisons();
  s->window_replacements = window.replacements();
  s->filter_seconds = timer.ElapsedSeconds();
  return builder.Finish();
}

}  // namespace skyline
