#ifndef SKYLINE_CORE_WINNOW_H_
#define SKYLINE_CORE_WINNOW_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "core/run_stats.h"
#include "relation/table.h"

namespace skyline {

/// An arbitrary preference relation over rows: returns true iff `a` is
/// strictly preferred to (dominates) `b`. Must be a strict partial order —
/// irreflexive and transitive; the algorithm checks irreflexivity cheaply
/// and antisymmetry per compared pair, reporting InvalidArgument on
/// violation, but transitivity is the caller's contract.
using PreferenceRelation =
    std::function<bool(const RowView& a, const RowView& b)>;

/// Options for winnow evaluation.
struct WinnowOptions {
  /// Buffer pages for the BNL-style window of candidate tuples.
  size_t window_pages = 500;
};

/// The winnow operator of Chomicki's preference framework (the paper's
/// reference [6]): returns the tuples not dominated under an *arbitrary*
/// preference relation. Skyline is the special case where the preference
/// is attribute-wise dominance; winnow also covers preferences no
/// monotone scoring can express (so SFS presorting does not apply — the
/// paper's Section 6 names extending skyline algorithms toward winnow as
/// future work).
///
/// Evaluated with the BNL machinery (window with replacement, timestamp
/// confirmation, spill passes), which is preference-agnostic.
Result<Table> ComputeWinnow(const Table& input,
                            const PreferenceRelation& prefers,
                            const WinnowOptions& options,
                            const std::string& output_path,
                            SkylineRunStats* stats);

}  // namespace skyline

#endif  // SKYLINE_CORE_WINNOW_H_
