#include "core/zone_prefilter.h"

#include <cstring>

#include "core/canonical_key.h"
#include "core/dominance_batch.h"

namespace skyline {

BlockCornerBuilder::BlockCornerBuilder(
    const SkylineSpec* spec, std::shared_ptr<const TableColumnZones> zones)
    : spec_(spec), zones_(std::move(zones)) {
  usable_ = zones_ != nullptr &&
            zones_->block_rows == DominanceIndex::kBlockEntries &&
            zones_->columns.size() == spec_->schema().num_columns();
  if (!usable_) return;
  // Every string DIFF column needs its dictionary to materialize values.
  for (size_t i = 0; i < spec_->diff_columns().size(); ++i) {
    const size_t col = spec_->diff_columns()[i];
    if (spec_->dom_diff_columns()[i].type == ColumnType::kFixedString &&
        zones_->columns[col].dict == nullptr) {
      usable_ = false;
      return;
    }
  }
}

bool BlockCornerBuilder::BuildCorner(size_t b, char* corner) const {
  std::memset(corner, 0, spec_->schema().row_width());
  // DIFF columns first: a sound corner needs the whole block in one group.
  const auto& diff_cols = spec_->diff_columns();
  const auto& dom_diffs = spec_->dom_diff_columns();
  for (size_t i = 0; i < diff_cols.size(); ++i) {
    const auto& zcol = zones_->columns[diff_cols[i]];
    if (b >= zcol.zmin.size() || zcol.zmin[b] != zcol.zmax[b]) return false;
    const auto& dc = dom_diffs[i];
    if (dc.type == ColumnType::kFixedString) {
      const int64_t code = zcol.zmin[b];
      if (code < 0 ||
          static_cast<size_t>(code) >= zcol.dict->size()) {
        return false;
      }
      std::memcpy(corner + dc.offset,
                  zcol.dict->Value(static_cast<int32_t>(code)), dc.length);
    } else {
      WriteCanonicalKeyAsRaw(dc.type, zcol.zmin[b], corner + dc.offset);
    }
  }
  // Value criteria: componentwise best over the block — zmax for MAX,
  // zmin for MIN (zones are in canonical ascending key space).
  const auto& value_cols = spec_->value_columns();
  const auto& dom_values = spec_->dom_value_columns();
  for (size_t i = 0; i < value_cols.size(); ++i) {
    const auto& zcol = zones_->columns[value_cols[i].column];
    if (b >= zcol.zmin.size()) return false;
    const auto& dc = dom_values[i];
    WriteCanonicalKeyAsRaw(dc.type, dc.max ? zcol.zmax[b] : zcol.zmin[b],
                  corner + dc.offset);
  }
  return true;
}

}  // namespace skyline
