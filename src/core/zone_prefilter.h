#ifndef SKYLINE_CORE_ZONE_PREFILTER_H_
#define SKYLINE_CORE_ZONE_PREFILTER_H_

#include <memory>
#include <vector>

#include "core/skyline_spec.h"
#include "relation/column_store.h"

namespace skyline {

/// Builds synthetic "corner" rows from a table's persisted/cached zone
/// maps: for input block b, the corner carries the componentwise *best*
/// value of every MIN/MAX criterion over the block's rows (and the
/// block's uniform DIFF values). If any confirmed window entry strictly
/// dominates the corner, it strictly dominates every row of the block —
/// the entry beats the block's best on some criterion and ties-or-beats
/// it everywhere else, and each row is at most the corner everywhere —
/// so SFS can skip the whole block without reading a single row of it.
///
/// Soundness requires the block's DIFF values to be uniform (otherwise a
/// single corner cannot share a group with every row); BuildCorner
/// returns false for such blocks and the caller filters them row by row.
class BlockCornerBuilder {
 public:
  /// `spec` must outlive the builder; `zones` granularity must match the
  /// filter's 64-row blocks (usable() is false otherwise).
  BlockCornerBuilder(const SkylineSpec* spec,
                     std::shared_ptr<const TableColumnZones> zones);

  /// True when the zones can drive the prefilter at all (matching block
  /// granularity and schema shape).
  bool usable() const { return usable_; }

  uint32_t block_rows() const { return zones_->block_rows; }
  uint64_t row_count() const { return zones_->row_count; }

  /// Fills `corner` (spec->schema().row_width() bytes, zeroed padding)
  /// with block `b`'s corner row. Returns false when the block has no
  /// sound corner (non-uniform DIFF values); `corner` is then unspecified.
  bool BuildCorner(size_t b, char* corner) const;

 private:
  const SkylineSpec* spec_;
  std::shared_ptr<const TableColumnZones> zones_;
  bool usable_ = false;
};

}  // namespace skyline

#endif  // SKYLINE_CORE_ZONE_PREFILTER_H_
