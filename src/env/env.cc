#include "env/env.h"

namespace skyline {

Env* Env::Memory() {
  static Env* const kMemEnv = NewMemEnv().release();
  return kMemEnv;
}

Env* Env::Posix() {
  static Env* const kPosixEnv = NewPosixEnv().release();
  return kPosixEnv;
}

}  // namespace skyline
