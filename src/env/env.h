#ifndef SKYLINE_ENV_ENV_H_
#define SKYLINE_ENV_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace skyline {

/// A file being written sequentially (append-only).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `size` bytes from `data` to the end of the file.
  virtual Status Append(const char* data, size_t size) = 0;

  /// Flushes buffered data and closes the file. Append after Close is an
  /// error. Implementations must be safe to Close twice.
  virtual Status Close() = 0;

  /// Bytes appended so far.
  virtual uint64_t Size() const = 0;
};

/// A file being read from an arbitrary offset.
class RandomAccessFile {
 public:
  /// Advisory access-pattern hints (posix_fadvise flavors). Purely an
  /// optimization channel: implementations may ignore them entirely.
  enum class AccessPattern {
    /// The range will be read front-to-back; aggressive readahead pays off.
    kSequential,
    /// The range will be needed soon; prefetch it.
    kWillNeed,
  };

  virtual ~RandomAccessFile() = default;

  /// Reads exactly `size` bytes at `offset` into `scratch`. Returns
  /// OutOfRange if the range extends past end-of-file.
  virtual Status Read(uint64_t offset, size_t size, char* scratch) const = 0;

  /// Total file size in bytes.
  virtual uint64_t Size() const = 0;

  /// Declares the expected access pattern for [offset, offset+size).
  /// size 0 means "to end of file". Default: no-op.
  virtual void Hint(AccessPattern /*pattern*/, uint64_t /*offset*/,
                    uint64_t /*size*/) const {}
};

/// Filesystem abstraction in the style of rocksdb::Env, so the paged storage
/// layer can run against real files (PosixEnv) or deterministic in-process
/// memory (MemEnv) without code changes. All paths are opaque strings; MemEnv
/// treats them as map keys.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating if present) a file for sequential writing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;

  /// Opens an existing file for random-offset reads.
  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* out) = 0;

  /// Removes a file; NotFound if it does not exist.
  virtual Status DeleteFile(const std::string& path) = 0;

  /// True if `path` names an existing file.
  virtual bool FileExists(const std::string& path) const = 0;

  /// Size in bytes of an existing file.
  virtual Result<uint64_t> FileSize(const std::string& path) const = 0;

  /// Process-wide in-memory environment (never deleted; see Google style on
  /// static storage duration objects).
  static Env* Memory();

  /// Process-wide POSIX filesystem environment.
  static Env* Posix();
};

/// Creates a fresh, isolated in-memory environment. Each call returns an
/// independent namespace of files; useful for tests that must not interfere.
std::unique_ptr<Env> NewMemEnv();

/// Creates a POSIX environment rooted at the real filesystem.
std::unique_ptr<Env> NewPosixEnv();

}  // namespace skyline

#endif  // SKYLINE_ENV_ENV_H_
