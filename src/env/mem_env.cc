#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/env.h"

namespace skyline {
namespace {

/// Shared byte buffer for one in-memory "file". Ref-counted so an open
/// reader stays valid if the file is deleted from the namespace.
struct FileBlob {
  std::vector<char> data;
};

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<FileBlob> blob)
      : blob_(std::move(blob)) {}

  Status Append(const char* data, size_t size) override {
    if (closed_) return Status::IoError("append to closed file");
    blob_->data.insert(blob_->data.end(), data, data + size);
    return Status::OK();
  }

  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

  uint64_t Size() const override { return blob_->data.size(); }

 private:
  std::shared_ptr<FileBlob> blob_;
  bool closed_ = false;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<FileBlob> blob)
      : blob_(std::move(blob)) {}

  Status Read(uint64_t offset, size_t size, char* scratch) const override {
    if (offset + size > blob_->data.size()) {
      return Status::OutOfRange("read past end of file");
    }
    std::memcpy(scratch, blob_->data.data() + offset, size);
    return Status::OK();
  }

  uint64_t Size() const override { return blob_->data.size(); }

 private:
  std::shared_ptr<FileBlob> blob_;
};

class MemEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto blob = std::make_shared<FileBlob>();
    files_[path] = blob;
    *out = std::make_unique<MemWritableFile>(std::move(blob));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    *out = std::make_unique<MemRandomAccessFile>(it->second);
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(path) == 0) return Status::NotFound(path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(path) > 0;
  }

  Result<uint64_t> FileSize(const std::string& path) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    return static_cast<uint64_t>(it->second->data.size());
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileBlob>> files_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace skyline
