#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>

#include "common/status.h"
#include "env/env.h"

namespace skyline {
namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IoError(context + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t size) override {
    if (fd_ < 0) return Status::IoError("append to closed file: " + path_);
    size_t remaining = size;
    while (remaining > 0) {
      ssize_t n = ::write(fd_, data, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_);
      }
      data += n;
      remaining -= static_cast<size_t>(n);
    }
    size_ += size;
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0) {
      if (::close(fd_) != 0) {
        fd_ = -1;
        return ErrnoStatus("close " + path_);
      }
      fd_ = -1;
    }
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_ = 0;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t size, char* scratch) const override {
    if (offset + size > size_) return Status::OutOfRange("read past EOF: " + path_);
    size_t remaining = size;
    uint64_t pos = offset;
    while (remaining > 0) {
      ssize_t n = ::pread(fd_, scratch, remaining, static_cast<off_t>(pos));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_);
      }
      if (n == 0) return Status::OutOfRange("unexpected EOF: " + path_);
      scratch += n;
      pos += static_cast<uint64_t>(n);
      remaining -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

  void Hint(AccessPattern pattern, uint64_t offset,
            uint64_t size) const override {
#if defined(POSIX_FADV_SEQUENTIAL)
    const int advice = pattern == AccessPattern::kSequential
                           ? POSIX_FADV_SEQUENTIAL
                           : POSIX_FADV_WILLNEED;
    // Advisory only; failure changes nothing observable.
    (void)::posix_fadvise(fd_, static_cast<off_t>(offset),
                          static_cast<off_t>(size), advice);
#else
    (void)pattern;
    (void)offset;
    (void)size;
#endif
  }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return ErrnoStatus("open for write " + path);
    *out = std::make_unique<PosixWritableFile>(path, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("open for read " + path);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return ErrnoStatus("fstat " + path);
    }
    *out = std::make_unique<PosixRandomAccessFile>(
        path, fd, static_cast<uint64_t>(st.st_size));
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("unlink " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) const override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("stat " + path);
    }
    return static_cast<uint64_t>(st.st_size);
  }
};

}  // namespace

std::unique_ptr<Env> NewPosixEnv() { return std::make_unique<PosixEnv>(); }

}  // namespace skyline
