#include "exec/limit.h"

// Header-only; this translation unit anchors the target.
