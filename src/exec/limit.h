#ifndef SKYLINE_EXEC_LIMIT_H_
#define SKYLINE_EXEC_LIMIT_H_

#include <cstdint>
#include <memory>

#include "exec/operator.h"

namespace skyline {

/// Emits at most `limit` child rows, then stops pulling — on top of an SFS
/// skyline this realizes the paper's "stop early / top-N" use (Section 4.4):
/// the filter pass simply never runs past the N-th confirmed tuple.
class LimitOperator : public Operator {
 public:
  LimitOperator(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Status& status() const override { return child_->status(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  std::string PlanNodeLabel() const override {
    return "Limit " + std::to_string(limit_);
  }
  const Operator* PlanChild() const override { return child_.get(); }
  void CollectOperatorDetail(PlanNodeStats* node) const override {
    node->counters.emplace_back("limit", limit_);
  }

  uint64_t emitted() const { return emitted_; }

 protected:
  Status OpenImpl() override { return child_->Open(); }

  const char* NextImpl() override {
    if (emitted_ >= limit_) return nullptr;
    const char* row = child_->Next();
    if (row != nullptr) ++emitted_;
    return row;
  }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_LIMIT_H_
