#include "exec/operator.h"

#include "common/trace.h"

namespace skyline {

Status Operator::Open() {
  if (!timing_) return OpenImpl();
  const uint64_t start = TraceClockNanos();
  Status st = OpenImpl();
  op_stats_.open_ns += TraceClockNanos() - start;
  return st;
}

const char* Operator::Next() {
  ++op_stats_.next_calls;
  const char* row;
  if (timing_) {
    const uint64_t start = TraceClockNanos();
    row = NextImpl();
    op_stats_.next_ns += TraceClockNanos() - start;
  } else {
    row = NextImpl();
  }
  if (row != nullptr) ++op_stats_.rows_out;
  return row;
}

void Operator::EnableTimingRecursive() {
  for (Operator* op = this; op != nullptr;
       // Plan children are only exposed const (for EXPLAIN); the timing
       // flag is execution state on the same mutable tree we are part of.
       op = const_cast<Operator*>(op->PlanChild())) {
    op->timing_ = true;
  }
}

std::string ExplainPlan(const Operator& root) {
  std::string out;
  int depth = 0;
  for (const Operator* op = &root; op != nullptr; op = op->PlanChild()) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += op->PlanNodeLabel();
    out += "\n";
    ++depth;
  }
  return out;
}

std::vector<PlanNodeStats> CollectPlanStats(const Operator& root) {
  std::vector<PlanNodeStats> plan;
  uint32_t depth = 0;
  for (const Operator* op = &root; op != nullptr; op = op->PlanChild()) {
    const OperatorStats& stats = op->op_stats();
    PlanNodeStats node;
    node.label = op->PlanNodeLabel();
    node.depth = depth++;
    node.rows_out = stats.rows_out;
    node.next_calls = stats.next_calls;
    node.open_ns = stats.open_ns;
    node.total_ns = stats.open_ns + stats.next_ns;
    const Operator* child = op->PlanChild();
    if (child != nullptr) {
      const OperatorStats& child_stats = child->op_stats();
      node.rows_in = child_stats.rows_out;
      const uint64_t child_total = child_stats.open_ns + child_stats.next_ns;
      node.self_ns =
          node.total_ns > child_total ? node.total_ns - child_total : 0;
    } else {
      node.self_ns = node.total_ns;
    }
    op->CollectOperatorDetail(&node);
    plan.push_back(std::move(node));
  }
  return plan;
}

}  // namespace skyline
