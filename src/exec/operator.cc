#include "exec/operator.h"

namespace skyline {

std::string ExplainPlan(const Operator& root) {
  std::string out;
  int depth = 0;
  for (const Operator* op = &root; op != nullptr; op = op->PlanChild()) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += op->PlanNodeLabel();
    out += "\n";
    ++depth;
  }
  return out;
}

}  // namespace skyline
