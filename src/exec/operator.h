#ifndef SKYLINE_EXEC_OPERATOR_H_
#define SKYLINE_EXEC_OPERATOR_H_

#include <string>

#include "common/status.h"
#include "relation/schema.h"

namespace skyline {

/// Volcano-style pull operator. The exec layer demonstrates the paper's
/// integration argument: SFS composes with ordinary relational operators
/// (selection below it, projection/limit above it) and its pipelined output
/// supports top-N early termination.
///
/// Protocol: Open() once, then Next() until it returns nullptr; check
/// status() to distinguish exhaustion from error. Returned row pointers are
/// valid only until the next call on the same operator.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open() = 0;

  /// Next output row (output_schema().row_width() bytes) or nullptr.
  virtual const char* Next() = 0;

  virtual const Status& status() const = 0;

  virtual const Schema& output_schema() const = 0;

  /// One-line description for EXPLAIN output, e.g.
  /// "Skyline[SFS] of S max, price min".
  virtual std::string PlanNodeLabel() const { return "Operator"; }

  /// The input operator, or nullptr for leaves. All current operators are
  /// unary chains.
  virtual const Operator* PlanChild() const { return nullptr; }
};

/// Formats an operator tree as an indented EXPLAIN-style plan, root first:
///
///   Limit 10
///     Skyline[SFS] of rating max, price min
///       Select <predicate>
///         TableScan hotels (50000 rows)
std::string ExplainPlan(const Operator& root);

}  // namespace skyline

#endif  // SKYLINE_EXEC_OPERATOR_H_
