#ifndef SKYLINE_EXEC_OPERATOR_H_
#define SKYLINE_EXEC_OPERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/plan_stats.h"
#include "relation/schema.h"

namespace skyline {

/// Always-on per-operator runtime counters, maintained by the Operator
/// base class around every Open()/Next() call. Row and call counts are
/// free (two increments per row); the time fields are populated only when
/// timing was switched on for the tree (EnableTimingRecursive — the
/// EXPLAIN ANALYZE path), so the plain execution path never reads the
/// clock per row.
struct OperatorStats {
  /// Rows returned by Next() (excludes the terminating nullptr).
  uint64_t rows_out = 0;
  /// Next() calls, including the one that returned nullptr.
  uint64_t next_calls = 0;
  /// Wall nanoseconds inside Open() (timing enabled only). Blocking
  /// operators (sort, non-pipelined skyline) do their work here.
  uint64_t open_ns = 0;
  /// Cumulative wall nanoseconds across all Next() calls (timing enabled
  /// only). Includes time the operator spends pulling from its child.
  uint64_t next_ns = 0;
};

/// Volcano-style pull operator. The exec layer demonstrates the paper's
/// integration argument: SFS composes with ordinary relational operators
/// (selection below it, projection/limit above it) and its pipelined output
/// supports top-N early termination.
///
/// Protocol: Open() once, then Next() until it returns nullptr; check
/// status() to distinguish exhaustion from error. Returned row pointers are
/// valid only until the next call on the same operator.
///
/// Open()/Next() are non-virtual wrappers that maintain OperatorStats
/// around the protected OpenImpl()/NextImpl() an operator implements;
/// parents pull from children through the public wrappers, so child stats
/// stay accurate even when a blocking parent drains its input inside
/// OpenImpl().
class Operator {
 public:
  virtual ~Operator() = default;

  Status Open();

  /// Next output row (output_schema().row_width() bytes) or nullptr.
  const char* Next();

  virtual const Status& status() const = 0;

  virtual const Schema& output_schema() const = 0;

  /// One-line description for EXPLAIN output, e.g.
  /// "Skyline[SFS] of S max, price min".
  virtual std::string PlanNodeLabel() const { return "Operator"; }

  /// The input operator, or nullptr for leaves. All current operators are
  /// unary chains.
  virtual const Operator* PlanChild() const { return nullptr; }

  /// Counters maintained by the Open()/Next() wrappers. Named op_stats()
  /// because several operators expose an algorithm-level stats() of their
  /// own (SkylineRunStats).
  const OperatorStats& op_stats() const { return op_stats_; }

  /// Switches on wall-clock timing for this operator and every operator
  /// below it. Call before Open(); the EXPLAIN ANALYZE path does.
  void EnableTimingRecursive();

  /// Adds operator-specific counters ("window_comparisons", "heap_peak",
  /// "pages_read", ...) and notes ("access", "kernel", ...) to an already
  /// base-populated plan node. Called after execution by CollectPlanStats.
  virtual void CollectOperatorDetail(PlanNodeStats* node) const {
    (void)node;
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual const char* NextImpl() = 0;

 private:
  OperatorStats op_stats_;
  bool timing_ = false;
};

/// Formats an operator tree as an indented EXPLAIN-style plan, root first:
///
///   Limit 10
///     Skyline[SFS] of rating max, price min
///       Select <predicate>
///         TableScan hotels (50000 rows)
std::string ExplainPlan(const Operator& root);

/// Walks the (executed) tree root-first and builds one PlanNodeStats per
/// operator: base counters from op_stats(), rows_in from the child's
/// rows_out, self time as own total minus child total (clamped at 0), and
/// operator detail via CollectOperatorDetail.
std::vector<PlanNodeStats> CollectPlanStats(const Operator& root);

}  // namespace skyline

#endif  // SKYLINE_EXEC_OPERATOR_H_
