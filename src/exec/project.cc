#include "exec/project.h"

#include <cstring>
#include <utility>

namespace skyline {

Result<std::unique_ptr<ProjectOperator>> ProjectOperator::Make(
    std::unique_ptr<Operator> child,
    const std::vector<std::string>& columns) {
  const Schema& in = child->output_schema();
  std::vector<ColumnDef> defs;
  std::vector<size_t> sources;
  defs.reserve(columns.size());
  sources.reserve(columns.size());
  for (const auto& name : columns) {
    SKYLINE_ASSIGN_OR_RETURN(size_t idx, in.ColumnIndex(name));
    defs.push_back(in.column(idx));
    sources.push_back(idx);
  }
  SKYLINE_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(defs)));
  return std::unique_ptr<ProjectOperator>(new ProjectOperator(
      std::move(child), std::move(schema), std::move(sources)));
}

ProjectOperator::ProjectOperator(std::unique_ptr<Operator> child,
                                 Schema schema,
                                 std::vector<size_t> source_columns)
    : child_(std::move(child)),
      schema_(std::move(schema)),
      source_columns_(std::move(source_columns)),
      out_row_(schema_.row_width()) {}

const char* ProjectOperator::NextImpl() {
  const char* row = child_->Next();
  if (row == nullptr) return nullptr;
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < source_columns_.size(); ++i) {
    std::memcpy(out_row_.data() + schema_.offset(i),
                row + in.offset(source_columns_[i]), schema_.column_width(i));
  }
  return out_row_.data();
}

}  // namespace skyline
