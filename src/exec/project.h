#ifndef SKYLINE_EXEC_PROJECT_H_
#define SKYLINE_EXEC_PROJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/operator.h"

namespace skyline {

/// Projects the child's output onto a subset of its columns (by name, in
/// the requested order).
class ProjectOperator : public Operator {
 public:
  /// Validates column names against the child's schema.
  static Result<std::unique_ptr<ProjectOperator>> Make(
      std::unique_ptr<Operator> child, const std::vector<std::string>& columns);

  const Status& status() const override { return child_->status(); }
  const Schema& output_schema() const override { return schema_; }
  std::string PlanNodeLabel() const override {
    return "Project " + schema_.ToString();
  }
  const Operator* PlanChild() const override { return child_.get(); }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  const char* NextImpl() override;

 private:
  ProjectOperator(std::unique_ptr<Operator> child, Schema schema,
                  std::vector<size_t> source_columns);

  std::unique_ptr<Operator> child_;
  Schema schema_;
  std::vector<size_t> source_columns_;
  std::vector<char> out_row_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_PROJECT_H_
