#include "exec/query.h"

#include <utility>

namespace skyline {

Query::Query(Env* env, const Table* table, std::string temp_prefix)
    : env_(env), table_(table), temp_prefix_(std::move(temp_prefix)) {}

Query& Query::WithContext(const ExecContext* ctx) {
  ctx_ = ctx;
  return *this;
}

Query& Query::Where(RowPredicate predicate) {
  steps_.push_back([predicate = std::move(predicate)](
                       std::unique_ptr<Operator> child)
                       -> Result<std::unique_ptr<Operator>> {
    return std::unique_ptr<Operator>(
        new SelectOperator(std::move(child), predicate));
  });
  return *this;
}

Query& Query::SkylineOf(std::vector<Criterion> criteria,
                        SkylineAlgorithm algorithm, SfsOptions sfs_options,
                        BnlOptions bnl_options, SkylineConstraint constraint) {
  const std::string prefix =
      temp_prefix_ + ".step" + std::to_string(next_step_id_++);
  steps_.push_back(
      [this, prefix, criteria = std::move(criteria), algorithm,
       sfs_options = std::move(sfs_options),
       bnl_options = std::move(bnl_options),
       constraint = std::move(constraint)](std::unique_ptr<Operator> child)
          -> Result<std::unique_ptr<Operator>> {
        SKYLINE_ASSIGN_OR_RETURN(
            std::unique_ptr<SkylineOperator> op,
            SkylineOperator::Make(std::move(child), env_, prefix, criteria,
                                  algorithm, sfs_options, bnl_options,
                                  constraint));
        if (ctx_ != nullptr) op->set_exec_context(ctx_);
        return std::unique_ptr<Operator>(std::move(op));
      });
  return *this;
}

Query& Query::WinnowBy(PreferenceRelation prefers, WinnowOptions options) {
  const std::string prefix =
      temp_prefix_ + ".step" + std::to_string(next_step_id_++);
  steps_.push_back([this, prefix, prefers = std::move(prefers),
                    options](std::unique_ptr<Operator> child)
                       -> Result<std::unique_ptr<Operator>> {
    return std::unique_ptr<Operator>(new WinnowOperator(
        std::move(child), env_, prefix, prefers, options));
  });
  return *this;
}

Query& Query::Project(std::vector<std::string> columns) {
  steps_.push_back([columns = std::move(columns)](
                       std::unique_ptr<Operator> child)
                       -> Result<std::unique_ptr<Operator>> {
    SKYLINE_ASSIGN_OR_RETURN(std::unique_ptr<ProjectOperator> op,
                             ProjectOperator::Make(std::move(child), columns));
    return std::unique_ptr<Operator>(std::move(op));
  });
  return *this;
}

Query& Query::OrderBy(const RowOrdering* ordering, SortOptions options) {
  const std::string prefix =
      temp_prefix_ + ".step" + std::to_string(next_step_id_++);
  steps_.push_back([this, prefix, ordering, options](
                       std::unique_ptr<Operator> child)
                       -> Result<std::unique_ptr<Operator>> {
    auto op = std::make_unique<SortOperator>(std::move(child), env_, prefix,
                                             ordering, options);
    if (ctx_ != nullptr) op->set_exec_context(ctx_);
    return std::unique_ptr<Operator>(std::move(op));
  });
  return *this;
}

Query& Query::Limit(uint64_t n) {
  steps_.push_back([n](std::unique_ptr<Operator> child)
                       -> Result<std::unique_ptr<Operator>> {
    return std::unique_ptr<Operator>(new LimitOperator(std::move(child), n));
  });
  return *this;
}

Result<std::unique_ptr<Operator>> Query::Build() {
  std::unique_ptr<Operator> root =
      std::make_unique<TableScanOperator>(table_);
  for (auto& step : steps_) {
    SKYLINE_ASSIGN_OR_RETURN(root, step(std::move(root)));
  }
  return root;
}

Result<std::string> Query::Explain() {
  SKYLINE_ASSIGN_OR_RETURN(std::unique_ptr<Operator> root, Build());
  return ExplainPlan(*root);
}

Status Query::Run(const std::function<Status(const RowView&)>& visitor) {
  SKYLINE_ASSIGN_OR_RETURN(std::unique_ptr<Operator> root, Build());
  SKYLINE_RETURN_IF_ERROR(root->Open());
  while (const char* row = root->Next()) {
    SKYLINE_RETURN_IF_ERROR(visitor(RowView(&root->output_schema(), row)));
  }
  return root->status();
}

Status Query::RunProfiled(const std::function<Status(const RowView&)>& visitor,
                          std::vector<PlanNodeStats>* plan) {
  SKYLINE_ASSIGN_OR_RETURN(std::unique_ptr<Operator> root, Build());
  root->EnableTimingRecursive();
  Status st = root->Open();
  if (st.ok()) {
    while (const char* row = root->Next()) {
      st = visitor(RowView(&root->output_schema(), row));
      if (!st.ok()) break;
    }
    if (st.ok()) st = root->status();
  }
  // The profile is collected even for failed runs — partial counters are
  // exactly what you want when diagnosing where a query died.
  if (plan != nullptr) *plan = CollectPlanStats(*root);
  return st;
}

}  // namespace skyline
