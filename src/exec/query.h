#ifndef SKYLINE_EXEC_QUERY_H_
#define SKYLINE_EXEC_QUERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/limit.h"
#include "exec/operator.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "exec/skyline_op.h"
#include "exec/sort_op.h"
#include "exec/winnow_op.h"
#include "relation/table.h"

namespace skyline {

/// Fluent pipeline builder over a base table — the library's highest-level
/// entry point, mirroring the paper's proposed SQL surface:
///
///   Query(env, &good_eats, "/tmp/q")
///       .Where([](const RowView& r) { return r.GetFloat64(4) < 60.0; })
///       .SkylineOf({{"S", Directive::kMax}, {"price", Directive::kMin}})
///       .Limit(3)
///       .Run(visitor);
///
/// Steps apply bottom-up in call order. Build() hands back the operator
/// tree; Run() drives it and visits each output row.
class Query {
 public:
  /// `env` and `table` must outlive the query and any built operator tree.
  Query(Env* env, const Table* table, std::string temp_prefix);

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;
  Query(Query&&) = default;

  /// Attaches an execution context (must outlive execution). The context's
  /// thread override, telemetry sinks, and cancellation hook apply to every
  /// context-aware step (SkylineOf, OrderBy) regardless of call order.
  Query& WithContext(const ExecContext* ctx);

  /// Filters rows by `predicate`.
  Query& Where(RowPredicate predicate);

  /// Applies the skyline operator with the given criteria. A non-empty
  /// `constraint` computes the constrained skyline (skyline of the rows
  /// inside the box; see core/skyline_constraint.h) — BBS probes it
  /// against the index natively, scan algorithms pre-filter.
  Query& SkylineOf(std::vector<Criterion> criteria,
                   SkylineAlgorithm algorithm = SkylineAlgorithm::kSfs,
                   SfsOptions sfs_options = SfsOptions{},
                   BnlOptions bnl_options = {},
                   SkylineConstraint constraint = {});

  /// Keeps the rows not dominated under an arbitrary strict-partial-order
  /// preference (the winnow operator; blocking, BNL-style evaluation).
  Query& WinnowBy(PreferenceRelation prefers,
                  WinnowOptions options = WinnowOptions{});

  /// Keeps only the named columns (in the given order).
  Query& Project(std::vector<std::string> columns);

  /// Sorts by `ordering` (must outlive execution).
  Query& OrderBy(const RowOrdering* ordering,
                 SortOptions options = SortOptions{});

  /// Emits at most `n` rows, stopping the pipeline early.
  Query& Limit(uint64_t n);

  /// Builds the operator tree (Open() not yet called).
  Result<std::unique_ptr<Operator>> Build();

  /// Builds the tree and renders it as an indented EXPLAIN plan.
  Result<std::string> Explain();

  /// Builds, opens, and drives the pipeline, calling `visitor` per row.
  Status Run(const std::function<Status(const RowView&)>& visitor);

  /// Like Run(), but with per-operator wall-clock timing enabled on the
  /// tree, and — on completion (even a failed one) — fills `plan` with the
  /// collected per-operator profile (CollectPlanStats). Null `plan` just
  /// runs with timing on. The EXPLAIN ANALYZE entry point.
  Status RunProfiled(const std::function<Status(const RowView&)>& visitor,
                     std::vector<PlanNodeStats>* plan);

 private:
  using Step = std::function<Result<std::unique_ptr<Operator>>(
      std::unique_ptr<Operator>)>;

  Env* env_;
  const Table* table_;
  std::string temp_prefix_;
  const ExecContext* ctx_ = nullptr;
  uint64_t next_step_id_ = 0;
  std::vector<Step> steps_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_QUERY_H_
