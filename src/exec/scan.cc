#include "exec/scan.h"

namespace skyline {

TableScanOperator::TableScanOperator(const Table* table, IoStats* io)
    : table_(table), io_(io == nullptr ? &own_io_ : io) {}

Status TableScanOperator::OpenImpl() {
  reader_ = std::make_unique<HeapFileReader>(
      table_->env(), table_->path(), table_->schema().row_width(), io_);
  return reader_->Open();
}

const char* TableScanOperator::NextImpl() {
  if (!status_.ok()) return nullptr;
  const char* row = reader_->Next();
  if (row == nullptr) status_ = reader_->status();
  return row;
}

void TableScanOperator::CollectOperatorDetail(PlanNodeStats* node) const {
  if (io_->pages_read > 0) {
    node->counters.emplace_back("pages_read", io_->pages_read);
  }
}

}  // namespace skyline
