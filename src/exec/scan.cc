#include "exec/scan.h"

namespace skyline {

TableScanOperator::TableScanOperator(const Table* table, IoStats* io)
    : table_(table), io_(io) {}

Status TableScanOperator::Open() {
  reader_ = std::make_unique<HeapFileReader>(
      table_->env(), table_->path(), table_->schema().row_width(), io_);
  return reader_->Open();
}

const char* TableScanOperator::Next() {
  if (!status_.ok()) return nullptr;
  const char* row = reader_->Next();
  if (row == nullptr) status_ = reader_->status();
  return row;
}

}  // namespace skyline
