#ifndef SKYLINE_EXEC_SCAN_H_
#define SKYLINE_EXEC_SCAN_H_

#include <memory>

#include "exec/operator.h"
#include "relation/table.h"
#include "storage/heap_file.h"
#include "storage/io_stats.h"

namespace skyline {

/// Full sequential scan of a table. `io` (may be null) counts pages read.
class TableScanOperator : public Operator {
 public:
  /// `table` must outlive the operator.
  explicit TableScanOperator(const Table* table, IoStats* io = nullptr);

  const Status& status() const override { return status_; }
  const Schema& output_schema() const override { return table_->schema(); }
  /// The scanned base table — lets a parent operator recognize a pure
  /// table-scan child and work on the table directly (its persisted
  /// sidecars included) instead of re-materializing the stream.
  const Table* table() const { return table_; }
  std::string PlanNodeLabel() const override {
    return "TableScan " + table_->path() + " (" +
           std::to_string(table_->row_count()) + " rows)";
  }
  void CollectOperatorDetail(PlanNodeStats* node) const override;

 protected:
  Status OpenImpl() override;
  const char* NextImpl() override;

 private:
  const Table* table_;
  IoStats* io_;
  IoStats own_io_;  // used when the caller did not supply a counter
  std::unique_ptr<HeapFileReader> reader_;
  Status status_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_SCAN_H_
