#include "exec/select.h"

#include <utility>

namespace skyline {

SelectOperator::SelectOperator(std::unique_ptr<Operator> child,
                               RowPredicate predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

const char* SelectOperator::NextImpl() {
  while (const char* row = child_->Next()) {
    if (predicate_(RowView(&child_->output_schema(), row))) return row;
  }
  return nullptr;
}

}  // namespace skyline
