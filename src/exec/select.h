#ifndef SKYLINE_EXEC_SELECT_H_
#define SKYLINE_EXEC_SELECT_H_

#include <functional>
#include <memory>

#include "exec/operator.h"
#include "relation/row.h"

namespace skyline {

/// Row predicate over the child's schema.
using RowPredicate = std::function<bool(const RowView&)>;

/// Filters child rows by a predicate. Selection below a skyline operator is
/// the composition the paper stresses index-based methods cannot support
/// (skyline does not commute with selection, so it must run above it).
class SelectOperator : public Operator {
 public:
  SelectOperator(std::unique_ptr<Operator> child, RowPredicate predicate);

  const Status& status() const override { return child_->status(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string PlanNodeLabel() const override { return "Select <predicate>"; }
  const Operator* PlanChild() const override { return child_.get(); }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  const char* NextImpl() override;

 private:
  std::unique_ptr<Operator> child_;
  RowPredicate predicate_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_SELECT_H_
