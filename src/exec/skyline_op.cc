#include "exec/skyline_op.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/scoring.h"
#include "core/sfs_parallel.h"
#include "core/special2d.h"
#include "core/special3d.h"

namespace skyline {

Result<std::unique_ptr<SkylineOperator>> SkylineOperator::Make(
    std::unique_ptr<Operator> child, Env* env, std::string temp_prefix,
    std::vector<Criterion> criteria, SkylineAlgorithm algorithm,
    SfsOptions sfs_options, BnlOptions bnl_options) {
  SKYLINE_ASSIGN_OR_RETURN(
      SkylineSpec spec,
      SkylineSpec::Make(child->output_schema(), std::move(criteria)));
  return std::unique_ptr<SkylineOperator>(new SkylineOperator(
      std::move(child), env, std::move(temp_prefix), std::move(spec),
      algorithm, std::move(sfs_options), std::move(bnl_options)));
}

SkylineOperator::SkylineOperator(std::unique_ptr<Operator> child, Env* env,
                                 std::string temp_prefix, SkylineSpec spec,
                                 SkylineAlgorithm algorithm,
                                 SfsOptions sfs_options,
                                 BnlOptions bnl_options)
    : child_(std::move(child)),
      env_(env),
      temp_files_(env, std::move(temp_prefix)),
      spec_(std::move(spec)),
      algorithm_(algorithm),
      sfs_options_(std::move(sfs_options)),
      bnl_options_(std::move(bnl_options)) {}

Status SkylineOperator::Open() {
  SKYLINE_RETURN_IF_ERROR(child_->Open());

  // Materialize the child into a temp table; TableBuilder collects the
  // column statistics the entropy presort normalizes with.
  const std::string staged = temp_files_.Allocate("skyline_input");
  TableBuilder builder(env_, staged, child_->output_schema());
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  while (const char* row = child_->Next()) {
    SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
  }
  SKYLINE_RETURN_IF_ERROR(child_->status());
  SKYLINE_ASSIGN_OR_RETURN(Table staged_table, builder.Finish());
  input_table_.emplace(std::move(staged_table));

  if (algorithm_ == SkylineAlgorithm::kBnl) {
    // BNL blocks on output: compute everything up front.
    const std::string out = temp_files_.Allocate("bnl_result");
    SKYLINE_ASSIGN_OR_RETURN(
        Table result,
        ComputeSkylineBnl(*input_table_, spec_, bnl_options_, out, &stats_));
    bnl_result_.emplace(std::move(result));
    bnl_reader_ = bnl_result_->NewReader(nullptr);
    return Status::OK();
  }
  if (algorithm_ == SkylineAlgorithm::kAuto &&
      (spec_.value_columns().size() == 2 ||
       spec_.value_columns().size() == 3)) {
    // Low-dimensional special case: windowless sorted scan/sweep. Its
    // output is a materialized table, streamed like BNL's.
    SortOptions sort_options = sfs_options_.sort_options;
    if (sfs_options_.threads != 1 && sort_options.threads == 1) {
      sort_options.threads = sfs_options_.threads;
    }
    const std::string out = temp_files_.Allocate("special_result");
    SKYLINE_ASSIGN_OR_RETURN(
        Table result,
        spec_.value_columns().size() == 2
            ? ComputeSkyline2D(*input_table_, spec_, sort_options, out,
                               &stats_)
            : ComputeSkyline3D(*input_table_, spec_, sort_options, out,
                               &stats_));
    bnl_result_.emplace(std::move(result));
    bnl_reader_ = bnl_result_->NewReader(nullptr);
    return Status::OK();
  }

  // SFS: presort now (blocking), then stream the filter.
  std::string sorted_path = input_table_->path();
  if (sfs_options_.presort != Presort::kNone) {
    std::unique_ptr<RowOrdering> owned;
    const RowOrdering* ordering = sfs_options_.custom_ordering;
    if (sfs_options_.presort == Presort::kNested) {
      owned = MakeNestedSkylineOrdering(spec_);
      ordering = owned.get();
    } else if (sfs_options_.presort == Presort::kEntropy) {
      owned = std::make_unique<EntropyOrdering>(&spec_, *input_table_);
      ordering = owned.get();
    } else if (ordering == nullptr) {
      return Status::InvalidArgument(
          "Presort::kCustom requires SfsOptions::custom_ordering");
    }
    SortOptions sort_options = sfs_options_.sort_options;
    if (sfs_options_.threads != 1 && sort_options.threads == 1) {
      sort_options.threads = sfs_options_.threads;
    }
    Stopwatch sort_timer;
    SKYLINE_ASSIGN_OR_RETURN(
        sorted_path,
        SortHeapFile(env_, &temp_files_, input_table_->path(),
                     spec_.schema().row_width(), *ordering, sort_options,
                     &stats_.sort_stats));
    stats_.sort_seconds = sort_timer.ElapsedSeconds();
  }
  if (ResolveThreadCount(sfs_options_.threads) > 1 &&
      sfs_options_.residue_path.empty()) {
    // Block-parallel filter: materialize (the blocks are computed eagerly
    // anyway), then stream the result like the other materialized paths.
    Stopwatch filter_timer;
    ParallelSfsOptions popt;
    popt.window_pages = sfs_options_.window_pages;
    popt.use_projection = sfs_options_.use_projection;
    popt.threads = sfs_options_.threads;
    const std::string out = temp_files_.Allocate("psfs_result");
    TableBuilder builder(env_, out, spec_.schema());
    SKYLINE_RETURN_IF_ERROR(builder.Open());
    SKYLINE_RETURN_IF_ERROR(ParallelSfsFilter(
        env_, sorted_path, spec_, popt,
        [&builder](const char* row) { return builder.AppendRaw(row); },
        &stats_));
    stats_.filter_seconds = filter_timer.ElapsedSeconds();
    SKYLINE_ASSIGN_OR_RETURN(Table result, builder.Finish());
    bnl_result_.emplace(std::move(result));
    bnl_reader_ = bnl_result_->NewReader(nullptr);
    return Status::OK();
  }
  sfs_ = std::make_unique<SfsIterator>(
      env_, &temp_files_, sorted_path, &spec_, sfs_options_.window_pages,
      sfs_options_.use_projection, &stats_);
  return sfs_->Open();
}

const char* SkylineOperator::Next() {
  if (!status_.ok()) return nullptr;
  if (bnl_reader_ != nullptr) {
    // Materialized result (BNL or an auto-selected special-case scan).
    const char* row = bnl_reader_->Next();
    if (row == nullptr) status_ = bnl_reader_->status();
    return row;
  }
  if (sfs_ == nullptr) return nullptr;
  const char* row = sfs_->Next();
  if (row == nullptr) status_ = sfs_->status();
  return row;
}

}  // namespace skyline
