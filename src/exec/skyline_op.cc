#include "exec/skyline_op.h"

#include <cstdio>
#include <string_view>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/bbs.h"
#include "core/compute_skyline.h"
#include "core/run_report.h"
#include "core/scoring.h"
#include "exec/scan.h"

namespace skyline {

Result<std::unique_ptr<SkylineOperator>> SkylineOperator::Make(
    std::unique_ptr<Operator> child, Env* env, std::string temp_prefix,
    std::vector<Criterion> criteria, SkylineAlgorithm algorithm,
    SfsOptions sfs_options, BnlOptions bnl_options,
    SkylineConstraint constraint) {
  SKYLINE_ASSIGN_OR_RETURN(
      SkylineSpec spec,
      SkylineSpec::Make(child->output_schema(), std::move(criteria)));
  return std::unique_ptr<SkylineOperator>(new SkylineOperator(
      std::move(child), env, std::move(temp_prefix), std::move(spec),
      algorithm, std::move(sfs_options), std::move(bnl_options),
      std::move(constraint)));
}

SkylineOperator::SkylineOperator(std::unique_ptr<Operator> child, Env* env,
                                 std::string temp_prefix, SkylineSpec spec,
                                 SkylineAlgorithm algorithm,
                                 SfsOptions sfs_options,
                                 BnlOptions bnl_options,
                                 SkylineConstraint constraint)
    : child_(std::move(child)),
      env_(env),
      temp_files_(env, std::move(temp_prefix)),
      spec_(std::move(spec)),
      algorithm_(algorithm),
      sfs_options_(std::move(sfs_options)),
      bnl_options_(std::move(bnl_options)),
      constraint_(std::move(constraint)) {}

Status SkylineOperator::OpenImpl() {
  static const ExecContext* const kNoContext = new ExecContext();
  const ExecContext& ctx = exec_ != nullptr ? *exec_ : *kNoContext;
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());

  // A pure table-scan child needs no staging: compute over the base table
  // itself, keeping its persisted sidecars (column file, z-order index)
  // reachable. BBS's whole point is *not* reading the table, so copying
  // it through a temp file first would both defeat the index and pay the
  // scan it avoids. Any other child is materialized into a temp table;
  // TableBuilder collects the column statistics the entropy presort
  // normalizes with.
  const Table* input = nullptr;
  if (const auto* scan = dynamic_cast<const TableScanOperator*>(child_.get())) {
    input = scan->table();
  } else {
    SKYLINE_RETURN_IF_ERROR(child_->Open());
    const std::string staged = temp_files_.Allocate("skyline_input");
    TableBuilder builder(env_, staged, child_->output_schema());
    SKYLINE_RETURN_IF_ERROR(builder.Open());
    while (const char* row = child_->Next()) {
      SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
    }
    SKYLINE_RETURN_IF_ERROR(child_->status());
    SKYLINE_ASSIGN_OR_RETURN(Table staged_table, builder.Finish());
    input_table_.emplace(std::move(staged_table));
    input = &*input_table_;
  }

  // Everything except pipelined sequential SFS produces a materialized
  // table: hand those paths to the unified dispatch (which also publishes
  // run stats to the context's metrics sink) and stream the result. A
  // constraint, an explicit BBS request, or a kAuto query over an indexed
  // table must also go through the dispatch — the pipelined shortcut
  // would silently skip the index path and the constraint.
  const bool pipelined_sfs =
      algorithm_ != SkylineAlgorithm::kBnl &&
      algorithm_ != SkylineAlgorithm::kBbs &&
      !(algorithm_ == SkylineAlgorithm::kAuto &&
        SkylineAutoUsesSpecialScan(spec_)) &&
      !(algorithm_ == SkylineAlgorithm::kAuto && BbsCandidate(*input, spec_)) &&
      constraint_.empty() &&
      (ctx.ResolveThreads(sfs_options_.threads) <= 1 ||
       !sfs_options_.residue_path.empty());
  if (!pipelined_sfs) {
    const std::string out = temp_files_.Allocate("skyline_result");
    SkylineComputeOptions compute_options;
    compute_options.sfs = sfs_options_;
    compute_options.bnl = bnl_options_;
    compute_options.constraint = constraint_;
    SKYLINE_ASSIGN_OR_RETURN(
        Table result, ComputeSkyline(algorithm_, *input, spec_, ctx, out,
                                     &stats_, compute_options));
    materialized_.emplace(std::move(result));
    materialized_reader_ = materialized_->NewReader(nullptr);
    return Status::OK();
  }

  // Sequential SFS: presort now (blocking), then stream the filter so rows
  // pipeline out as they are confirmed.
  std::string sorted_path = input->path();
  if (sfs_options_.presort != Presort::kNone) {
    std::unique_ptr<RowOrdering> owned;
    const RowOrdering* ordering = sfs_options_.custom_ordering;
    if (sfs_options_.presort == Presort::kNested) {
      owned = MakeNestedSkylineOrdering(spec_);
      ordering = owned.get();
    } else if (sfs_options_.presort == Presort::kEntropy) {
      owned = std::make_unique<EntropyOrdering>(&spec_, *input);
      ordering = owned.get();
    } else if (ordering == nullptr) {
      return Status::InvalidArgument(
          "Presort::kCustom requires SfsOptions::custom_ordering");
    }
    SortOptions sort_options = sfs_options_.sort_options;
    const size_t requested = ctx.RequestedThreads(sfs_options_.threads);
    if (ctx.threads.has_value()) {
      sort_options.threads = ctx.ResolveThreads(sort_options.threads);
    } else if (requested != 1 && sort_options.threads == 1) {
      sort_options.threads = requested;
    }
    Stopwatch sort_timer;
    TraceSpan presort_span(ctx.trace, "presort");
    SKYLINE_ASSIGN_OR_RETURN(
        sorted_path,
        SortHeapFile(env_, &temp_files_, input->path(),
                     spec_.schema().row_width(), *ordering, sort_options, ctx,
                     &stats_.sort_stats));
    presort_span.End();
    stats_.sort_seconds = sort_timer.ElapsedSeconds();
  }
  stats_.access_path = "sfs";
  sfs_ = std::make_unique<SfsIterator>(
      env_, &temp_files_, sorted_path, &spec_, sfs_options_.window_pages,
      sfs_options_.use_projection, &stats_);
  if (exec_ != nullptr) sfs_->set_exec_context(exec_);
  return sfs_->Open();
}

const char* SkylineOperator::NextImpl() {
  if (!status_.ok()) return nullptr;
  if (materialized_reader_ != nullptr) {
    // Materialized result (BNL, a special-case scan, or the parallel
    // filter).
    const char* row = materialized_reader_->Next();
    if (row == nullptr) status_ = materialized_reader_->status();
    return row;
  }
  if (sfs_ == nullptr) return nullptr;
  const char* row = sfs_->Next();
  if (row == nullptr) {
    status_ = sfs_->status();
    // The materialized paths publish inside ComputeSkyline; the pipelined
    // filter publishes here, once the stats have stopped moving.
    if (status_.ok() && exec_ != nullptr && !stats_published_) {
      PublishRunStats(exec_->metrics, "skyline.sfs", stats_);
      stats_published_ = true;
    }
  }
  return row;
}

void SkylineOperator::CollectOperatorDetail(PlanNodeStats* node) const {
  node->counters.emplace_back("input_rows", stats_.input_rows);
  node->counters.emplace_back("passes", stats_.passes);
  node->counters.emplace_back("window_comparisons", stats_.window_comparisons);
  if (stats_.merge_comparisons > 0) {
    node->counters.emplace_back("merge_comparisons", stats_.merge_comparisons);
  }
  if (stats_.window_blocks_pruned > 0) {
    node->counters.emplace_back("window_blocks_pruned",
                                stats_.window_blocks_pruned);
  }
  if (stats_.merge_blocks_pruned > 0) {
    node->counters.emplace_back("merge_blocks_pruned",
                                stats_.merge_blocks_pruned);
  }
  if (stats_.table_zone_blocks_pruned > 0) {
    node->counters.emplace_back("table_zone_blocks_pruned",
                                stats_.table_zone_blocks_pruned);
  }
  if (stats_.spilled_tuples > 0) {
    node->counters.emplace_back("spilled_tuples", stats_.spilled_tuples);
  }
  if (stats_.index_nodes_visited > 0) {
    node->counters.emplace_back("index_nodes_visited",
                                stats_.index_nodes_visited);
  }
  if (stats_.index_blocks_skipped > 0) {
    node->counters.emplace_back("index_blocks_skipped",
                                stats_.index_blocks_skipped);
  }
  if (stats_.heap_peak > 0) {
    node->counters.emplace_back("heap_peak", stats_.heap_peak);
  }
  node->counters.emplace_back("threads_used", stats_.threads_used);

  if (stats_.access_path[0] != '\0') {
    node->notes.emplace_back("access", stats_.access_path);
  }
  node->notes.emplace_back("kernel", stats_.dominance_kernel);
  if (std::string_view(stats_.partition_scheme) != "none") {
    node->notes.emplace_back("scheme", stats_.partition_scheme);
  }
  if (std::string_view(stats_.zone_map_source) != "none") {
    node->notes.emplace_back("zones", stats_.zone_map_source);
  }
  if (stats_.route_sample_rows > 0) {
    char route[160];
    std::snprintf(route, sizeof(route),
                  "sampled %llu rows -> %llu skyline, est %.0f vs bbs cutoff "
                  "%.0f",
                  static_cast<unsigned long long>(stats_.route_sample_rows),
                  static_cast<unsigned long long>(stats_.route_sample_skyline),
                  stats_.route_estimated_skyline, stats_.route_bbs_threshold);
    node->notes.emplace_back("route", route);
  }
}

}  // namespace skyline
