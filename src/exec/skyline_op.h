#ifndef SKYLINE_EXEC_SKYLINE_OP_H_
#define SKYLINE_EXEC_SKYLINE_OP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bnl.h"
#include "core/sfs.h"
#include "core/skyline_spec.h"
#include "exec/operator.h"
#include "relation/table.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// Which algorithm evaluates the skyline operator.
enum class SkylineAlgorithm {
  kSfs,
  kBnl,
  /// Pick automatically: the 2-dim scan or 3-dim staircase sweep when the
  /// spec has exactly that many MIN/MAX criteria (no window needed, O(n)
  /// dominance work), otherwise SFS. What a planner would do given the
  /// paper's Section 6 note that low-dimensional special cases "could be
  /// exploited".
  kAuto,
};

/// The relational skyline operator (the paper's proposed `SKYLINE OF`
/// clause). Blocks on input (materializes the child, then presorts for
/// SFS), but with SFS the *output* is pipelined: rows stream out as they
/// are confirmed, enabling Limit above it to stop the computation early.
/// With BNL the output is inherently blocking and is fully materialized
/// before the first Next() returns.
class SkylineOperator : public Operator {
 public:
  /// Validates `criteria` against the child's schema. `env` must outlive
  /// the operator; temp files live under `temp_prefix`.
  static Result<std::unique_ptr<SkylineOperator>> Make(
      std::unique_ptr<Operator> child, Env* env, std::string temp_prefix,
      std::vector<Criterion> criteria,
      SkylineAlgorithm algorithm = SkylineAlgorithm::kSfs,
      SfsOptions sfs_options = SfsOptions{}, BnlOptions bnl_options = {});

  Status Open() override;
  const char* Next() override;
  const Status& status() const override { return status_; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  std::string PlanNodeLabel() const override {
    const char* name = algorithm_ == SkylineAlgorithm::kBnl   ? "BNL"
                       : algorithm_ == SkylineAlgorithm::kAuto ? "auto"
                                                                : "SFS";
    return "Skyline[" + std::string(name) + "] " + spec_.ToString();
  }
  const Operator* PlanChild() const override { return child_.get(); }

  /// Run statistics (valid after the stream is exhausted; for SFS the pass
  /// counters update as the stream advances).
  const SkylineRunStats& stats() const { return stats_; }

 private:
  SkylineOperator(std::unique_ptr<Operator> child, Env* env,
                  std::string temp_prefix, SkylineSpec spec,
                  SkylineAlgorithm algorithm, SfsOptions sfs_options,
                  BnlOptions bnl_options);

  std::unique_ptr<Operator> child_;
  Env* env_;
  TempFileManager temp_files_;
  SkylineSpec spec_;
  SkylineAlgorithm algorithm_;
  SfsOptions sfs_options_;
  BnlOptions bnl_options_;
  SkylineRunStats stats_;

  std::optional<Table> input_table_;
  std::unique_ptr<SfsIterator> sfs_;
  std::optional<Table> bnl_result_;
  std::unique_ptr<HeapFileReader> bnl_reader_;
  Status status_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_SKYLINE_OP_H_
