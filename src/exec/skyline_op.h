#ifndef SKYLINE_EXEC_SKYLINE_OP_H_
#define SKYLINE_EXEC_SKYLINE_OP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "core/bnl.h"
#include "core/sfs.h"
#include "core/skyline_algorithm.h"
#include "core/skyline_constraint.h"
#include "core/skyline_spec.h"
#include "exec/operator.h"
#include "relation/table.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// The relational skyline operator (the paper's proposed `SKYLINE OF`
/// clause). Blocks on input (materializes the child, then presorts for
/// SFS), but with SFS the *output* is pipelined: rows stream out as they
/// are confirmed, enabling Limit above it to stop the computation early.
/// With BNL the output is inherently blocking and is fully materialized
/// before the first Next() returns.
class SkylineOperator : public Operator {
 public:
  /// Validates `criteria` against the child's schema. `env` must outlive
  /// the operator; temp files live under `temp_prefix`. A non-empty
  /// `constraint` computes the constrained skyline (skyline of the rows
  /// inside the box) — pushed down natively into BBS's index probe, or
  /// applied by pre-filtering for the scan algorithms.
  static Result<std::unique_ptr<SkylineOperator>> Make(
      std::unique_ptr<Operator> child, Env* env, std::string temp_prefix,
      std::vector<Criterion> criteria,
      SkylineAlgorithm algorithm = SkylineAlgorithm::kSfs,
      SfsOptions sfs_options = SfsOptions{}, BnlOptions bnl_options = {},
      SkylineConstraint constraint = {});

  /// Attaches an execution context (must outlive the operator; set before
  /// Open). Supplies the thread override, telemetry sinks, and
  /// cancellation for the skyline computation.
  void set_exec_context(const ExecContext* ctx) { exec_ = ctx; }

  const Status& status() const override { return status_; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  std::string PlanNodeLabel() const override {
    const char* name = algorithm_ == SkylineAlgorithm::kBnl    ? "BNL"
                       : algorithm_ == SkylineAlgorithm::kAuto ? "auto"
                       : algorithm_ == SkylineAlgorithm::kBbs  ? "BBS"
                                                               : "SFS";
    std::string label = "Skyline[" + std::string(name) + "] " +
                        spec_.ToString();
    if (!constraint_.empty()) label += " constrained";
    return label;
  }
  const Operator* PlanChild() const override { return child_.get(); }
  void CollectOperatorDetail(PlanNodeStats* node) const override;

  /// Run statistics (valid after the stream is exhausted; for SFS the pass
  /// counters update as the stream advances).
  const SkylineRunStats& stats() const { return stats_; }

 protected:
  Status OpenImpl() override;
  const char* NextImpl() override;

 private:
  SkylineOperator(std::unique_ptr<Operator> child, Env* env,
                  std::string temp_prefix, SkylineSpec spec,
                  SkylineAlgorithm algorithm, SfsOptions sfs_options,
                  BnlOptions bnl_options, SkylineConstraint constraint);

  std::unique_ptr<Operator> child_;
  Env* env_;
  TempFileManager temp_files_;
  SkylineSpec spec_;
  SkylineAlgorithm algorithm_;
  SfsOptions sfs_options_;
  BnlOptions bnl_options_;
  SkylineConstraint constraint_;
  const ExecContext* exec_ = nullptr;
  SkylineRunStats stats_;

  /// Staged child output — only when the child is not a pure table scan
  /// (a scan's base table is used directly, keeping its sidecars
  /// reachable for the index path).
  std::optional<Table> input_table_;
  std::unique_ptr<SfsIterator> sfs_;
  /// Result table + reader for the materialized paths (BNL, the
  /// auto-selected special scans, and the block-parallel filter).
  std::optional<Table> materialized_;
  std::unique_ptr<HeapFileReader> materialized_reader_;
  bool stats_published_ = false;
  Status status_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_SKYLINE_OP_H_
