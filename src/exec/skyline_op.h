#ifndef SKYLINE_EXEC_SKYLINE_OP_H_
#define SKYLINE_EXEC_SKYLINE_OP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "core/bnl.h"
#include "core/sfs.h"
#include "core/skyline_algorithm.h"
#include "core/skyline_spec.h"
#include "exec/operator.h"
#include "relation/table.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// The relational skyline operator (the paper's proposed `SKYLINE OF`
/// clause). Blocks on input (materializes the child, then presorts for
/// SFS), but with SFS the *output* is pipelined: rows stream out as they
/// are confirmed, enabling Limit above it to stop the computation early.
/// With BNL the output is inherently blocking and is fully materialized
/// before the first Next() returns.
class SkylineOperator : public Operator {
 public:
  /// Validates `criteria` against the child's schema. `env` must outlive
  /// the operator; temp files live under `temp_prefix`.
  static Result<std::unique_ptr<SkylineOperator>> Make(
      std::unique_ptr<Operator> child, Env* env, std::string temp_prefix,
      std::vector<Criterion> criteria,
      SkylineAlgorithm algorithm = SkylineAlgorithm::kSfs,
      SfsOptions sfs_options = SfsOptions{}, BnlOptions bnl_options = {});

  /// Attaches an execution context (must outlive the operator; set before
  /// Open). Supplies the thread override, telemetry sinks, and
  /// cancellation for the skyline computation.
  void set_exec_context(const ExecContext* ctx) { exec_ = ctx; }

  Status Open() override;
  const char* Next() override;
  const Status& status() const override { return status_; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  std::string PlanNodeLabel() const override {
    const char* name = algorithm_ == SkylineAlgorithm::kBnl   ? "BNL"
                       : algorithm_ == SkylineAlgorithm::kAuto ? "auto"
                                                                : "SFS";
    return "Skyline[" + std::string(name) + "] " + spec_.ToString();
  }
  const Operator* PlanChild() const override { return child_.get(); }

  /// Run statistics (valid after the stream is exhausted; for SFS the pass
  /// counters update as the stream advances).
  const SkylineRunStats& stats() const { return stats_; }

 private:
  SkylineOperator(std::unique_ptr<Operator> child, Env* env,
                  std::string temp_prefix, SkylineSpec spec,
                  SkylineAlgorithm algorithm, SfsOptions sfs_options,
                  BnlOptions bnl_options);

  std::unique_ptr<Operator> child_;
  Env* env_;
  TempFileManager temp_files_;
  SkylineSpec spec_;
  SkylineAlgorithm algorithm_;
  SfsOptions sfs_options_;
  BnlOptions bnl_options_;
  const ExecContext* exec_ = nullptr;
  SkylineRunStats stats_;

  std::optional<Table> input_table_;
  std::unique_ptr<SfsIterator> sfs_;
  /// Result table + reader for the materialized paths (BNL, the
  /// auto-selected special scans, and the block-parallel filter).
  std::optional<Table> materialized_;
  std::unique_ptr<HeapFileReader> materialized_reader_;
  bool stats_published_ = false;
  Status status_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_SKYLINE_OP_H_
