#include "exec/sort_op.h"

#include <utility>

namespace skyline {

SortOperator::SortOperator(std::unique_ptr<Operator> child, Env* env,
                           std::string temp_prefix,
                           const RowOrdering* ordering, SortOptions options)
    : child_(std::move(child)),
      env_(env),
      temp_files_(env, std::move(temp_prefix)),
      ordering_(ordering),
      options_(options) {}

Status SortOperator::Open() {
  SKYLINE_RETURN_IF_ERROR(child_->Open());
  const size_t width = child_->output_schema().row_width();

  // Materialize the child.
  const std::string staged = temp_files_.Allocate("sort_input");
  HeapFileWriter writer(env_, staged, width, nullptr);
  SKYLINE_RETURN_IF_ERROR(writer.Open());
  while (const char* row = child_->Next()) {
    SKYLINE_RETURN_IF_ERROR(writer.Append(row));
  }
  SKYLINE_RETURN_IF_ERROR(child_->status());
  SKYLINE_RETURN_IF_ERROR(writer.Finish());

  const ExecContext& ctx = exec_ != nullptr ? *exec_ : DefaultExecContext();
  SKYLINE_ASSIGN_OR_RETURN(
      std::string sorted,
      SortHeapFile(env_, &temp_files_, staged, width, *ordering_, options_,
                   ctx, nullptr));
  reader_ = std::make_unique<HeapFileReader>(env_, sorted, width, nullptr);
  return reader_->Open();
}

const char* SortOperator::Next() {
  if (!status_.ok() || reader_ == nullptr) return nullptr;
  const char* row = reader_->Next();
  if (row == nullptr) status_ = reader_->status();
  return row;
}

}  // namespace skyline
