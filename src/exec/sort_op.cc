#include "exec/sort_op.h"

#include <utility>

namespace skyline {

SortOperator::SortOperator(std::unique_ptr<Operator> child, Env* env,
                           std::string temp_prefix,
                           const RowOrdering* ordering, SortOptions options)
    : child_(std::move(child)),
      env_(env),
      temp_files_(env, std::move(temp_prefix)),
      ordering_(ordering),
      options_(options) {}

Status SortOperator::OpenImpl() {
  SKYLINE_RETURN_IF_ERROR(child_->Open());
  const size_t width = child_->output_schema().row_width();

  // Materialize the child.
  const std::string staged = temp_files_.Allocate("sort_input");
  HeapFileWriter writer(env_, staged, width, nullptr);
  SKYLINE_RETURN_IF_ERROR(writer.Open());
  while (const char* row = child_->Next()) {
    SKYLINE_RETURN_IF_ERROR(writer.Append(row));
  }
  SKYLINE_RETURN_IF_ERROR(child_->status());
  SKYLINE_RETURN_IF_ERROR(writer.Finish());

  static const ExecContext* const kNoContext = new ExecContext();
  const ExecContext& ctx = exec_ != nullptr ? *exec_ : *kNoContext;
  SKYLINE_ASSIGN_OR_RETURN(
      std::string sorted,
      SortHeapFile(env_, &temp_files_, staged, width, *ordering_, options_,
                   ctx, &sort_stats_));
  reader_ = std::make_unique<HeapFileReader>(env_, sorted, width, nullptr);
  return reader_->Open();
}

const char* SortOperator::NextImpl() {
  if (!status_.ok() || reader_ == nullptr) return nullptr;
  const char* row = reader_->Next();
  if (row == nullptr) status_ = reader_->status();
  return row;
}

void SortOperator::CollectOperatorDetail(PlanNodeStats* node) const {
  node->counters.emplace_back("runs_generated", sort_stats_.runs_generated);
  node->counters.emplace_back("merge_levels", sort_stats_.merge_levels);
  if (sort_stats_.records_filtered > 0) {
    node->counters.emplace_back("records_filtered",
                                sort_stats_.records_filtered);
  }
  node->counters.emplace_back("threads_used", sort_stats_.threads_used);
  node->counters.emplace_back("temp_pages",
                              sort_stats_.io.pages_read +
                                  sort_stats_.io.pages_written);
}

}  // namespace skyline
