#ifndef SKYLINE_EXEC_SORT_OP_H_
#define SKYLINE_EXEC_SORT_OP_H_

#include <memory>
#include <string>

#include "common/exec_context.h"
#include "exec/operator.h"
#include "sort/comparator.h"
#include "sort/external_sort.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// Blocking sort: materializes the child into a temp heap file, external-
/// sorts it, then streams the result.
class SortOperator : public Operator {
 public:
  /// `env` and `ordering` must outlive the operator. Temp files live under
  /// `temp_prefix`.
  SortOperator(std::unique_ptr<Operator> child, Env* env,
               std::string temp_prefix, const RowOrdering* ordering,
               SortOptions options = SortOptions{});

  /// Attaches an execution context (must outlive the operator; set before
  /// Open): thread override, trace spans, and cancellation for the sort.
  void set_exec_context(const ExecContext* ctx) { exec_ = ctx; }

  const Status& status() const override { return status_; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string PlanNodeLabel() const override { return "Sort (external)"; }
  const Operator* PlanChild() const override { return child_.get(); }
  void CollectOperatorDetail(PlanNodeStats* node) const override;

 protected:
  Status OpenImpl() override;
  const char* NextImpl() override;

 private:
  std::unique_ptr<Operator> child_;
  Env* env_;
  TempFileManager temp_files_;
  const RowOrdering* ordering_;
  SortOptions options_;
  const ExecContext* exec_ = nullptr;
  SortStats sort_stats_;
  std::unique_ptr<HeapFileReader> reader_;
  Status status_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_SORT_OP_H_
