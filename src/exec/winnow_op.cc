#include "exec/winnow_op.h"

#include <utility>

namespace skyline {

WinnowOperator::WinnowOperator(std::unique_ptr<Operator> child, Env* env,
                               std::string temp_prefix,
                               PreferenceRelation prefers,
                               WinnowOptions options)
    : child_(std::move(child)),
      env_(env),
      temp_files_(env, std::move(temp_prefix)),
      prefers_(std::move(prefers)),
      options_(std::move(options)) {}

Status WinnowOperator::OpenImpl() {
  SKYLINE_RETURN_IF_ERROR(child_->Open());
  const std::string staged = temp_files_.Allocate("winnow_input");
  TableBuilder builder(env_, staged, child_->output_schema());
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  while (const char* row = child_->Next()) {
    SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(row));
  }
  SKYLINE_RETURN_IF_ERROR(child_->status());
  SKYLINE_ASSIGN_OR_RETURN(Table staged_table, builder.Finish());

  const std::string out = temp_files_.Allocate("winnow_result");
  SKYLINE_ASSIGN_OR_RETURN(
      Table result, ComputeWinnow(staged_table, prefers_, options_, out,
                                  &stats_));
  result_.emplace(std::move(result));
  reader_ = result_->NewReader(nullptr);
  return Status::OK();
}

const char* WinnowOperator::NextImpl() {
  if (!status_.ok() || reader_ == nullptr) return nullptr;
  const char* row = reader_->Next();
  if (row == nullptr) status_ = reader_->status();
  return row;
}

void WinnowOperator::CollectOperatorDetail(PlanNodeStats* node) const {
  node->counters.emplace_back("input_rows", stats_.input_rows);
  node->counters.emplace_back("passes", stats_.passes);
  node->counters.emplace_back("window_comparisons", stats_.window_comparisons);
  if (stats_.window_replacements > 0) {
    node->counters.emplace_back("window_replacements",
                                stats_.window_replacements);
  }
  if (stats_.spilled_tuples > 0) {
    node->counters.emplace_back("spilled_tuples", stats_.spilled_tuples);
  }
}

}  // namespace skyline
