#ifndef SKYLINE_EXEC_WINNOW_OP_H_
#define SKYLINE_EXEC_WINNOW_OP_H_

#include <memory>
#include <optional>
#include <string>

#include "core/winnow.h"
#include "exec/operator.h"
#include "relation/table.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// Relational winnow operator: keeps the child's rows not dominated under
/// an arbitrary strict-partial-order preference. Blocking on both input
/// and output (the BNL-style evaluation cannot pipeline); use
/// SkylineOperator when the preference is attribute-wise dominance.
class WinnowOperator : public Operator {
 public:
  /// `env` must outlive the operator; temp files live under `temp_prefix`.
  WinnowOperator(std::unique_ptr<Operator> child, Env* env,
                 std::string temp_prefix, PreferenceRelation prefers,
                 WinnowOptions options = WinnowOptions{});

  const Status& status() const override { return status_; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

  std::string PlanNodeLabel() const override { return "Winnow <preference>"; }
  const Operator* PlanChild() const override { return child_.get(); }
  void CollectOperatorDetail(PlanNodeStats* node) const override;

  /// Run statistics (valid after Open).
  const SkylineRunStats& stats() const { return stats_; }

 protected:
  Status OpenImpl() override;
  const char* NextImpl() override;

 private:
  std::unique_ptr<Operator> child_;
  Env* env_;
  TempFileManager temp_files_;
  PreferenceRelation prefers_;
  WinnowOptions options_;
  SkylineRunStats stats_;
  std::optional<Table> result_;
  std::unique_ptr<HeapFileReader> reader_;
  Status status_;
};

}  // namespace skyline

#endif  // SKYLINE_EXEC_WINNOW_OP_H_
