#include "index/block_index.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace skyline {
namespace {

constexpr char kMagic[8] = {'S', 'K', 'Y', 'Z', 'I', 'D', 'X', '1'};
constexpr uint32_t kVersion = 1;
/// At most this many numeric columns contribute bits to the Morton key
/// (64-bit code, at least one bit per participating column).
constexpr size_t kMaxZOrderColumns = 64;

uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void PutScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetScalar(const std::string& in, size_t* pos, T* out) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(out, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

template <typename T>
void PutVector(std::string* out, const std::vector<T>& v) {
  if (!v.empty()) {
    out->append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(T));
  }
}

template <typename T>
bool GetVector(const std::string& in, size_t* pos, size_t count,
               std::vector<T>* out) {
  const size_t bytes = count * sizeof(T);
  if (*pos + bytes > in.size()) return false;
  out->resize(count);
  if (bytes > 0) std::memcpy(out->data(), in.data() + *pos, bytes);
  *pos += bytes;
  return true;
}

Status CorruptIndexFile(const std::string& path, const std::string& what) {
  return Status::Corruption("block index " + path + ": " + what);
}

/// Quantizes the center of [lo, hi] into [0, 2^bits) of the global range
/// [gmin, gmax]. __int128 everywhere: key ranges span the full int64 line
/// (float64 total-order bits do in practice).
uint64_t Quantize(int64_t lo, int64_t hi, int64_t gmin, int64_t gmax,
                  uint32_t bits) {
  if (gmax <= gmin) return 0;
  const __int128 center = (static_cast<__int128>(lo) + hi) / 2;
  const __int128 range = static_cast<__int128>(gmax) - gmin;
  const uint64_t maxq = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
  __int128 off = center - gmin;
  if (off < 0) off = 0;
  if (off > range) off = range;
  return static_cast<uint64_t>((off * maxq) / range);
}

size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

/// Number of packed levels a valid index over `leaves` leaf slots has:
/// level 0 always exists (when there are leaves), further levels until a
/// level fits within one root fan-in.
size_t ExpectedLevels(size_t leaves, uint32_t fanout) {
  if (leaves == 0) return 0;
  size_t levels = 1;
  size_t nodes = CeilDiv(leaves, fanout);
  while (nodes > fanout) {
    nodes = CeilDiv(nodes, fanout);
    ++levels;
  }
  return levels;
}

}  // namespace

size_t BlockSkylineIndex::ChildCount(size_t level, size_t node) const {
  const size_t children_total =
      level == 0 ? leaf_count() : LevelNodeCount(level - 1);
  const size_t start = node * fanout;
  if (start >= children_total) return 0;
  return std::min<size_t>(fanout, children_total - start);
}

Result<BlockSkylineIndex> BuildBlockIndex(
    uint32_t block_rows, uint64_t row_count,
    const std::vector<BlockIndexColumnZones>& columns, uint32_t fanout) {
  if (block_rows == 0 || fanout < 2 || columns.empty()) {
    return Status::InvalidArgument("block index needs block_rows, fanout >= 2"
                                   " and at least one column");
  }
  const size_t blocks =
      static_cast<size_t>((row_count + block_rows - 1) / block_rows);
  for (const auto& col : columns) {
    if (col.zmin == nullptr || col.zmax == nullptr ||
        col.zmin->size() != blocks || col.zmax->size() != blocks) {
      return Status::InvalidArgument(
          "block index zone maps do not cover every block");
    }
  }

  BlockSkylineIndex index;
  index.block_rows = block_rows;
  index.row_count = row_count;
  index.num_columns = static_cast<uint32_t>(columns.size());
  index.fanout = fanout;
  if (blocks == 0) return index;

  // Z-order the leaves: Morton code over the quantized zone centers of the
  // numeric columns, MSB-first round-robin so every column contributes its
  // high bits before any contributes low ones.
  std::vector<size_t> zcols;
  for (size_t c = 0; c < columns.size() && zcols.size() < kMaxZOrderColumns;
       ++c) {
    if (columns[c].numeric) zcols.push_back(c);
  }
  index.leaf_blocks.resize(blocks);
  std::iota(index.leaf_blocks.begin(), index.leaf_blocks.end(), 0u);
  if (!zcols.empty()) {
    const uint32_t bits = static_cast<uint32_t>(
        std::min<size_t>(16, std::max<size_t>(1, 64 / zcols.size())));
    std::vector<int64_t> gmin(zcols.size()), gmax(zcols.size());
    for (size_t i = 0; i < zcols.size(); ++i) {
      const auto& col = columns[zcols[i]];
      gmin[i] = *std::min_element(col.zmin->begin(), col.zmin->end());
      gmax[i] = *std::max_element(col.zmax->begin(), col.zmax->end());
    }
    std::vector<uint64_t> code(blocks, 0);
    std::vector<uint64_t> q(zcols.size());
    for (size_t b = 0; b < blocks; ++b) {
      for (size_t i = 0; i < zcols.size(); ++i) {
        const auto& col = columns[zcols[i]];
        q[i] = Quantize((*col.zmin)[b], (*col.zmax)[b], gmin[i], gmax[i],
                        bits);
      }
      uint64_t m = 0;
      for (uint32_t bit = bits; bit-- > 0;) {
        for (size_t i = 0; i < zcols.size(); ++i) {
          m = (m << 1) | ((q[i] >> bit) & 1);
        }
      }
      code[b] = m;
    }
    std::sort(index.leaf_blocks.begin(), index.leaf_blocks.end(),
              [&code](uint32_t a, uint32_t b) {
                return code[a] != code[b] ? code[a] < code[b] : a < b;
              });
  }

  // Pack interior levels bottom-up, aggregating per-column corners.
  const size_t ncols = columns.size();
  size_t children = blocks;
  size_t level = 0;
  while (level == 0 || children > fanout) {
    const size_t nodes = CeilDiv(children, fanout);
    BlockSkylineIndex::Level packed;
    packed.zmin.resize(nodes * ncols);
    packed.zmax.resize(nodes * ncols);
    for (size_t n = 0; n < nodes; ++n) {
      const size_t begin = n * fanout;
      const size_t end = std::min(begin + fanout, children);
      for (size_t c = 0; c < ncols; ++c) {
        int64_t lo = 0, hi = 0;
        for (size_t s = begin; s < end; ++s) {
          int64_t cmin, cmax;
          if (level == 0) {
            const uint32_t block = index.leaf_blocks[s];
            cmin = (*columns[c].zmin)[block];
            cmax = (*columns[c].zmax)[block];
          } else {
            const auto& below = index.levels[level - 1];
            cmin = below.zmin[s * ncols + c];
            cmax = below.zmax[s * ncols + c];
          }
          if (s == begin || cmin < lo) lo = cmin;
          if (s == begin || cmax > hi) hi = cmax;
        }
        packed.zmin[n * ncols + c] = lo;
        packed.zmax[n * ncols + c] = hi;
      }
    }
    index.levels.push_back(std::move(packed));
    children = nodes;
    ++level;
  }
  return index;
}

std::string BlockIndexPathFor(const std::string& table_path) {
  return table_path + ".zidx";
}

Status WriteBlockIndexFile(Env* env, const std::string& path,
                           const BlockSkylineIndex& index) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutScalar(&out, kVersion);
  PutScalar(&out, index.block_rows);
  PutScalar(&out, index.row_count);
  PutScalar(&out, index.num_columns);
  PutScalar(&out, index.fanout);
  PutScalar(&out, static_cast<uint32_t>(index.leaf_blocks.size()));
  PutScalar(&out, static_cast<uint32_t>(index.levels.size()));
  PutVector(&out, index.leaf_blocks);
  for (const auto& level : index.levels) {
    PutScalar(&out, static_cast<uint32_t>(level.zmin.size() /
                                          std::max<uint32_t>(
                                              1, index.num_columns)));
    PutVector(&out, level.zmin);
    PutVector(&out, level.zmax);
  }
  PutScalar(&out, Fnv1a(out.data(), out.size()));

  std::unique_ptr<WritableFile> file;
  SKYLINE_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  SKYLINE_RETURN_IF_ERROR(file->Append(out.data(), out.size()));
  return file->Close();
}

Result<BlockSkylineIndex> ReadBlockIndexFile(Env* env,
                                             const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  SKYLINE_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  const uint64_t size = file->Size();
  if (size < sizeof(kMagic) + sizeof(uint64_t)) {
    return CorruptIndexFile(path, "too small");
  }
  file->Hint(RandomAccessFile::AccessPattern::kWillNeed, 0, size);
  std::string raw(size, '\0');
  SKYLINE_RETURN_IF_ERROR(file->Read(0, size, raw.data()));

  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, raw.data() + size - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fnv1a(raw.data(), size - sizeof(uint64_t)) != stored_checksum) {
    return CorruptIndexFile(path, "checksum mismatch");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return CorruptIndexFile(path, "bad magic");
  }

  size_t pos = sizeof(kMagic);
  uint32_t version, leaf_count, num_levels;
  BlockSkylineIndex index;
  if (!GetScalar(raw, &pos, &version) ||
      !GetScalar(raw, &pos, &index.block_rows) ||
      !GetScalar(raw, &pos, &index.row_count) ||
      !GetScalar(raw, &pos, &index.num_columns) ||
      !GetScalar(raw, &pos, &index.fanout) ||
      !GetScalar(raw, &pos, &leaf_count) ||
      !GetScalar(raw, &pos, &num_levels)) {
    return CorruptIndexFile(path, "truncated header");
  }
  if (version != kVersion) {
    return CorruptIndexFile(path,
                            "unsupported version " + std::to_string(version));
  }
  if (index.block_rows == 0 || index.fanout < 2 || index.num_columns == 0) {
    return CorruptIndexFile(path, "bad geometry");
  }
  const uint64_t expect_leaves =
      (index.row_count + index.block_rows - 1) / index.block_rows;
  if (leaf_count != expect_leaves) {
    return CorruptIndexFile(path, "leaf count does not match row count");
  }
  if (num_levels != ExpectedLevels(leaf_count, index.fanout)) {
    return CorruptIndexFile(path, "unexpected level count");
  }
  if (!GetVector(raw, &pos, leaf_count, &index.leaf_blocks)) {
    return CorruptIndexFile(path, "truncated leaf order");
  }
  {
    std::vector<bool> seen(leaf_count, false);
    for (uint32_t b : index.leaf_blocks) {
      if (b >= leaf_count || seen[b]) {
        return CorruptIndexFile(path, "leaf order is not a permutation");
      }
      seen[b] = true;
    }
  }
  index.levels.resize(num_levels);
  size_t children = leaf_count;
  for (size_t l = 0; l < num_levels; ++l) {
    uint32_t node_count;
    if (!GetScalar(raw, &pos, &node_count)) {
      return CorruptIndexFile(path, "truncated level header");
    }
    if (node_count != CeilDiv(children, index.fanout)) {
      return CorruptIndexFile(path, "level does not pack the level below");
    }
    const size_t corners = static_cast<size_t>(node_count) *
                           index.num_columns;
    if (!GetVector(raw, &pos, corners, &index.levels[l].zmin) ||
        !GetVector(raw, &pos, corners, &index.levels[l].zmax)) {
      return CorruptIndexFile(path, "truncated level corners");
    }
    children = node_count;
  }
  if (pos + sizeof(uint64_t) != raw.size()) {
    return CorruptIndexFile(path, "trailing bytes");
  }
  return index;
}

}  // namespace skyline
