#ifndef SKYLINE_INDEX_BLOCK_INDEX_H_
#define SKYLINE_INDEX_BLOCK_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/env.h"

namespace skyline {

/// Persistent, bulk-loaded z-order block index over a table's per-block
/// zone maps. The leaves are the existing 64-row column-file blocks; the
/// bulk load sorts them by the Morton code of their quantized zone
/// centers (numeric columns only — dictionary codes carry no spatial
/// meaning) and packs fixed-fanout interior nodes bottom-up. Every node,
/// leaf group or interior, stores the per-column aggregate [zmin, zmax]
/// corner of its subtree in the canonical ascending key space, so a
/// branch-and-bound scan can (a) lower-bound the best row a subtree could
/// contain and (b) discard the subtree with one dominance test against
/// the skyline found so far. The index is spec-independent: corners cover
/// *all* schema columns and a skyline spec applies its MIN/MAX flips at
/// query time, exactly like the zone maps themselves.
///
/// On-disk sidecar layout (little-endian, versioned, checksummed), at
/// BlockIndexPathFor(table_path) = table_path + ".zidx":
///   magic   "SKYZIDX1"
///   u32     version (1)
///   u32     block_rows
///   u64     row_count
///   u32     num_columns
///   u32     fanout
///   u32     leaf_count
///   u32     num_levels
///   leaf_blocks, leaf_count u32 block ids in z-order
///   per level: u32 node_count,
///              node_count*num_columns i64 zmin corners,
///              node_count*num_columns i64 zmax corners
///   u64     FNV-1a checksum of everything above
struct BlockSkylineIndex {
  static constexpr uint32_t kDefaultFanout = 16;

  /// One packed level of interior nodes. Node n of level L covers child
  /// slots [n*fanout, (n+1)*fanout) of the level below (level 0 covers
  /// leaf_blocks slots). Corners are stored SoA-by-node: the [zmin, zmax]
  /// of node n, column c sit at index n * num_columns + c.
  struct Level {
    std::vector<int64_t> zmin, zmax;
  };

  uint32_t block_rows = 0;
  uint64_t row_count = 0;
  uint32_t num_columns = 0;
  uint32_t fanout = kDefaultFanout;
  /// Block ids (row range [id*block_rows, ...)) in z-order.
  std::vector<uint32_t> leaf_blocks;
  /// levels[0] groups leaves; levels.back() is the root level (at most
  /// `fanout` nodes, enumerated directly as scan roots). Empty for an
  /// empty table.
  std::vector<Level> levels;

  size_t leaf_count() const { return leaf_blocks.size(); }
  size_t LevelNodeCount(size_t level) const {
    return num_columns == 0 ? 0 : levels[level].zmin.size() / num_columns;
  }
  /// Number of child slots of node `node` at `level` that actually exist
  /// (the last node of each level may be partially filled).
  size_t ChildCount(size_t level, size_t node) const;
};

/// Zone-map view of one column for the bulk load; `numeric` is false for
/// dictionary-coded columns, which are excluded from the Morton key (codes
/// order lexicographically but adjacent codes are not spatially adjacent).
struct BlockIndexColumnZones {
  const std::vector<int64_t>* zmin = nullptr;
  const std::vector<int64_t>* zmax = nullptr;
  bool numeric = true;
};

/// Bulk-loads the index from per-block zone maps (one entry per column,
/// each vector holding ceil(row_count / block_rows) corners).
Result<BlockSkylineIndex> BuildBlockIndex(
    uint32_t block_rows, uint64_t row_count,
    const std::vector<BlockIndexColumnZones>& columns,
    uint32_t fanout = BlockSkylineIndex::kDefaultFanout);

/// Path of the index sidecar for a heap file at `table_path`.
std::string BlockIndexPathFor(const std::string& table_path);

/// Serializes `index` to `path` (see layout above).
Status WriteBlockIndexFile(Env* env, const std::string& path,
                           const BlockSkylineIndex& index);

/// Reads and validates an index sidecar: magic, version, checksum, level
/// shape (each level must pack the one below at `fanout`), and that
/// leaf_blocks is a permutation of [0, leaf_count).
Result<BlockSkylineIndex> ReadBlockIndexFile(Env* env,
                                             const std::string& path);

}  // namespace skyline

#endif  // SKYLINE_INDEX_BLOCK_INDEX_H_
