#include "relation/column_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/order_key.h"

namespace skyline {
namespace {

/// Matches DominanceIndex::kBlockEntries; the SFS block prefilter aligns
/// input blocks with these zones, so the granularities must agree.
constexpr uint32_t kZoneBlockRows = 64;

int64_t CanonicalKey(ColumnType type, const char* value_bytes) {
  switch (type) {
    case ColumnType::kInt32: {
      int32_t v;
      std::memcpy(&v, value_bytes, sizeof(v));
      return v;
    }
    case ColumnType::kInt64: {
      int64_t v;
      std::memcpy(&v, value_bytes, sizeof(v));
      return v;
    }
    case ColumnType::kFloat64: {
      double v;
      std::memcpy(&v, value_bytes, sizeof(v));
      return Float64TotalOrderKey(v);
    }
    case ColumnType::kFixedString:
      break;  // handled by the dictionary path
  }
  return 0;
}

ColumnFileKind KindFor(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return ColumnFileKind::kKeyInt32;
    case ColumnType::kInt64:
    case ColumnType::kFloat64:
      return ColumnFileKind::kKeyInt64;
    case ColumnType::kFixedString:
      return ColumnFileKind::kDictCode;
  }
  return ColumnFileKind::kKeyInt32;
}

/// Size of a sidecar file, 0 when absent — a cheap content stamp that
/// changes whenever the sidecar is written or removed.
uint64_t SidecarStamp(Env* env, const std::string& path) {
  if (!env->FileExists(path)) return 0;
  auto size = env->FileSize(path);
  return size.ok() ? *size : 0;
}

std::string CacheKey(const Table& table) {
  char buf[128];
  std::snprintf(
      buf, sizeof(buf), "%p|%llu|c%llu|i%llu|",
      static_cast<const void*>(table.env()),
      static_cast<unsigned long long>(table.row_count()),
      static_cast<unsigned long long>(
          SidecarStamp(table.env(), ColumnFilePathFor(table.path()))),
      static_cast<unsigned long long>(
          SidecarStamp(table.env(), BlockIndexPathFor(table.path()))));
  return std::string(buf) + table.path();
}

/// Loads and validates the index sidecar against `zones`; null when the
/// sidecar is absent, corrupt, or shaped for a different table version —
/// the caller then simply runs without an index.
std::shared_ptr<const BlockSkylineIndex> TryLoadBlockIndex(
    const Table& table, const TableColumnZones& zones) {
  const std::string path = BlockIndexPathFor(table.path());
  if (!table.env()->FileExists(path)) return nullptr;
  auto loaded = ReadBlockIndexFile(table.env(), path);
  if (!loaded.ok()) return nullptr;
  auto index = std::make_shared<BlockSkylineIndex>(std::move(loaded).value());
  if (index->block_rows != zones.block_rows ||
      index->row_count != zones.row_count ||
      index->num_columns != zones.columns.size()) {
    return nullptr;
  }
  return index;
}

/// Scans the table once, producing canonical keys per column. When
/// `keys_out` is non-null the full key columns are kept (column-file
/// write); otherwise only zones and dictionaries survive.
Result<std::shared_ptr<TableColumnZones>> ScanTable(
    const Table& table, std::vector<ColumnFileColumn>* keys_out) {
  const Schema& schema = table.schema();
  auto zones = std::make_shared<TableColumnZones>();
  zones->block_rows = kZoneBlockRows;
  zones->row_count = table.row_count();
  zones->source = "scan";
  zones->columns.resize(schema.num_columns());
  const size_t blocks = static_cast<size_t>(
      (table.row_count() + kZoneBlockRows - 1) / kZoneBlockRows);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    auto& col = zones->columns[c];
    col.zmin.assign(blocks, std::numeric_limits<int64_t>::max());
    col.zmax.assign(blocks, std::numeric_limits<int64_t>::min());
    if (schema.column(c).type == ColumnType::kFixedString) {
      col.dict =
          std::make_shared<StringDictionary>(schema.column(c).string_length);
    }
  }
  if (keys_out != nullptr) {
    keys_out->resize(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      auto& out = (*keys_out)[c];
      out.kind = KindFor(schema.column(c).type);
      out.raw_width = static_cast<uint32_t>(ColumnWidth(
          schema.column(c).type, schema.column(c).string_length));
      if (out.kind == ColumnFileKind::kKeyInt64) {
        out.data64.reserve(table.row_count());
      } else {
        out.data32.reserve(table.row_count());
      }
    }
  }

  IoStats io;
  auto reader = table.NewReader(&io);
  SKYLINE_RETURN_IF_ERROR(reader->Open());
  uint64_t i = 0;
  while (const char* row = reader->Next()) {
    const size_t b = static_cast<size_t>(i / kZoneBlockRows);
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      auto& col = zones->columns[c];
      const char* bytes = row + schema.offset(c);
      int64_t key;
      if (col.dict != nullptr) {
        key = col.dict->Encode(bytes);
      } else {
        key = CanonicalKey(schema.column(c).type, bytes);
      }
      if (key < col.zmin[b]) col.zmin[b] = key;
      if (key > col.zmax[b]) col.zmax[b] = key;
      if (keys_out != nullptr) {
        auto& out = (*keys_out)[c];
        if (out.kind == ColumnFileKind::kKeyInt64) {
          out.data64.push_back(key);
        } else {
          out.data32.push_back(static_cast<int32_t>(key));
        }
      }
    }
    ++i;
  }
  SKYLINE_RETURN_IF_ERROR(reader->status());
  if (i != table.row_count()) {
    return Status::Corruption("table scan returned " + std::to_string(i) +
                              " rows, expected " +
                              std::to_string(table.row_count()));
  }
  if (keys_out != nullptr) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      auto& out = (*keys_out)[c];
      const auto& dict = zones->columns[c].dict;
      if (dict != nullptr) {
        out.dict_entries = static_cast<uint32_t>(dict->size());
        out.dict = dict->SerializedValues();
      }
    }
  }
  return zones;
}

}  // namespace

std::string ColumnFilePathFor(const std::string& table_path) {
  return table_path + ".cols";
}

Result<std::shared_ptr<const TableColumnZones>> BuildTableColumnZones(
    const Table& table) {
  SKYLINE_ASSIGN_OR_RETURN(std::shared_ptr<TableColumnZones> zones,
                           ScanTable(table, nullptr));
  return std::shared_ptr<const TableColumnZones>(std::move(zones));
}

Status WriteTableColumnFile(const Table& table) {
  ColumnFileContents contents;
  contents.block_rows = kZoneBlockRows;
  contents.row_count = table.row_count();
  SKYLINE_ASSIGN_OR_RETURN(std::shared_ptr<TableColumnZones> zones,
                           ScanTable(table, &contents.columns));
  (void)zones;
  return WriteColumnFile(table.env(), ColumnFilePathFor(table.path()),
                         std::move(contents));
}

Status WriteTableBlockIndex(const Table& table) {
  std::shared_ptr<const TableColumnZones> zones;
  if (table.env()->FileExists(ColumnFilePathFor(table.path()))) {
    auto loaded = LoadTableColumnZones(table);
    if (loaded.ok()) zones = std::move(loaded).value();
  }
  if (zones == nullptr) {
    SKYLINE_ASSIGN_OR_RETURN(zones, BuildTableColumnZones(table));
  }
  const Schema& schema = table.schema();
  std::vector<BlockIndexColumnZones> columns(zones->columns.size());
  for (size_t c = 0; c < zones->columns.size(); ++c) {
    columns[c].zmin = &zones->columns[c].zmin;
    columns[c].zmax = &zones->columns[c].zmax;
    columns[c].numeric = schema.column(c).type != ColumnType::kFixedString;
  }
  SKYLINE_ASSIGN_OR_RETURN(
      BlockSkylineIndex index,
      BuildBlockIndex(zones->block_rows, zones->row_count, columns));
  return WriteBlockIndexFile(table.env(), BlockIndexPathFor(table.path()),
                             index);
}

Result<Table> ClusterTableZOrder(const Table& input,
                                 const std::string& output_path) {
  const Schema& schema = input.schema();
  const size_t width = schema.row_width();
  std::vector<char> rows;
  SKYLINE_RETURN_IF_ERROR(input.ReadAllRows(&rows));
  const size_t n = static_cast<size_t>(input.row_count());

  // Numeric columns only — string payloads carry no spatial meaning and
  // dictionary codes are assigned in discovery order.
  std::vector<size_t> zcols;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type != ColumnType::kFixedString) zcols.push_back(c);
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  if (!zcols.empty() && n > 0) {
    // Same Morton geometry as the index bulk load: per-column quantization
    // into the global key range, MSB-first round-robin interleave.
    const uint32_t bits = static_cast<uint32_t>(
        std::min<size_t>(16, std::max<size_t>(1, 64 / zcols.size())));
    const uint64_t maxq = (1ULL << bits) - 1;
    std::vector<std::vector<int64_t>> keys(zcols.size());
    std::vector<int64_t> gmin(zcols.size()), gmax(zcols.size());
    for (size_t i = 0; i < zcols.size(); ++i) {
      const size_t c = zcols[i];
      const ColumnType type = schema.column(c).type;
      const size_t offset = schema.offset(c);
      keys[i].resize(n);
      for (size_t r = 0; r < n; ++r) {
        keys[i][r] = CanonicalKey(type, rows.data() + r * width + offset);
      }
      gmin[i] = *std::min_element(keys[i].begin(), keys[i].end());
      gmax[i] = *std::max_element(keys[i].begin(), keys[i].end());
    }
    std::vector<uint64_t> code(n, 0);
    for (size_t r = 0; r < n; ++r) {
      uint64_t m = 0;
      for (uint32_t bit = bits; bit-- > 0;) {
        for (size_t i = 0; i < zcols.size(); ++i) {
          uint64_t q = 0;
          if (gmax[i] > gmin[i]) {
            const __int128 off =
                static_cast<__int128>(keys[i][r]) - gmin[i];
            const __int128 range =
                static_cast<__int128>(gmax[i]) - gmin[i];
            q = static_cast<uint64_t>((off * maxq) / range);
          }
          m = (m << 1) | ((q >> bit) & 1);
        }
      }
      code[r] = m;
    }
    std::sort(order.begin(), order.end(), [&code](size_t a, size_t b) {
      return code[a] != code[b] ? code[a] < code[b] : a < b;
    });
  }

  TableBuilder builder(input.env(), output_path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  for (size_t i : order) {
    SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(rows.data() + i * width));
  }
  return builder.Finish();
}

Result<std::shared_ptr<const TableColumnZones>> LoadTableColumnZones(
    const Table& table) {
  const std::string path = ColumnFilePathFor(table.path());
  SKYLINE_ASSIGN_OR_RETURN(ColumnFileContents contents,
                           ReadColumnFile(table.env(), path));
  const Schema& schema = table.schema();
  if (contents.row_count != table.row_count() ||
      contents.columns.size() != schema.num_columns()) {
    return Status::Corruption("column file " + path +
                              " does not match table shape");
  }
  auto zones = std::make_shared<TableColumnZones>();
  zones->block_rows = contents.block_rows;
  zones->row_count = contents.row_count;
  zones->source = "column_file";
  zones->columns.resize(contents.columns.size());
  for (size_t c = 0; c < contents.columns.size(); ++c) {
    auto& file_col = contents.columns[c];
    const ColumnDef& def = schema.column(c);
    if (file_col.kind != KindFor(def.type) ||
        file_col.raw_width != ColumnWidth(def.type, def.string_length)) {
      return Status::Corruption("column file " + path +
                                " column kind mismatch at index " +
                                std::to_string(c));
    }
    auto& col = zones->columns[c];
    col.zmin = std::move(file_col.zmin);
    col.zmax = std::move(file_col.zmax);
    if (file_col.kind == ColumnFileKind::kDictCode) {
      col.dict = std::make_shared<StringDictionary>(StringDictionary::FromValues(
          file_col.raw_width, file_col.dict));
    }
  }
  return std::shared_ptr<const TableColumnZones>(std::move(zones));
}

TableZoneCache& TableZoneCache::Instance() {
  static TableZoneCache* cache = new TableZoneCache();
  return *cache;
}

Result<std::shared_ptr<const TableColumnZones>> TableZoneCache::GetOrLoad(
    const Table& table, bool* cache_hit) {
  const std::string key = CacheKey(table);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key == key) {
        // Move to the back (most recently used).
        std::rotate(entries_.begin() + i, entries_.begin() + i + 1,
                    entries_.end());
        if (cache_hit != nullptr) *cache_hit = true;
        return entries_.back().zones;
      }
    }
  }
  if (cache_hit != nullptr) *cache_hit = false;
  // Load outside the lock: scans can be slow and concurrent loaders of the
  // same table produce identical zones anyway.
  std::shared_ptr<const TableColumnZones> zones;
  if (table.env()->FileExists(ColumnFilePathFor(table.path()))) {
    auto loaded = LoadTableColumnZones(table);
    if (loaded.ok()) zones = std::move(loaded).value();
    // A stale or corrupt column file degrades to a scan, never to an error.
  }
  if (zones == nullptr) {
    SKYLINE_ASSIGN_OR_RETURN(zones, BuildTableColumnZones(table));
  }
  if (auto index = TryLoadBlockIndex(table, *zones)) {
    // Zones are shared immutable once cached; attach the index to a copy
    // (vectors only — dictionaries are shared) rather than mutating.
    auto with_index = std::make_shared<TableColumnZones>(*zones);
    with_index->block_index = std::move(index);
    zones = std::move(with_index);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    if (entry.key == key) {
      entry.zones = zones;  // lost the race; keep the freshest
      return zones;
    }
  }
  if (entries_.size() >= kMaxEntries) entries_.erase(entries_.begin());
  entries_.push_back({key, zones});
  return zones;
}

size_t TableZoneCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void TableZoneCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace skyline
