#ifndef SKYLINE_RELATION_COLUMN_STORE_H_
#define SKYLINE_RELATION_COLUMN_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/dictionary.h"
#include "relation/table.h"
#include "storage/column_file.h"

namespace skyline {

/// Spec-independent columnar summary of a table: per-column, per-block
/// min/max in the *canonical ascending key space* (raw int32/int64 values
/// widened to int64, float64 as total-order bits, strings as dictionary
/// codes), plus the per-string-column dictionaries. Built once per table —
/// preferably by loading the persisted column file, else by one scan —
/// and shared across queries; a skyline spec applies its MIN/MAX flips at
/// query time, so the same zones serve every spec over the table.
struct TableColumnZones {
  struct Column {
    std::vector<int64_t> zmin, zmax;  // one per block, canonical keys
    /// Strings only: code -> value mapping matching the zone-map codes.
    std::shared_ptr<StringDictionary> dict;
  };

  uint32_t block_rows = 0;
  uint64_t row_count = 0;
  /// "column_file" when loaded from the persisted sidecar, "scan" when
  /// rebuilt from the heap file.
  const char* source = "scan";
  std::vector<Column> columns;  // one per schema column, in schema order
};

/// Path of the columnar sidecar for a heap file at `table_path`.
std::string ColumnFilePathFor(const std::string& table_path);

/// Scans `table` once and builds its zone maps and dictionaries in memory.
Result<std::shared_ptr<const TableColumnZones>> BuildTableColumnZones(
    const Table& table);

/// Persists the table's full columnar image (keys, zone maps,
/// dictionaries) to ColumnFilePathFor(table.path()) in the table's Env.
Status WriteTableColumnFile(const Table& table);

/// Loads zones from an existing column file, validating it against the
/// table's schema and row count. NotFound when no column file exists.
Result<std::shared_ptr<const TableColumnZones>> LoadTableColumnZones(
    const Table& table);

/// Process-wide cache of TableColumnZones keyed by table identity
/// (env instance, heap-file path, row count — the row count stands in for
/// a version: tables are immutable once built, and a rebuilt table with
/// the same path virtually always changes its size). Repeated queries on
/// one table — the sql_shell session pattern — reuse the zones instead of
/// rescanning; when a persisted column file exists it is preferred over a
/// scan on first load. Thread-safe; holds at most a handful of tables
/// (LRU-evicted).
class TableZoneCache {
 public:
  static TableZoneCache& Instance();

  /// Returns zones for `table`, loading (column file first, else scan) on
  /// miss. `cache_hit` (may be null) reports whether the zones came from
  /// the cache.
  Result<std::shared_ptr<const TableColumnZones>> GetOrLoad(const Table& table,
                                                            bool* cache_hit);

  size_t size() const;
  void Clear();

 private:
  static constexpr size_t kMaxEntries = 16;

  struct Entry {
    std::string key;
    std::shared_ptr<const TableColumnZones> zones;
  };

  mutable std::mutex mu_;
  /// LRU order: most recently used last.
  std::vector<Entry> entries_;
};

}  // namespace skyline

#endif  // SKYLINE_RELATION_COLUMN_STORE_H_
