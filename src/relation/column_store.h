#ifndef SKYLINE_RELATION_COLUMN_STORE_H_
#define SKYLINE_RELATION_COLUMN_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/block_index.h"
#include "relation/dictionary.h"
#include "relation/table.h"
#include "storage/column_file.h"

namespace skyline {

/// Spec-independent columnar summary of a table: per-column, per-block
/// min/max in the *canonical ascending key space* (raw int32/int64 values
/// widened to int64, float64 as total-order bits, strings as dictionary
/// codes), plus the per-string-column dictionaries. Built once per table —
/// preferably by loading the persisted column file, else by one scan —
/// and shared across queries; a skyline spec applies its MIN/MAX flips at
/// query time, so the same zones serve every spec over the table.
struct TableColumnZones {
  struct Column {
    std::vector<int64_t> zmin, zmax;  // one per block, canonical keys
    /// Strings only: code -> value mapping matching the zone-map codes.
    std::shared_ptr<StringDictionary> dict;
  };

  uint32_t block_rows = 0;
  uint64_t row_count = 0;
  /// "column_file" when loaded from the persisted sidecar, "scan" when
  /// rebuilt from the heap file.
  const char* source = "scan";
  std::vector<Column> columns;  // one per schema column, in schema order
  /// Z-order block index over these zones, attached when a valid index
  /// sidecar exists next to the table; null otherwise (BBS degrades to a
  /// scan-based algorithm). Validated against block_rows / row_count /
  /// column count at load time.
  std::shared_ptr<const BlockSkylineIndex> block_index;
};

/// Path of the columnar sidecar for a heap file at `table_path`.
std::string ColumnFilePathFor(const std::string& table_path);

/// Scans `table` once and builds its zone maps and dictionaries in memory.
Result<std::shared_ptr<const TableColumnZones>> BuildTableColumnZones(
    const Table& table);

/// Persists the table's full columnar image (keys, zone maps,
/// dictionaries) to ColumnFilePathFor(table.path()) in the table's Env.
Status WriteTableColumnFile(const Table& table);

/// Loads zones from an existing column file, validating it against the
/// table's schema and row count. NotFound when no column file exists.
Result<std::shared_ptr<const TableColumnZones>> LoadTableColumnZones(
    const Table& table);

/// Bulk-loads the z-order block index from the table's zone maps
/// (persisted column file preferred, else one scan) and persists it to
/// BlockIndexPathFor(table.path()) in the table's Env.
Status WriteTableBlockIndex(const Table& table);

/// Rewrites `input`'s rows at `output_path` in z-order (Morton) of their
/// numeric columns' canonical keys. Clustering is what gives the block
/// index its pruning power: 64-row blocks of a z-ordered file are tight
/// cells in key space, so their zone corners are dominated (and the blocks
/// skipped) as soon as any better cell contributes a skyline point — over
/// a randomly ordered file every block's corner compounds 64 unrelated
/// rows and approaches the global maximum. The result is a row-multiset-
/// identical table; build the column file and index sidecars against the
/// clustered table, not the original. In-memory: intended for table load /
/// maintenance time, alongside the sidecar writes.
Result<Table> ClusterTableZOrder(const Table& input,
                                 const std::string& output_path);

/// Process-wide cache of TableColumnZones keyed by table identity
/// (env instance, heap-file path, row count, and the sizes of the column
/// and index sidecars — the row count stands in for a version: tables are
/// immutable once built, and a rebuilt table with the same path virtually
/// always changes its size; the sidecar sizes ensure a table whose column
/// file or index is (re)written never serves stale zones). Repeated queries on
/// one table — the sql_shell session pattern — reuse the zones instead of
/// rescanning; when a persisted column file exists it is preferred over a
/// scan on first load. Thread-safe; holds at most a handful of tables
/// (LRU-evicted).
class TableZoneCache {
 public:
  static TableZoneCache& Instance();

  /// Returns zones for `table`, loading (column file first, else scan) on
  /// miss. `cache_hit` (may be null) reports whether the zones came from
  /// the cache.
  Result<std::shared_ptr<const TableColumnZones>> GetOrLoad(const Table& table,
                                                            bool* cache_hit);

  size_t size() const;
  void Clear();

 private:
  static constexpr size_t kMaxEntries = 16;

  struct Entry {
    std::string key;
    std::shared_ptr<const TableColumnZones> zones;
  };

  mutable std::mutex mu_;
  /// LRU order: most recently used last.
  std::vector<Entry> entries_;
};

}  // namespace skyline

#endif  // SKYLINE_RELATION_COLUMN_STORE_H_
