#include "relation/csv.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace skyline {
namespace {

/// Inferred type lattice: Int32 -> Float64 -> FixedString.
enum class InferredType { kInt32, kFloat64, kString };

bool ParsesAsInt32(const std::string& field, int32_t* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  if (v < std::numeric_limits<int32_t>::min() ||
      v > std::numeric_limits<int32_t>::max()) {
    return false;
  }
  *out = static_cast<int32_t>(v);
  return true;
}

bool ParsesAsDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *out = v;
  return true;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendQuoted(const std::string& field, std::string* out) {
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

bool ParseCsvRecord(const std::string& text, size_t* pos,
                    std::vector<std::string>* fields) {
  fields->clear();
  size_t i = *pos;
  if (i >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      ++i;
    } else if (c == '\n' || c == '\r') {
      // End of record; swallow \r\n.
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

Result<Table> CsvToTable(Env* env, const std::string& path,
                         const std::string& csv_text,
                         const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::string> header;
  if (!ParseCsvRecord(csv_text, &pos, &header) || header.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }

  // Read all records up front (CSV files are modest; the heap file is the
  // scalable representation).
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  while (ParseCsvRecord(csv_text, &pos, &fields)) {
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(records.size() + 2) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    records.push_back(fields);
  }

  // Per-column type inference.
  const size_t num_cols = header.size();
  std::vector<InferredType> types(num_cols, InferredType::kInt32);
  std::vector<size_t> max_len(num_cols, 1);
  for (const auto& record : records) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& field = record[c];
      max_len[c] = std::max(max_len[c], field.size());
      int32_t iv;
      double dv;
      switch (types[c]) {
        case InferredType::kInt32:
          if (ParsesAsInt32(field, &iv)) break;
          types[c] = InferredType::kFloat64;
          [[fallthrough]];
        case InferredType::kFloat64:
          if (ParsesAsDouble(field, &dv)) break;
          types[c] = InferredType::kString;
          break;
        case InferredType::kString:
          break;
      }
    }
  }
  for (size_t c = 0; c < num_cols; ++c) {
    if (types[c] == InferredType::kString &&
        max_len[c] > options.max_string_length) {
      return Status::InvalidArgument(
          "CSV column '" + header[c] + "' has a value of " +
          std::to_string(max_len[c]) + " bytes, above max_string_length (" +
          std::to_string(options.max_string_length) + ")");
    }
  }

  std::vector<ColumnDef> columns;
  columns.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    switch (types[c]) {
      case InferredType::kInt32:
        columns.push_back(ColumnDef::Int32(header[c]));
        break;
      case InferredType::kFloat64:
        columns.push_back(ColumnDef::Float64(header[c]));
        break;
      case InferredType::kString:
        columns.push_back(ColumnDef::FixedString(header[c], max_len[c]));
        break;
    }
  }
  SKYLINE_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));

  TableBuilder builder(env, path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  RowBuffer row(&builder.schema());
  for (const auto& record : records) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& field = record[c];
      switch (types[c]) {
        case InferredType::kInt32: {
          int32_t v = 0;
          ParsesAsInt32(field, &v);
          row.SetInt32(c, v);
          break;
        }
        case InferredType::kFloat64: {
          double v = 0;
          ParsesAsDouble(field, &v);
          row.SetFloat64(c, v);
          break;
        }
        case InferredType::kString:
          row.SetString(c, field);
          break;
      }
    }
    SKYLINE_RETURN_IF_ERROR(builder.Append(row));
  }
  return builder.Finish();
}

Result<Table> ReadCsvFile(Env* env, const std::string& csv_file_path,
                          const std::string& table_path,
                          const CsvOptions& options) {
  std::ifstream in(csv_file_path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + csv_file_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CsvToTable(env, table_path, buffer.str(), options);
}

Result<std::string> TableToCsv(const Table& table) {
  const Schema& schema = table.schema();
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out.push_back(',');
    if (NeedsQuoting(schema.column(c).name)) {
      AppendQuoted(schema.column(c).name, &out);
    } else {
      out += schema.column(c).name;
    }
  }
  out.push_back('\n');

  std::vector<char> rows;
  SKYLINE_RETURN_IF_ERROR(table.ReadAllRows(&rows));
  char scratch[64];
  for (uint64_t r = 0; r < table.row_count(); ++r) {
    RowView row(&schema, rows.data() + r * schema.row_width());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out.push_back(',');
      switch (schema.column(c).type) {
        case ColumnType::kInt32:
          std::snprintf(scratch, sizeof(scratch), "%d", row.GetInt32(c));
          out += scratch;
          break;
        case ColumnType::kInt64:
          std::snprintf(scratch, sizeof(scratch), "%lld",
                        static_cast<long long>(row.GetInt64(c)));
          out += scratch;
          break;
        case ColumnType::kFloat64:
          std::snprintf(scratch, sizeof(scratch), "%.17g", row.GetFloat64(c));
          out += scratch;
          break;
        case ColumnType::kFixedString: {
          const std::string value = row.GetString(c);
          if (NeedsQuoting(value)) {
            AppendQuoted(value, &out);
          } else {
            out += value;
          }
          break;
        }
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace skyline
