#ifndef SKYLINE_RELATION_CSV_H_
#define SKYLINE_RELATION_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/table.h"

namespace skyline {

/// CSV import/export so the library works on real data files, not just
/// synthetic tables.
///
/// Dialect: comma-separated, first row is the header, fields may be quoted
/// with `"` (embedded quotes doubled, embedded commas/newlines allowed
/// inside quotes), `\n` or `\r\n` row endings.

/// Options controlling CSV import.
struct CsvOptions {
  /// Maximum bytes reserved for string columns (values longer than this
  /// are rejected with InvalidArgument during type inference).
  size_t max_string_length = 64;
};

/// Splits one CSV record into fields (exposed for testing). `pos` is
/// advanced past the record and its terminator. Returns false at
/// end-of-input with no record.
bool ParseCsvRecord(const std::string& text, size_t* pos,
                    std::vector<std::string>* fields);

/// Parses CSV text into a table at `path` in `env`. Column types are
/// inferred per column from the data: Int32 if every value parses as a
/// 32-bit integer, else Float64 if every value parses as a number, else
/// FixedString sized to the longest value. Empty fields are NULL-less: they
/// infer as strings (numeric columns must be fully populated).
Result<Table> CsvToTable(Env* env, const std::string& path,
                         const std::string& csv_text,
                         const CsvOptions& options = CsvOptions{});

/// Reads a CSV file from the real filesystem and materializes it as a
/// table at `table_path` in `env`.
Result<Table> ReadCsvFile(Env* env, const std::string& csv_file_path,
                          const std::string& table_path,
                          const CsvOptions& options = CsvOptions{});

/// Serializes a table to CSV text (header + rows). Float columns print
/// with enough digits to round-trip; strings are quoted when needed.
Result<std::string> TableToCsv(const Table& table);

}  // namespace skyline

#endif  // SKYLINE_RELATION_CSV_H_
