#ifndef SKYLINE_RELATION_DICTIONARY_H_
#define SKYLINE_RELATION_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace skyline {

/// Per-column dictionary for fixed-width string values. Encoding a string
/// DIFF criterion as its dictionary code lets the columnar kernel treat it
/// as a plain int32 equality lane: DIFF needs only equality, and distinct
/// strings get distinct codes, so code equality == byte equality.
///
/// Thread-safety contract: Encode (assign-on-miss) is single-writer and
/// must not run concurrently with anything; Find/Value are const and safe
/// to call from many threads once the dictionary is no longer mutated.
/// The parallel merge phase relies on exactly this: indexes are built
/// sequentially (Encode), then probed concurrently (Find).
class StringDictionary {
 public:
  /// Code returned by Find for a value absent from the dictionary. All
  /// real codes are >= 0, so kNoCode compares below every zone-map min
  /// and equals no entry lane — an unseen probe string relates to nothing,
  /// which is exactly the DIFF semantics.
  static constexpr int32_t kNoCode = -1;

  explicit StringDictionary(size_t value_width) : value_width_(value_width) {}

  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;

  /// Returns the code for `bytes` (value_width_ bytes), assigning the next
  /// code on first sight. Mutable: see the thread-safety contract.
  int32_t Encode(const char* bytes) {
    const std::string_view key(bytes, value_width_);
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    const int32_t code = static_cast<int32_t>(size());
    const size_t offset = arena_.size();
    arena_.append(bytes, value_width_);
    // The map keys view into the arena; appending may reallocate, so
    // rebuild views only for the new entry (old offsets stay valid via
    // re-anchoring below).
    RebuildViewsIfMoved();
    map_.emplace(std::string_view(arena_.data() + offset, value_width_), code);
    return code;
  }

  /// Const lookup: code for `bytes`, or kNoCode when absent. Counts
  /// probe hits/misses for run reports.
  int32_t Find(const char* bytes) const {
    const auto it = map_.find(std::string_view(bytes, value_width_));
    if (it == map_.end()) {
      probe_misses_.fetch_add(1, std::memory_order_relaxed);
      return kNoCode;
    }
    probe_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Raw bytes of `code` (value_width_ bytes).
  const char* Value(int32_t code) const {
    return arena_.data() + static_cast<size_t>(code) * value_width_;
  }

  size_t size() const { return arena_.size() / value_width_; }
  size_t value_width() const { return value_width_; }

  uint64_t probe_hits() const {
    return probe_hits_.load(std::memory_order_relaxed);
  }
  uint64_t probe_misses() const {
    return probe_misses_.load(std::memory_order_relaxed);
  }

  /// Dense code-ordered value blob (size() * value_width_ bytes) for
  /// persistence.
  const std::string& SerializedValues() const { return arena_; }

  /// Rebuilds the dictionary from a dense code-ordered blob.
  static StringDictionary FromValues(size_t value_width,
                                     std::string_view blob) {
    StringDictionary dict(value_width);
    for (size_t off = 0; off + value_width <= blob.size();
         off += value_width) {
      dict.Encode(blob.data() + off);
    }
    return dict;
  }

  StringDictionary(StringDictionary&& other) noexcept
      : value_width_(other.value_width_), arena_(std::move(other.arena_)) {
    RebuildAllViews();
  }

 private:
  void RebuildViewsIfMoved() {
    if (arena_.data() == anchored_base_) return;
    RebuildAllViews();
  }

  void RebuildAllViews() {
    anchored_base_ = arena_.data();
    map_.clear();
    const size_t n = arena_.size() / value_width_;
    map_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      map_.emplace(
          std::string_view(arena_.data() + i * value_width_, value_width_),
          static_cast<int32_t>(i));
    }
  }

  const size_t value_width_;
  std::string arena_;  // code-ordered values, value_width_ bytes each
  const char* anchored_base_ = nullptr;
  std::unordered_map<std::string_view, int32_t> map_;
  mutable std::atomic<uint64_t> probe_hits_{0};
  mutable std::atomic<uint64_t> probe_misses_{0};
};

}  // namespace skyline

#endif  // SKYLINE_RELATION_DICTIONARY_H_
