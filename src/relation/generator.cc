#include "relation/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"

namespace skyline {
namespace {

/// Maps a normalized value in [0,1] onto the full int32 range.
int32_t ScaleToInt32(double v) {
  v = std::clamp(v, 0.0, 1.0);
  const double lo = static_cast<double>(std::numeric_limits<int32_t>::min());
  const double hi = static_cast<double>(std::numeric_limits<int32_t>::max());
  const double scaled = lo + v * (hi - lo);
  return static_cast<int32_t>(
      std::clamp(scaled, lo, hi));
}

/// Maps a normalized value in [0,1] onto a wide int64 range that straddles
/// the 2^53 double-precision cliff, so generated data exercises the native
/// int64 comparison path.
int64_t ScaleToInt64(double v) {
  v = std::clamp(v, 0.0, 1.0);
  const double span = 9.0e18;  // ~ [-2^62.96, +2^62.96]
  return static_cast<int64_t>(-span / 2 + v * span);
}

/// Writes attribute `col` of the row from normalized value `v` per its
/// declared type.
void SetScaled(RowBuffer* row, const Schema& schema, size_t col, double v) {
  switch (schema.column(col).type) {
    case ColumnType::kInt32:
      row->SetInt32(col, ScaleToInt32(v));
      break;
    case ColumnType::kInt64:
      row->SetInt64(col, ScaleToInt64(v));
      break;
    case ColumnType::kFloat64:
      row->SetFloat64(col, v);
      break;
    case ColumnType::kFixedString:
      break;  // attributes are numeric; unreachable (validated in Make)
  }
}

void SetSmallDomain(RowBuffer* row, const Schema& schema, size_t col,
                    int32_t v) {
  switch (schema.column(col).type) {
    case ColumnType::kInt32:
      row->SetInt32(col, v);
      break;
    case ColumnType::kInt64:
      row->SetInt64(col, v);
      break;
    case ColumnType::kFloat64:
      row->SetFloat64(col, static_cast<double>(v));
      break;
    case ColumnType::kFixedString:
      break;
  }
}

/// Draws one tuple's normalized attribute vector per the distribution.
void DrawNormalized(const GeneratorOptions& options, Random* rng,
                    std::vector<double>* out) {
  const int k = options.num_attributes;
  out->resize(k);
  switch (options.distribution) {
    case Distribution::kIndependent:
      for (int i = 0; i < k; ++i) (*out)[i] = rng->UniformDouble();
      break;
    case Distribution::kCorrelated: {
      // A per-tuple "quality" center with small independent noise: tuples
      // good on one dimension tend to be good on all.
      const double center = rng->UniformDouble();
      for (int i = 0; i < k; ++i) {
        (*out)[i] =
            std::clamp(center + rng->Gaussian() * options.noise, 0.0, 1.0);
      }
      break;
    }
    case Distribution::kAntiCorrelated: {
      // Tuples lie near the hyperplane sum(a_i) = k * center: an increase in
      // one attribute is paid for by decreases in the others.
      const double center =
          std::clamp(0.5 + rng->Gaussian() * options.noise, 0.0, 1.0);
      double mean = 0.0;
      for (int i = 0; i < k; ++i) {
        (*out)[i] = rng->UniformDouble() - 0.5;
        mean += (*out)[i];
      }
      mean /= k;
      for (int i = 0; i < k; ++i) {
        (*out)[i] = std::clamp(center + ((*out)[i] - mean), 0.0, 1.0);
      }
      break;
    }
  }
}

void FillPayload(Random* rng, size_t bytes, std::string* out) {
  out->resize(bytes);
  // Printable deterministic filler; content is never interpreted.
  for (size_t i = 0; i < bytes; ++i) {
    (*out)[i] = static_cast<char>('a' + rng->Uniform(26));
  }
}

}  // namespace

Result<Table> GenerateTable(Env* env, const std::string& path,
                            const GeneratorOptions& options) {
  if (options.num_attributes <= 0) {
    return Status::InvalidArgument("num_attributes must be positive");
  }
  if (options.small_domain && options.domain_lo > options.domain_hi) {
    return Status::InvalidArgument("empty small domain");
  }
  if (!options.attribute_types.empty() &&
      options.attribute_types.size() !=
          static_cast<size_t>(options.num_attributes)) {
    return Status::InvalidArgument(
        "attribute_types length must equal num_attributes");
  }
  for (ColumnType type : options.attribute_types) {
    if (type == ColumnType::kFixedString) {
      return Status::InvalidArgument(
          "attribute columns must be numeric (payload is the string column)");
    }
  }

  std::vector<ColumnDef> columns;
  columns.reserve(options.num_attributes + 1);
  for (int i = 0; i < options.num_attributes; ++i) {
    const std::string name = "a" + std::to_string(i);
    const ColumnType type = options.attribute_types.empty()
                                ? ColumnType::kInt32
                                : options.attribute_types[i];
    switch (type) {
      case ColumnType::kInt32:
        columns.push_back(ColumnDef::Int32(name));
        break;
      case ColumnType::kInt64:
        columns.push_back(ColumnDef::Int64(name));
        break;
      case ColumnType::kFloat64:
        columns.push_back(ColumnDef::Float64(name));
        break;
      case ColumnType::kFixedString:
        break;  // rejected above
    }
  }
  if (options.payload_bytes > 0) {
    columns.push_back(
        ColumnDef::FixedString("payload", options.payload_bytes));
  }
  SKYLINE_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));

  TableBuilder builder(env, path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  Random rng(options.seed);
  std::vector<double> values;
  std::string payload;
  // Bounded-cardinality payloads: a fixed pool drawn up front so that
  // every row's payload is one of `payload_cardinality` distinct values.
  std::vector<std::string> payload_pool;
  for (size_t i = 0; i < options.payload_cardinality; ++i) {
    FillPayload(&rng, options.payload_bytes, &payload);
    payload_pool.push_back(payload);
  }
  RowBuffer row(&builder.schema());
  const size_t payload_col = static_cast<size_t>(options.num_attributes);
  for (uint64_t r = 0; r < options.num_rows; ++r) {
    if (options.small_domain) {
      for (int i = 0; i < options.num_attributes; ++i) {
        SetSmallDomain(&row, builder.schema(), static_cast<size_t>(i),
                       rng.UniformInt32(options.domain_lo, options.domain_hi));
      }
    } else {
      DrawNormalized(options, &rng, &values);
      for (int i = 0; i < options.num_attributes; ++i) {
        double v = values[i];
        if (options.skew_exponent != 1.0) {
          v = std::pow(v, options.skew_exponent);
        }
        SetScaled(&row, builder.schema(), static_cast<size_t>(i), v);
      }
    }
    if (options.payload_bytes > 0) {
      if (!payload_pool.empty()) {
        row.SetString(payload_col,
                      payload_pool[rng.Uniform(payload_pool.size())]);
      } else {
        FillPayload(&rng, options.payload_bytes, &payload);
        row.SetString(payload_col, payload);
      }
    }
    SKYLINE_RETURN_IF_ERROR(builder.Append(row));
  }
  return builder.Finish();
}

Result<Table> MakeGoodEatsTable(Env* env, const std::string& path) {
  SKYLINE_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({ColumnDef::FixedString("restaurant", 20),
                    ColumnDef::Int32("S"), ColumnDef::Int32("F"),
                    ColumnDef::Int32("D"), ColumnDef::Float64("price")}));
  TableBuilder builder(env, path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  struct Restaurant {
    const char* name;
    int32_t s, f, d;
    double price;
  };
  // Figure 1 of the paper.
  static constexpr Restaurant kGuide[] = {
      {"Summer Moon", 21, 25, 19, 47.50},
      {"Zakopane", 24, 20, 21, 56.00},
      {"Brearton Grill", 15, 18, 20, 62.00},
      {"Yamanote", 22, 22, 17, 51.50},
      {"Fenton & Pickle", 16, 14, 10, 17.50},
      {"Briar Patch BBQ", 14, 13, 3, 22.50},
  };

  RowBuffer row(&builder.schema());
  for (const auto& r : kGuide) {
    row.SetString(0, r.name);
    row.SetInt32(1, r.s);
    row.SetInt32(2, r.f);
    row.SetInt32(3, r.d);
    row.SetFloat64(4, r.price);
    SKYLINE_RETURN_IF_ERROR(builder.Append(row));
  }
  return builder.Finish();
}

}  // namespace skyline
