#include "relation/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"

namespace skyline {
namespace {

/// Maps a normalized value in [0,1] onto the full int32 range.
int32_t ScaleToInt32(double v) {
  v = std::clamp(v, 0.0, 1.0);
  const double lo = static_cast<double>(std::numeric_limits<int32_t>::min());
  const double hi = static_cast<double>(std::numeric_limits<int32_t>::max());
  const double scaled = lo + v * (hi - lo);
  return static_cast<int32_t>(
      std::clamp(scaled, lo, hi));
}

/// Draws one tuple's normalized attribute vector per the distribution.
void DrawNormalized(const GeneratorOptions& options, Random* rng,
                    std::vector<double>* out) {
  const int k = options.num_attributes;
  out->resize(k);
  switch (options.distribution) {
    case Distribution::kIndependent:
      for (int i = 0; i < k; ++i) (*out)[i] = rng->UniformDouble();
      break;
    case Distribution::kCorrelated: {
      // A per-tuple "quality" center with small independent noise: tuples
      // good on one dimension tend to be good on all.
      const double center = rng->UniformDouble();
      for (int i = 0; i < k; ++i) {
        (*out)[i] =
            std::clamp(center + rng->Gaussian() * options.noise, 0.0, 1.0);
      }
      break;
    }
    case Distribution::kAntiCorrelated: {
      // Tuples lie near the hyperplane sum(a_i) = k * center: an increase in
      // one attribute is paid for by decreases in the others.
      const double center =
          std::clamp(0.5 + rng->Gaussian() * options.noise, 0.0, 1.0);
      double mean = 0.0;
      for (int i = 0; i < k; ++i) {
        (*out)[i] = rng->UniformDouble() - 0.5;
        mean += (*out)[i];
      }
      mean /= k;
      for (int i = 0; i < k; ++i) {
        (*out)[i] = std::clamp(center + ((*out)[i] - mean), 0.0, 1.0);
      }
      break;
    }
  }
}

void FillPayload(Random* rng, size_t bytes, std::string* out) {
  out->resize(bytes);
  // Printable deterministic filler; content is never interpreted.
  for (size_t i = 0; i < bytes; ++i) {
    (*out)[i] = static_cast<char>('a' + rng->Uniform(26));
  }
}

}  // namespace

Result<Table> GenerateTable(Env* env, const std::string& path,
                            const GeneratorOptions& options) {
  if (options.num_attributes <= 0) {
    return Status::InvalidArgument("num_attributes must be positive");
  }
  if (options.small_domain && options.domain_lo > options.domain_hi) {
    return Status::InvalidArgument("empty small domain");
  }

  std::vector<ColumnDef> columns;
  columns.reserve(options.num_attributes + 1);
  for (int i = 0; i < options.num_attributes; ++i) {
    columns.push_back(ColumnDef::Int32("a" + std::to_string(i)));
  }
  if (options.payload_bytes > 0) {
    columns.push_back(
        ColumnDef::FixedString("payload", options.payload_bytes));
  }
  SKYLINE_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));

  TableBuilder builder(env, path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  Random rng(options.seed);
  std::vector<double> values;
  std::string payload;
  RowBuffer row(&builder.schema());
  const size_t payload_col = static_cast<size_t>(options.num_attributes);
  for (uint64_t r = 0; r < options.num_rows; ++r) {
    if (options.small_domain) {
      for (int i = 0; i < options.num_attributes; ++i) {
        row.SetInt32(static_cast<size_t>(i),
                     rng.UniformInt32(options.domain_lo, options.domain_hi));
      }
    } else {
      DrawNormalized(options, &rng, &values);
      for (int i = 0; i < options.num_attributes; ++i) {
        double v = values[i];
        if (options.skew_exponent != 1.0) {
          v = std::pow(v, options.skew_exponent);
        }
        row.SetInt32(static_cast<size_t>(i), ScaleToInt32(v));
      }
    }
    if (options.payload_bytes > 0) {
      FillPayload(&rng, options.payload_bytes, &payload);
      row.SetString(payload_col, payload);
    }
    SKYLINE_RETURN_IF_ERROR(builder.Append(row));
  }
  return builder.Finish();
}

Result<Table> MakeGoodEatsTable(Env* env, const std::string& path) {
  SKYLINE_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({ColumnDef::FixedString("restaurant", 20),
                    ColumnDef::Int32("S"), ColumnDef::Int32("F"),
                    ColumnDef::Int32("D"), ColumnDef::Float64("price")}));
  TableBuilder builder(env, path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());

  struct Restaurant {
    const char* name;
    int32_t s, f, d;
    double price;
  };
  // Figure 1 of the paper.
  static constexpr Restaurant kGuide[] = {
      {"Summer Moon", 21, 25, 19, 47.50},
      {"Zakopane", 24, 20, 21, 56.00},
      {"Brearton Grill", 15, 18, 20, 62.00},
      {"Yamanote", 22, 22, 17, 51.50},
      {"Fenton & Pickle", 16, 14, 10, 17.50},
      {"Briar Patch BBQ", 14, 13, 3, 22.50},
  };

  RowBuffer row(&builder.schema());
  for (const auto& r : kGuide) {
    row.SetString(0, r.name);
    row.SetInt32(1, r.s);
    row.SetInt32(2, r.f);
    row.SetInt32(3, r.d);
    row.SetFloat64(4, r.price);
    SKYLINE_RETURN_IF_ERROR(builder.Append(row));
  }
  return builder.Finish();
}

}  // namespace skyline
