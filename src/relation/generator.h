#ifndef SKYLINE_RELATION_GENERATOR_H_
#define SKYLINE_RELATION_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/table.h"

namespace skyline {

/// Attribute-value distribution across the skyline dimensions of one tuple.
enum class Distribution {
  /// Each attribute i.i.d. uniform — the paper's main data set.
  kIndependent,
  /// Attributes positively correlated (good on one dim → good on others);
  /// skylines shrink.
  kCorrelated,
  /// Attributes anti-correlated (good on one dim → bad on others); skylines
  /// explode — the degenerate case discussed in the paper's Section 6.
  kAntiCorrelated,
};

/// Configuration for the synthetic table generator. Defaults reproduce the
/// paper's experimental table shape: ten int32 attributes drawn uniformly
/// from the full int32 range plus a 60-byte string, 100 bytes per tuple,
/// 40 tuples per 4 KiB page.
struct GeneratorOptions {
  uint64_t num_rows = 100'000;
  /// Number of attribute columns (named "a0".."a{n-1}").
  int num_attributes = 10;
  /// Per-attribute column types (kInt32, kInt64, or kFloat64). Empty (the
  /// default) means all attributes are int32 — the paper's shape. When
  /// set, its length must equal num_attributes; small_domain applies to
  /// every type (int-valued doubles for kFloat64).
  std::vector<ColumnType> attribute_types;
  /// Width of the trailing FixedString payload column ("payload"); 0 omits
  /// the column entirely.
  size_t payload_bytes = 60;
  /// When positive, payload values are drawn from a pool of this many
  /// distinct strings instead of per-row random bytes — duplicates make
  /// the payload usable as a DIFF column and give its dictionary a
  /// bounded code space.
  size_t payload_cardinality = 0;
  Distribution distribution = Distribution::kIndependent;
  /// Noise scale (in normalized (0,1) units) for the correlated /
  /// anti-correlated distributions.
  double noise = 0.05;
  /// Marginal skew: each normalized attribute value v is replaced by
  /// v^skew_exponent before scaling. 1.0 (default) keeps the uniform
  /// marginals; larger values concentrate mass near the bottom of the
  /// range — the non-uniform case the paper's entropy normalization
  /// assumes away (Section 4.3) and rank normalization handles.
  double skew_exponent = 1.0;
  /// When true, attributes are drawn from the small integer domain
  /// [domain_lo, domain_hi] instead of the full int32 range — the paper's
  /// dimensional-reduction experiment uses 0..9.
  bool small_domain = false;
  int32_t domain_lo = 0;
  int32_t domain_hi = 9;
  uint64_t seed = 42;
};

/// Generates a synthetic table at `path` in `env`.
Result<Table> GenerateTable(Env* env, const std::string& path,
                            const GeneratorOptions& options);

/// Builds the paper's Figure 1 "GoodEats" restaurant guide sample:
/// (restaurant str[20], S int32, F int32, D int32, price float64).
/// Its skyline under {S max, F max, D max, price min} is the paper's
/// Figure 2 (Summer Moon, Zakopane, Yamanote, Fenton & Pickle).
Result<Table> MakeGoodEatsTable(Env* env, const std::string& path);

}  // namespace skyline

#endif  // SKYLINE_RELATION_GENERATOR_H_
