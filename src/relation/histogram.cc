#include "relation/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace skyline {

Result<EquiDepthHistogram> EquiDepthHistogram::Build(
    std::vector<double> values, size_t buckets) {
  if (values.empty()) {
    return Status::InvalidArgument("histogram needs at least one value");
  }
  if (buckets == 0) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  buckets = std::min(buckets, n);

  EquiDepthHistogram histogram;
  histogram.boundaries_.reserve(buckets + 1);
  histogram.cumulative_.reserve(buckets + 1);
  histogram.boundaries_.push_back(values.front());
  histogram.cumulative_.push_back(0.0);
  for (size_t b = 1; b <= buckets; ++b) {
    // Index of the last value in bucket b (equi-depth split points).
    const size_t idx = b * n / buckets - 1;
    const double boundary = values[idx];
    // Runs of duplicates can produce repeated boundaries; merge them,
    // keeping the larger cumulative mass.
    const double cum = static_cast<double>(idx + 1) / static_cast<double>(n);
    if (boundary == histogram.boundaries_.back()) {
      histogram.cumulative_.back() = cum;
    } else {
      histogram.boundaries_.push_back(boundary);
      histogram.cumulative_.push_back(cum);
    }
  }
  if (histogram.boundaries_.size() == 1) {
    // Constant column: make a degenerate one-bucket histogram.
    histogram.boundaries_.push_back(histogram.boundaries_.front());
    histogram.cumulative_.push_back(1.0);
  }
  return histogram;
}

double EquiDepthHistogram::Cdf(double v) const {
  if (v < boundaries_.front()) return 0.0;
  if (v >= boundaries_.back()) return 1.0;
  // Find the bucket whose upper boundary is the first > v.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  const size_t hi = static_cast<size_t>(it - boundaries_.begin());
  const size_t lo = hi - 1;
  const double span = boundaries_[hi] - boundaries_[lo];
  const double t = span > 0 ? (v - boundaries_[lo]) / span : 1.0;
  return cumulative_[lo] + t * (cumulative_[hi] - cumulative_[lo]);
}

Result<EquiDepthHistogram> BuildColumnHistogram(const Table& table,
                                                size_t column, size_t buckets,
                                                size_t sample_size,
                                                uint64_t seed) {
  if (column >= table.schema().num_columns()) {
    return Status::InvalidArgument("histogram column out of range");
  }
  if (!table.schema().IsNumeric(column)) {
    return Status::InvalidArgument("histogram column must be numeric");
  }
  std::vector<double> values;
  const bool sampling = sample_size > 0 && sample_size < table.row_count();
  values.reserve(sampling ? sample_size
                          : static_cast<size_t>(table.row_count()));
  Random rng(seed);
  auto reader = table.NewReader(nullptr);
  uint64_t seen = 0;
  while (const char* row = reader->Next()) {
    const double v = table.schema().NumericValue(column, row);
    if (!sampling) {
      values.push_back(v);
    } else if (values.size() < sample_size) {
      values.push_back(v);
    } else {
      // Reservoir sampling keeps each seen value with equal probability.
      const uint64_t slot = rng.Uniform(seen + 1);
      if (slot < sample_size) values[static_cast<size_t>(slot)] = v;
    }
    ++seen;
  }
  SKYLINE_RETURN_IF_ERROR(reader->status());
  return EquiDepthHistogram::Build(std::move(values), buckets);
}

}  // namespace skyline
