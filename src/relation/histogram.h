#ifndef SKYLINE_RELATION_HISTOGRAM_H_
#define SKYLINE_RELATION_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "relation/table.h"

namespace skyline {

/// Equi-depth histogram over one numeric column — the catalog statistic a
/// real system keeps beyond min/max. Used to normalize attribute values by
/// *rank* (approximate CDF) instead of by value, which makes the entropy
/// presort's dominance-probability estimate exact for any marginal
/// distribution: the paper's Section 4.3 assumes uniform values and argues
/// skew "would not effect this relative ordering much"; rank normalization
/// removes the assumption altogether.
class EquiDepthHistogram {
 public:
  /// Builds from a set of observed values (consumed; need not be sorted).
  /// `buckets` bounds resolution; fewer distinct values than buckets
  /// degrade gracefully.
  static Result<EquiDepthHistogram> Build(std::vector<double> values,
                                          size_t buckets);

  /// Approximate CDF: fraction of observed values <= v, in [0, 1].
  /// Piecewise-linear within buckets; exact at bucket boundaries.
  double Cdf(double v) const;

  size_t bucket_count() const { return boundaries_.size() - 1; }
  double min() const { return boundaries_.front(); }
  double max() const { return boundaries_.back(); }

 private:
  EquiDepthHistogram() = default;

  /// bucket_count()+1 ascending boundaries; bucket i covers
  /// [boundaries_[i], boundaries_[i+1]] and holds depth_ fraction of the
  /// observations (the last bucket absorbs the remainder).
  std::vector<double> boundaries_;
  std::vector<double> cumulative_;  // CDF value at each boundary
};

/// Builds a histogram over a table column from up to `sample_size` rows
/// (deterministic reservoir sample keyed by `seed`; sample_size 0 means
/// every row). The column must be numeric.
Result<EquiDepthHistogram> BuildColumnHistogram(const Table& table,
                                                size_t column, size_t buckets,
                                                size_t sample_size = 0,
                                                uint64_t seed = 1);

}  // namespace skyline

#endif  // SKYLINE_RELATION_HISTOGRAM_H_
