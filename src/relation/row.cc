#include "relation/row.h"

// Header-only; this translation unit anchors the target.
