#ifndef SKYLINE_RELATION_ROW_H_
#define SKYLINE_RELATION_ROW_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "relation/schema.h"

namespace skyline {

/// Read-only view over one fixed-width row. Does not own the bytes; the
/// underlying buffer (page, window slot, ...) must outlive the view.
class RowView {
 public:
  RowView(const Schema* schema, const char* data)
      : schema_(schema), data_(data) {}

  const Schema& schema() const { return *schema_; }
  const char* data() const { return data_; }

  int32_t GetInt32(size_t col) const {
    CheckType(col, ColumnType::kInt32);
    int32_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }

  int64_t GetInt64(size_t col) const {
    CheckType(col, ColumnType::kInt64);
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }

  double GetFloat64(size_t col) const {
    CheckType(col, ColumnType::kFloat64);
    double v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }

  /// Fixed string contents trimmed of trailing NULs.
  std::string GetString(size_t col) const {
    CheckType(col, ColumnType::kFixedString);
    const char* start = data_ + schema_->offset(col);
    size_t len = schema_->column(col).string_length;
    while (len > 0 && start[len - 1] == '\0') --len;
    return std::string(start, len);
  }

  /// Numeric value widened to double (Int32/Int64/Float64 columns).
  double GetNumeric(size_t col) const {
    return schema_->NumericValue(col, data_);
  }

 private:
  void CheckType(size_t col, ColumnType expected) const {
    SKYLINE_CHECK(schema_->column(col).type == expected)
        << "column " << schema_->column(col).name << " type mismatch";
  }

  const Schema* schema_;
  const char* data_;
};

/// Owning, mutable row buffer used to assemble rows before appending them to
/// a table or heap file.
class RowBuffer {
 public:
  explicit RowBuffer(const Schema* schema)
      : schema_(schema), data_(schema->row_width(), '\0') {}

  const Schema& schema() const { return *schema_; }
  const char* data() const { return data_.data(); }
  char* mutable_data() { return data_.data(); }
  size_t size() const { return data_.size(); }

  RowView View() const { return RowView(schema_, data_.data()); }

  void SetInt32(size_t col, int32_t v) {
    CheckType(col, ColumnType::kInt32);
    std::memcpy(data_.data() + schema_->offset(col), &v, sizeof(v));
  }

  void SetInt64(size_t col, int64_t v) {
    CheckType(col, ColumnType::kInt64);
    std::memcpy(data_.data() + schema_->offset(col), &v, sizeof(v));
  }

  void SetFloat64(size_t col, double v) {
    CheckType(col, ColumnType::kFloat64);
    std::memcpy(data_.data() + schema_->offset(col), &v, sizeof(v));
  }

  /// Copies `value` into the fixed string column, truncating or
  /// NUL-padding to the declared length.
  void SetString(size_t col, std::string_view value) {
    CheckType(col, ColumnType::kFixedString);
    const size_t len = schema_->column(col).string_length;
    char* dst = data_.data() + schema_->offset(col);
    const size_t n = value.size() < len ? value.size() : len;
    std::memcpy(dst, value.data(), n);
    std::memset(dst + n, 0, len - n);
  }

  /// Copies a whole raw row of matching width.
  void SetRow(const char* raw) {
    std::memcpy(data_.data(), raw, data_.size());
  }

 private:
  void CheckType(size_t col, ColumnType expected) const {
    SKYLINE_CHECK(schema_->column(col).type == expected)
        << "column " << schema_->column(col).name << " type mismatch";
  }

  const Schema* schema_;
  std::vector<char> data_;
};

}  // namespace skyline

#endif  // SKYLINE_RELATION_ROW_H_
