#include "relation/schema.h"

#include <cstring>
#include <set>

#include "common/logging.h"
#include "common/order_key.h"

namespace skyline {

size_t ColumnWidth(ColumnType type, size_t string_length) {
  switch (type) {
    case ColumnType::kInt32:
      return sizeof(int32_t);
    case ColumnType::kInt64:
      return sizeof(int64_t);
    case ColumnType::kFloat64:
      return sizeof(double);
    case ColumnType::kFixedString:
      return string_length;
  }
  return 0;
}

Result<Schema> Schema::Make(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema must have at least one column");
  }
  std::set<std::string> names;
  for (const auto& col : columns) {
    if (col.name.empty()) {
      return Status::InvalidArgument("column name must be non-empty");
    }
    if (!names.insert(col.name).second) {
      return Status::InvalidArgument("duplicate column name: " + col.name);
    }
    if (col.type == ColumnType::kFixedString && col.string_length == 0) {
      return Status::InvalidArgument("fixed string column " + col.name +
                                     " must have positive length");
    }
  }
  Schema schema;
  schema.columns_ = std::move(columns);
  schema.offsets_.reserve(schema.columns_.size());
  size_t offset = 0;
  for (const auto& col : schema.columns_) {
    schema.offsets_.push_back(offset);
    offset += ColumnWidth(col.type, col.string_length);
  }
  schema.row_width_ = offset;
  return schema;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

bool Schema::IsNumeric(size_t i) const {
  return columns_[i].type != ColumnType::kFixedString;
}

namespace {

template <typename T>
int CompareAt(const char* a, const char* b, size_t offset) {
  T va, vb;
  std::memcpy(&va, a + offset, sizeof(T));
  std::memcpy(&vb, b + offset, sizeof(T));
  if (va < vb) return -1;
  if (vb < va) return 1;
  return 0;
}

}  // namespace

int Schema::CompareColumn(size_t col, const char* row_a,
                          const char* row_b) const {
  SKYLINE_CHECK_LT(col, columns_.size());
  const size_t offset = offsets_[col];
  switch (columns_[col].type) {
    case ColumnType::kInt32:
      return CompareAt<int32_t>(row_a, row_b, offset);
    case ColumnType::kInt64:
      return CompareAt<int64_t>(row_a, row_b, offset);
    case ColumnType::kFloat64: {
      // Doubles compare through the IEEE total order so that every path
      // in the engine (row comparisons, sort keys, columnar order keys)
      // ranks them identically, including NaN and -0.0 < +0.0.
      double va, vb;
      std::memcpy(&va, row_a + offset, sizeof(va));
      std::memcpy(&vb, row_b + offset, sizeof(vb));
      return CompareDoubleTotalOrder(va, vb);
    }
    case ColumnType::kFixedString:
      return std::memcmp(row_a + offset, row_b + offset,
                         columns_[col].string_length);
  }
  return 0;
}

// NumericValue widens int64 through double, which is lossy above 2^53.
// It is only used for scoring/statistics (entropy normalization, column
// stats), never for ordering decisions: comparisons go through
// CompareColumn, which compares int64 natively, and orderings built on
// scores break ties with an exact lexicographic comparator.
double Schema::NumericValue(size_t col, const char* row) const {
  SKYLINE_CHECK_LT(col, columns_.size());
  const size_t offset = offsets_[col];
  switch (columns_[col].type) {
    case ColumnType::kInt32: {
      int32_t v;
      std::memcpy(&v, row + offset, sizeof(v));
      return static_cast<double>(v);
    }
    case ColumnType::kInt64: {
      int64_t v;
      std::memcpy(&v, row + offset, sizeof(v));
      return static_cast<double>(v);
    }
    case ColumnType::kFloat64: {
      double v;
      std::memcpy(&v, row + offset, sizeof(v));
      return v;
    }
    case ColumnType::kFixedString:
      SKYLINE_CHECK(false) << "NumericValue on string column "
                           << columns_[col].name;
  }
  return 0.0;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].string_length != other.columns_[i].string_length) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    switch (columns_[i].type) {
      case ColumnType::kInt32:
        out += ":int32";
        break;
      case ColumnType::kInt64:
        out += ":int64";
        break;
      case ColumnType::kFloat64:
        out += ":float64";
        break;
      case ColumnType::kFixedString:
        out += ":str[" + std::to_string(columns_[i].string_length) + "]";
        break;
    }
  }
  out += ")";
  return out;
}

}  // namespace skyline
