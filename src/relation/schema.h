#ifndef SKYLINE_RELATION_SCHEMA_H_
#define SKYLINE_RELATION_SCHEMA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace skyline {

/// Column value types. All types are fixed-width so rows have a fixed layout
/// and pack densely into heap-file pages (the paper's 100-byte tuples are
/// ten Int32 columns plus a 60-byte FixedString payload).
enum class ColumnType {
  kInt32,
  kInt64,
  kFloat64,
  kFixedString,
};

/// Width in bytes of a column of `type`; `string_length` applies only to
/// kFixedString.
size_t ColumnWidth(ColumnType type, size_t string_length);

/// One column definition.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt32;
  /// Only meaningful for kFixedString.
  size_t string_length = 0;

  static ColumnDef Int32(std::string name) {
    return ColumnDef{std::move(name), ColumnType::kInt32, 0};
  }
  static ColumnDef Int64(std::string name) {
    return ColumnDef{std::move(name), ColumnType::kInt64, 0};
  }
  static ColumnDef Float64(std::string name) {
    return ColumnDef{std::move(name), ColumnType::kFloat64, 0};
  }
  static ColumnDef FixedString(std::string name, size_t length) {
    return ColumnDef{std::move(name), ColumnType::kFixedString, length};
  }
};

/// Fixed-width row layout: an ordered list of columns with precomputed byte
/// offsets. Schemas are immutable once constructed and cheap to copy.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; column names must be unique and non-empty.
  static Result<Schema> Make(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  size_t offset(size_t i) const { return offsets_[i]; }
  size_t column_width(size_t i) const {
    return ColumnWidth(columns_[i].type, columns_[i].string_length);
  }

  /// Total row width in bytes.
  size_t row_width() const { return row_width_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// True for Int32/Int64/Float64 columns (usable as skyline criteria).
  bool IsNumeric(size_t i) const;

  /// Three-way comparison of column `col` between two raw rows of this
  /// schema: negative if a < b, 0 if equal, positive if a > b. For
  /// kFixedString the comparison is bytewise (memcmp).
  int CompareColumn(size_t col, const char* row_a, const char* row_b) const;

  /// Numeric value of column `col` of `row` as a double (Int32/Int64 are
  /// widened; calling on a kFixedString column is a programming error).
  double NumericValue(size_t col, const char* row) const;

  /// Structural equality (same columns in the same order).
  bool Equals(const Schema& other) const;

  /// Human-readable description, e.g. "(a1:int32, name:str[20])".
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::vector<size_t> offsets_;
  size_t row_width_ = 0;
};

}  // namespace skyline

#endif  // SKYLINE_RELATION_SCHEMA_H_
