#include "relation/table.h"

#include <cstring>

namespace skyline {

Result<Table> Table::Attach(Schema schema, Env* env, std::string path,
                            std::vector<ColumnStats> stats) {
  if (stats.size() != schema.num_columns()) {
    return Status::InvalidArgument("stats size does not match schema");
  }
  SKYLINE_ASSIGN_OR_RETURN(uint64_t file_size, env->FileSize(path));
  SKYLINE_ASSIGN_OR_RETURN(uint64_t rows,
                           HeapFileRecordCount(file_size, schema.row_width()));
  return Table(std::move(schema), env, std::move(path), rows,
               std::move(stats));
}

std::unique_ptr<HeapFileReader> Table::NewReader(IoStats* stats) const {
  auto reader = std::make_unique<HeapFileReader>(env_, path_,
                                                 schema_.row_width(), stats);
  SKYLINE_CHECK_OK(reader->Open());
  return reader;
}

Status Table::ReadAllRows(std::vector<char>* buffer) const {
  buffer->clear();
  buffer->reserve(row_count_ * schema_.row_width());
  HeapFileReader reader(env_, path_, schema_.row_width(), nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());
  const size_t width = schema_.row_width();
  while (const char* row = reader.Next()) {
    buffer->insert(buffer->end(), row, row + width);
  }
  return reader.status();
}

TableBuilder::TableBuilder(Env* env, std::string path, Schema schema)
    : env_(env),
      path_(std::move(path)),
      schema_(std::move(schema)),
      writer_(env_, path_, schema_.row_width(), nullptr),
      stats_(schema_.num_columns()) {}

Status TableBuilder::Open() { return writer_.Open(); }

Status TableBuilder::Append(const RowBuffer& row) {
  SKYLINE_CHECK(row.schema().Equals(schema_)) << "schema mismatch in Append";
  return AppendRaw(row.data());
}

Status TableBuilder::AppendRaw(const char* raw) {
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (schema_.IsNumeric(c)) {
      stats_[c].Observe(schema_.NumericValue(c, raw));
    }
  }
  return writer_.Append(raw);
}

Result<Table> TableBuilder::Finish() {
  SKYLINE_RETURN_IF_ERROR(writer_.Finish());
  return Table(std::move(schema_), env_, std::move(path_),
               writer_.records_written(), std::move(stats_));
}

}  // namespace skyline
