#ifndef SKYLINE_RELATION_TABLE_H_
#define SKYLINE_RELATION_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/env.h"
#include "relation/row.h"
#include "relation/schema.h"
#include "storage/heap_file.h"
#include "storage/io_stats.h"

namespace skyline {

/// Per-column value range observed while building a table. Used to normalize
/// attribute values into (0,1) for the entropy scoring function — the paper
/// notes relational systems keep exactly these statistics.
struct ColumnStats {
  bool valid = false;  // false for string columns and empty tables
  double min = 0.0;
  double max = 0.0;

  void Observe(double v) {
    if (!valid) {
      valid = true;
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
  }
};

/// A materialized relation: a schema plus a heap file of rows plus column
/// statistics. Tables are immutable after construction; algorithms open
/// sequential readers against them.
class Table {
 public:
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  Env* env() const { return env_; }
  const std::string& path() const { return path_; }
  uint64_t row_count() const { return row_count_; }
  uint64_t page_count() const {
    return HeapFilePageCount(row_count_, schema_.row_width());
  }
  const ColumnStats& stats(size_t col) const { return stats_[col]; }

  /// Wraps an existing heap file (written elsewhere with `schema`'s row
  /// width) as a Table. `row_count` is derived from the file size.
  /// `stats` supplies the column statistics (e.g. reuse the source table's
  /// stats when attaching a subset of its rows — min/max over a superset
  /// remain valid bounds).
  static Result<Table> Attach(Schema schema, Env* env, std::string path,
                              std::vector<ColumnStats> stats);

  /// Opens a fresh sequential reader; `stats` (may be null) receives page
  /// read counts.
  std::unique_ptr<HeapFileReader> NewReader(IoStats* stats) const;

  /// Reads all rows into a dense in-memory buffer (row_count * row_width
  /// bytes). For the in-memory baselines and tests.
  Status ReadAllRows(std::vector<char>* buffer) const;

 private:
  friend class TableBuilder;
  Table(Schema schema, Env* env, std::string path, uint64_t row_count,
        std::vector<ColumnStats> stats)
      : schema_(std::move(schema)),
        env_(env),
        path_(std::move(path)),
        row_count_(row_count),
        stats_(std::move(stats)) {}

  Schema schema_;
  Env* env_;
  std::string path_;
  uint64_t row_count_;
  std::vector<ColumnStats> stats_;
};

/// Streams rows into a new heap file and produces a Table. Column stats for
/// numeric columns are collected automatically.
class TableBuilder {
 public:
  TableBuilder(Env* env, std::string path, Schema schema);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// Opens the output file. Must be called before Append.
  Status Open();

  /// Appends a row (must use this builder's schema).
  Status Append(const RowBuffer& row);

  /// Appends a raw row of schema().row_width() bytes.
  Status AppendRaw(const char* raw);

  /// Finalizes the file and returns the table.
  Result<Table> Finish();

  const Schema& schema() const { return schema_; }

 private:
  Env* env_;
  std::string path_;
  Schema schema_;
  HeapFileWriter writer_;
  std::vector<ColumnStats> stats_;
};

}  // namespace skyline

#endif  // SKYLINE_RELATION_TABLE_H_
