#include "relation/table_io.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "relation/column_store.h"

namespace skyline {
namespace {

constexpr char kMagic[] = "skyline_table v1";

const char* TypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return "int32";
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kFloat64:
      return "float64";
    case ColumnType::kFixedString:
      return "string";
  }
  return "?";
}

Result<ColumnType> TypeFromName(const std::string& name) {
  if (name == "int32") return ColumnType::kInt32;
  if (name == "int64") return ColumnType::kInt64;
  if (name == "float64") return ColumnType::kFloat64;
  if (name == "string") return ColumnType::kFixedString;
  return Status::Corruption("unknown column type: " + name);
}

}  // namespace

Status SaveTableMetadata(const Table& table, const std::string& meta_path) {
  std::string out = std::string(kMagic) + "\n";
  char scratch[128];
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnDef& col = schema.column(c);
    std::snprintf(scratch, sizeof(scratch), "column %s %zu ",
                  TypeName(col.type), col.string_length);
    out += scratch;
    out += col.name;  // rest of line: names may contain spaces
    out += "\n";
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnStats& stats = table.stats(c);
    std::snprintf(scratch, sizeof(scratch), "stats %zu %d %.17g %.17g\n", c,
                  stats.valid ? 1 : 0, stats.min, stats.max);
    out += scratch;
  }
  std::unique_ptr<WritableFile> file;
  SKYLINE_RETURN_IF_ERROR(table.env()->NewWritableFile(meta_path, &file));
  SKYLINE_RETURN_IF_ERROR(file->Append(out.data(), out.size()));
  return file->Close();
}

Status SaveTableWithColumns(const Table& table, const std::string& meta_path) {
  SKYLINE_RETURN_IF_ERROR(SaveTableMetadata(table, meta_path));
  return WriteTableColumnFile(table);
}

Result<Table> OpenTableWithMetadata(Env* env, const std::string& table_path,
                                    const std::string& meta_path) {
  std::unique_ptr<RandomAccessFile> file;
  SKYLINE_RETURN_IF_ERROR(env->NewRandomAccessFile(meta_path, &file));
  std::string text(file->Size(), '\0');
  SKYLINE_RETURN_IF_ERROR(file->Read(0, text.size(), text.data()));

  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::Corruption("bad table metadata header in " + meta_path);
  }
  std::vector<ColumnDef> columns;
  std::vector<ColumnStats> stats;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "column") {
      std::string type_name;
      size_t length = 0;
      fields >> type_name >> length;
      std::string name;
      std::getline(fields, name);
      if (!name.empty() && name.front() == ' ') name.erase(0, 1);
      if (name.empty()) {
        return Status::Corruption("column without a name in " + meta_path);
      }
      SKYLINE_ASSIGN_OR_RETURN(ColumnType type, TypeFromName(type_name));
      columns.push_back({name, type, length});
    } else if (kind == "stats") {
      size_t index = 0;
      int valid = 0;
      ColumnStats cs;
      fields >> index >> valid >> cs.min >> cs.max;
      if (fields.fail() || index != stats.size() || index >= columns.size()) {
        return Status::Corruption("malformed stats line in " + meta_path);
      }
      cs.valid = valid != 0;
      stats.push_back(cs);
    } else {
      return Status::Corruption("unknown metadata line kind '" + kind +
                                "' in " + meta_path);
    }
  }
  if (columns.empty() || stats.size() != columns.size()) {
    return Status::Corruption("incomplete table metadata in " + meta_path);
  }
  SKYLINE_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
  return Table::Attach(std::move(schema), env, table_path, std::move(stats));
}

}  // namespace skyline
