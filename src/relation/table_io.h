#ifndef SKYLINE_RELATION_TABLE_IO_H_
#define SKYLINE_RELATION_TABLE_IO_H_

#include <string>

#include "common/status.h"
#include "relation/table.h"

namespace skyline {

/// Sidecar-metadata persistence: a Table is a heap file plus schema and
/// column statistics; the heap file lives wherever the Env put it, and
/// these functions serialize the rest to a small text sidecar so tables
/// survive process restarts (with PosixEnv) or can be handed between
/// components (with any Env).
///
/// Format (line-based, versioned):
///   skyline_table v1
///   column <type> <length> <name>      # one per column, order = layout
///   stats <index> <valid> <min> <max>  # one per column
/// Floats round-trip via %.17g. Names may contain spaces (rest-of-line).

/// Writes the sidecar for `table` at `meta_path` in the table's Env.
Status SaveTableMetadata(const Table& table, const std::string& meta_path);

/// Writes the metadata sidecar plus the persisted columnar sidecar
/// (order keys, zone maps, dictionaries) at ColumnFilePathFor(
/// table.path()). Queries that run with Presort::kNone then pick up the
/// persisted zone maps instead of rescanning the heap file.
Status SaveTableWithColumns(const Table& table, const std::string& meta_path);

/// Rebuilds a Table from `meta_path` plus the heap file at `table_path`
/// (row count is derived from the file size). Corruption / version
/// mismatches surface as Corruption.
Result<Table> OpenTableWithMetadata(Env* env, const std::string& table_path,
                                    const std::string& meta_path);

}  // namespace skyline

#endif  // SKYLINE_RELATION_TABLE_IO_H_
