#include "server/protocol.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <sys/socket.h>

namespace skyline {
namespace {

/// recv() the full `count`, looping over short reads and EINTR. Returns
/// the bytes read — short only at end-of-stream.
Result<size_t> ReadFull(int fd, char* buffer, size_t count) {
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::recv(fd, buffer + done, count - done, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + ::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return done;
}

Status WriteFull(int fd, const char* buffer, size_t count) {
  size_t done = 0;
  while (done < count) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as
    // EPIPE, not kill the server process with SIGPIPE.
    const ssize_t n = ::send(fd, buffer + done, count - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + ::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, std::string* payload, uint32_t max_bytes) {
  unsigned char prefix[4];
  SKYLINE_ASSIGN_OR_RETURN(
      size_t got, ReadFull(fd, reinterpret_cast<char*>(prefix), sizeof(prefix)));
  if (got == 0) return Status::NotFound("peer closed the connection");
  if (got < sizeof(prefix)) {
    return Status::IoError("connection closed mid-frame (length prefix)");
  }
  const uint32_t length = (static_cast<uint32_t>(prefix[0]) << 24) |
                          (static_cast<uint32_t>(prefix[1]) << 16) |
                          (static_cast<uint32_t>(prefix[2]) << 8) |
                          static_cast<uint32_t>(prefix[3]);
  if (length > max_bytes) {
    return Status::IoError("frame of " + std::to_string(length) +
                           " bytes exceeds the " + std::to_string(max_bytes) +
                           "-byte limit");
  }
  payload->resize(length);
  if (length > 0) {
    SKYLINE_ASSIGN_OR_RETURN(got, ReadFull(fd, payload->data(), length));
    if (got < length) {
      return Status::IoError("connection closed mid-frame (payload)");
    }
  }
  return Status::OK();
}

Status WriteFrame(int fd, const std::string& payload, uint32_t max_bytes) {
  if (payload.size() > max_bytes) {
    return Status::IoError("response of " + std::to_string(payload.size()) +
                           " bytes exceeds the " + std::to_string(max_bytes) +
                           "-byte limit");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length)};
  SKYLINE_RETURN_IF_ERROR(
      WriteFull(fd, reinterpret_cast<const char*>(prefix), sizeof(prefix)));
  return WriteFull(fd, payload.data(), payload.size());
}

}  // namespace skyline
