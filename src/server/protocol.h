#ifndef SKYLINE_SERVER_PROTOCOL_H_
#define SKYLINE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace skyline {

/// Wire framing for the skyline query server: every message — request and
/// response alike — is a 4-byte big-endian payload length followed by that
/// many bytes of UTF-8 JSON. One request frame yields exactly one response
/// frame; the connection is a sequential request/response stream (no
/// pipelining, no out-of-order responses), which keeps the client a loop
/// of WriteFrame/ReadFrame pairs.
///
/// Request documents:
///   {"op": "query",  "sql": "SELECT ...", "timeout_ms": 1000,
///    "include_rows": true, "include_report": false}
///   {"op": "ping"} | {"op": "stats"} | {"op": "shutdown"}
/// `sql` covers the whole dialect — SELECT/EXPLAIN through the session's
/// cached-read path, INSERT/DELETE through the engine's maintenance write
/// path. `timeout_ms` 0 cancels immediately (a deterministic cancellation
/// probe); absent or negative means no deadline.
///
/// Response documents:
///   {"ok": true, "columns": [...], "rows": [[...], ...],
///    "rows_affected": n, "report": {...}}
///   {"ok": false, "error": {"code": "InvalidArgument", "message": "..."}}
/// The "report" member is a RunReport JSON object (schema v1) whose labels
/// and numbers carry the service counters: result_cache hit/miss/bypass/
/// write, cache hits/misses/invalidations, admission rejections.

/// Default cap on a frame payload (16 MiB): a malformed or hostile length
/// prefix fails fast instead of allocating gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

/// Reads exactly one frame's payload from `fd` into `payload`. Blocks
/// until a full frame arrives. Returns:
///  - OK with the payload on success;
///  - NotFound when the peer closed cleanly *between* frames (the normal
///    end-of-stream — callers exit their serve loop on it);
///  - IoError on mid-frame EOF, socket errors, or a length prefix
///    exceeding `max_bytes`.
Status ReadFrame(int fd, std::string* payload,
                 uint32_t max_bytes = kMaxFrameBytes);

/// Writes `payload` as one frame (length prefix + bytes), retrying short
/// writes. IoError on socket errors or oversized payloads.
Status WriteFrame(int fd, const std::string& payload,
                  uint32_t max_bytes = kMaxFrameBytes);

}  // namespace skyline

#endif  // SKYLINE_SERVER_PROTOCOL_H_
