#include "server/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "core/run_report.h"
#include "core/skyline_algorithm.h"
#include "server/protocol.h"

namespace skyline {
namespace {

/// One result cell, preserving integer width (int64 through a double
/// would corrupt values beyond 2^53).
struct Cell {
  enum class Kind { kInt, kDouble, kText } kind = Kind::kInt;
  int64_t i = 0;
  double d = 0;
  std::string s;
};

void EmitCell(JsonWriter* json, const Cell& cell) {
  switch (cell.kind) {
    case Cell::Kind::kInt:
      json->Value(cell.i);
      break;
    case Cell::Kind::kDouble:
      json->Value(cell.d);
      break;
    case Cell::Kind::kText:
      json->Value(cell.s);
      break;
  }
}

std::string ErrorResponse(const Status& status) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("ok", false);
  json.Key("error");
  json.BeginObject();
  json.KeyValue("code", StatusCodeName(status.code()));
  json.KeyValue("message", status.message());
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

}  // namespace

SkylineServer::SkylineServer(const Options& options) : options_(options) {}

SkylineServer::~SkylineServer() { Stop(); }

Status SkylineServer::Start() {
  if (options_.engine == nullptr) {
    return Status::InvalidArgument("SkylineServer requires an engine");
  }
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server is already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + ::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::IoError(std::string("bind: ") + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  shutdown_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SkylineServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the accept loop, then the per-connection reads.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // fds still listed are still open (workers delist before closing), so
    // shutdown reliably unblocks their recv().
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

SkylineServer::Counters SkylineServer::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void SkylineServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == ECONNABORTED) continue;
      break;  // listen socket is gone; nothing left to accept
    }
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_connections_ >= options_.max_connections ||
          shutdown_requested_.load(std::memory_order_acquire)) {
        ++counters_.connections_rejected;
        reject = true;
      } else {
        ++counters_.connections_accepted;
        ++active_connections_;
        active_fds_.push_back(fd);
        workers_.emplace_back([this, fd] { ServeConnection(fd); });
      }
    }
    if (reject) {
      (void)WriteFrame(fd, ErrorResponse(Status::ResourceExhausted(
                               "server connection limit reached")));
      ::close(fd);
    }
  }
}

void SkylineServer::ServeConnection(int fd) {
  Session session(options_.engine, options_.session);
  std::string payload;
  while (running_.load(std::memory_order_acquire)) {
    const Status read_status = ReadFrame(fd, &payload);
    if (!read_status.ok()) {
      // NotFound = clean close between frames; anything else is already a
      // broken stream, so a best-effort error frame and disconnect.
      if (!read_status.IsNotFound()) {
        (void)WriteFrame(fd, ErrorResponse(read_status));
      }
      break;
    }
    const std::string response = HandleRequest(&session, payload);
    if (!WriteFrame(fd, response).ok()) break;
    if (shutdown_requested_.load(std::memory_order_acquire)) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = active_fds_.begin(); it != active_fds_.end(); ++it) {
      if (*it == fd) {
        active_fds_.erase(it);
        break;
      }
    }
    --active_connections_;
  }
  ::close(fd);
}

bool SkylineServer::TryAcquireQuerySlot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_queries_ >= options_.max_concurrent_queries) {
    ++counters_.admission_rejected;
    return false;
  }
  ++active_queries_;
  ++counters_.queries_started;
  return true;
}

void SkylineServer::ReleaseQuerySlot() {
  std::lock_guard<std::mutex> lock(mu_);
  --active_queries_;
}

std::string SkylineServer::HandleRequest(Session* session,
                                         const std::string& payload) {
  Result<JsonValue> parsed = ParseJson(payload);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue& request = *parsed;
  if (!request.is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"));
  }
  const std::string op = request.GetString("op", "query");
  if (op == "query") return HandleQuery(session, request);
  if (op == "ping") {
    JsonWriter json;
    json.BeginObject();
    json.KeyValue("ok", true);
    json.KeyValue("pong", true);
    json.EndObject();
    return json.TakeString();
  }
  if (op == "stats") {
    const Counters counters = this->counters();
    const Engine::CacheCounters cache = options_.engine->cache_counters();
    JsonWriter json;
    json.BeginObject();
    json.KeyValue("ok", true);
    json.Key("server");
    json.BeginObject();
    json.KeyValue("connections_accepted", counters.connections_accepted);
    json.KeyValue("connections_rejected", counters.connections_rejected);
    json.KeyValue("queries_started", counters.queries_started);
    json.KeyValue("queries_ok", counters.queries_ok);
    json.KeyValue("queries_error", counters.queries_error);
    json.KeyValue("admission_rejected", counters.admission_rejected);
    json.KeyValue("queries_timed_out", counters.queries_timed_out);
    json.EndObject();
    json.Key("cache");
    json.BeginObject();
    json.KeyValue("hits", cache.hits);
    json.KeyValue("misses", cache.misses);
    json.KeyValue("invalidations", cache.invalidations);
    json.KeyValue("patched", cache.patched);
    json.KeyValue("repaired", cache.repaired);
    json.KeyValue("evictions", cache.evictions);
    json.KeyValue("entries", options_.engine->cache_size());
    json.EndObject();
    json.EndObject();
    return json.TakeString();
  }
  if (op == "shutdown") {
    if (!options_.allow_remote_shutdown) {
      return ErrorResponse(
          Status::NotSupported("remote shutdown is disabled"));
    }
    shutdown_requested_.store(true, std::memory_order_release);
    JsonWriter json;
    json.BeginObject();
    json.KeyValue("ok", true);
    json.KeyValue("shutting_down", true);
    json.EndObject();
    return json.TakeString();
  }
  return ErrorResponse(Status::InvalidArgument("unknown op: " + op));
}

std::string SkylineServer::HandleQuery(Session* session,
                                       const JsonValue& request) {
  const JsonValue* sql_value = request.Find("sql");
  if (sql_value == nullptr || !sql_value->is_string()) {
    return ErrorResponse(
        Status::InvalidArgument("query request requires a string \"sql\""));
  }
  const std::string& sql = sql_value->string_value();
  const double timeout_ms = request.GetNumber("timeout_ms", -1);
  const bool include_rows = request.GetBool("include_rows", true);
  const bool include_report = request.GetBool("include_report", true);

  if (!TryAcquireQuerySlot()) {
    return ErrorResponse(Status::ResourceExhausted(
        "server is at its concurrent-query limit; retry"));
  }

  // Arm the per-query deadline on the session's cancellation hook. The
  // engine's long loops poll it, so an overrunning query aborts with
  // kCancelled instead of holding its admission slot. timeout_ms = 0 is
  // the deterministic probe: cancelled at the very first poll.
  if (timeout_ms == 0) {
    session->exec().cancelled = [] { return true; };
  } else if (timeout_ms > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(timeout_ms * 1000));
    session->exec().cancelled = [deadline] {
      return std::chrono::steady_clock::now() >= deadline;
    };
  } else {
    session->exec().cancelled = nullptr;
  }

  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;
  std::vector<std::vector<Cell>> rows;
  auto visitor = [&](const RowView& row) {
    const Schema& schema = row.schema();
    if (column_names.empty()) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        column_names.push_back(schema.column(c).name);
        column_types.push_back(schema.column(c).type);
      }
    }
    if (!include_rows) return Status::OK();
    std::vector<Cell> cells(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      Cell& cell = cells[c];
      switch (schema.column(c).type) {
        case ColumnType::kInt32:
          cell.kind = Cell::Kind::kInt;
          cell.i = row.GetInt32(c);
          break;
        case ColumnType::kInt64:
          cell.kind = Cell::Kind::kInt;
          cell.i = row.GetInt64(c);
          break;
        case ColumnType::kFloat64:
          cell.kind = Cell::Kind::kDouble;
          cell.d = row.GetFloat64(c);
          break;
        case ColumnType::kFixedString:
          cell.kind = Cell::Kind::kText;
          cell.s = row.GetString(c);
          break;
      }
    }
    rows.push_back(std::move(cells));
    return Status::OK();
  };

  const auto started = std::chrono::steady_clock::now();
  Session::Outcome outcome;
  const Status status = session->Execute(sql, visitor, &outcome);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  session->exec().cancelled = nullptr;
  ReleaseQuerySlot();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      ++counters_.queries_ok;
    } else {
      ++counters_.queries_error;
      if (status.IsCancelled() && timeout_ms >= 0) {
        ++counters_.queries_timed_out;
      }
    }
  }
  if (!status.ok()) return ErrorResponse(status);

  JsonWriter json;
  json.BeginObject();
  json.KeyValue("ok", true);
  if (!column_names.empty()) {
    json.Key("columns");
    json.BeginArray();
    for (const std::string& name : column_names) json.Value(name);
    json.EndArray();
  }
  if (include_rows && !outcome.write) {
    json.Key("rows");
    json.BeginArray();
    for (const std::vector<Cell>& row : rows) {
      json.BeginArray();
      for (const Cell& cell : row) EmitCell(&json, cell);
      json.EndArray();
    }
    json.EndArray();
  }
  json.KeyValue("rows_emitted", outcome.rows_emitted);
  if (outcome.write) {
    json.KeyValue("rows_affected", outcome.rows_affected);
    json.KeyValue("table_version", outcome.mutation.version);
  }
  if (!outcome.info.plan_text.empty()) {
    json.KeyValue("plan_text", outcome.info.plan_text);
  }
  if (include_report) {
    const Engine::CacheCounters cache =
        options_.engine->cache_counters();
    const Counters counters = this->counters();
    RunReport report;
    report.tool = "skyline_server";
    report.algorithm = SkylineAlgorithmName(session->options().algorithm);
    report.wall_seconds = wall_seconds;
    report.labels.emplace_back(
        "result_cache",
        outcome.write
            ? "write"
            : (outcome.cache_eligible ? (outcome.cache_hit ? "hit" : "miss")
                                      : "bypass"));
    report.numbers.emplace_back("cache_hits", cache.hits);
    report.numbers.emplace_back("cache_misses", cache.misses);
    report.numbers.emplace_back("cache_invalidations", cache.invalidations);
    report.numbers.emplace_back("cache_patched", cache.patched);
    report.numbers.emplace_back("cache_repaired", cache.repaired);
    report.numbers.emplace_back("cache_evictions", cache.evictions);
    report.numbers.emplace_back("admission_rejected",
                                counters.admission_rejected);
    if (outcome.write) {
      report.numbers.emplace_back("entries_patched",
                                  outcome.mutation.entries_patched);
      report.numbers.emplace_back("entries_repaired",
                                  outcome.mutation.entries_repaired);
      report.numbers.emplace_back("entries_invalidated",
                                  outcome.mutation.entries_invalidated);
    }
    report.plan = outcome.info.plan;
    json.Key("report");
    AppendRunReportObject(&json, report);
  }
  json.EndObject();
  return json.TakeString();
}

}  // namespace skyline
