#ifndef SKYLINE_SERVER_SERVER_H_
#define SKYLINE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "sql/engine.h"

namespace skyline {

/// Long-running TCP query server over one Engine: tables and caches stay
/// resident across connections, each connection gets its own Session
/// (thread-per-connection), and concurrent query execution is bounded by
/// an admission-controlled slot pool — a query that cannot get a slot is
/// rejected immediately with a ResourceExhausted response rather than
/// queued without bound.
///
/// Per-query deadlines ride the Session's ExecContext cancellation hook:
/// `timeout_ms` in the request arms a monotonic deadline that the engine's
/// long loops poll, so an overrunning query aborts with kCancelled instead
/// of holding its slot indefinitely (timeout_ms = 0 cancels at the first
/// poll — a deterministic probe the tests use).
///
/// Wire protocol: see server/protocol.h.
class SkylineServer {
 public:
  struct Options {
    /// Engine to serve; borrowed, required, must outlive the server.
    Engine* engine = nullptr;
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read the
    /// bound port from port() after Start()).
    uint16_t port = 0;
    /// Concurrent connections beyond this are accepted and immediately
    /// told the server is full (then closed).
    size_t max_connections = 64;
    /// Concurrent *executing queries* (admission slots). Connections
    /// beyond this hold no resources until they send a request; a request
    /// that finds no free slot is rejected, not queued.
    size_t max_concurrent_queries = 4;
    /// Session template applied to every connection (algorithm, threads,
    /// cache policy).
    Session::Options session;
    /// Allow {"op": "shutdown"} requests to stop the server (handy for
    /// scripted smoke tests; off for long-lived deployments).
    bool allow_remote_shutdown = false;
  };

  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;
    uint64_t queries_started = 0;
    uint64_t queries_ok = 0;
    uint64_t queries_error = 0;
    /// Requests bounced by admission control (no free query slot).
    uint64_t admission_rejected = 0;
    /// Queries aborted by their deadline.
    uint64_t queries_timed_out = 0;
  };

  explicit SkylineServer(const Options& options);
  ~SkylineServer();

  SkylineServer(const SkylineServer&) = delete;
  SkylineServer& operator=(const SkylineServer&) = delete;

  /// Binds, listens, and starts the accept thread. InvalidArgument without
  /// an engine; IoError when the port cannot be bound.
  Status Start();

  /// Stops accepting, closes every active connection, and joins all
  /// threads. Idempotent; also runs on destruction.
  void Stop();

  /// True between a successful Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once an authorized {"op": "shutdown"} request arrived. The
  /// owner's run loop polls this and calls Stop() — a connection handler
  /// cannot join its own thread.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// The bound port (after Start(); useful with Options::port = 0).
  uint16_t port() const { return port_; }

  Counters counters() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Executes one parsed request document, returning the response JSON.
  std::string HandleRequest(Session* session, const std::string& payload);
  std::string HandleQuery(Session* session, const class JsonValue& request);

  bool TryAcquireQuerySlot();
  void ReleaseQuerySlot();

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::vector<std::thread> workers_;  // joined by Stop()
  std::vector<int> active_fds_;       // closed by Stop() to unblock reads
  size_t active_connections_ = 0;
  size_t active_queries_ = 0;
  Counters counters_;
};

}  // namespace skyline

#endif  // SKYLINE_SERVER_SERVER_H_
