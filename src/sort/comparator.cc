#include "sort/comparator.h"

#include "common/logging.h"

namespace skyline {

LexicographicOrdering::LexicographicOrdering(const Schema* schema,
                                             std::vector<SortKey> keys)
    : schema_(schema), keys_(std::move(keys)) {
  SKYLINE_CHECK(!keys_.empty()) << "lexicographic ordering needs keys";
  for (const auto& key : keys_) {
    SKYLINE_CHECK_LT(key.column, schema_->num_columns());
  }
}

int LexicographicOrdering::Compare(const char* a, const char* b) const {
  for (const auto& key : keys_) {
    int c = schema_->CompareColumn(key.column, a, b);
    if (c != 0) return key.descending ? -c : c;
  }
  return 0;
}

}  // namespace skyline
