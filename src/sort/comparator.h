#ifndef SKYLINE_SORT_COMPARATOR_H_
#define SKYLINE_SORT_COMPARATOR_H_

#include <cstddef>
#include <vector>

#include "relation/schema.h"

namespace skyline {

/// Total-order interface over raw fixed-width rows, used by the external
/// sorter. Implementations must be consistent (strict weak ordering).
///
/// When `has_key()` is true the ordering is "larger double key first",
/// with key ties resolved by Compare(); the sorter then caches one key per
/// record and only falls back to multi-column comparisons on equal keys —
/// this is the paper's observation that sorting on a single computed
/// attribute (the entropy score E) is cheaper than a nested sort over many
/// attributes. Implementations whose Compare() distinguishes rows that
/// share a key (e.g. an exact tie-break under a lossy score) rely on this
/// fallback for correctness.
class RowOrdering {
 public:
  virtual ~RowOrdering() = default;

  /// Negative if `a` sorts before `b`, 0 if equivalent, positive otherwise.
  virtual int Compare(const char* a, const char* b) const = 0;

  /// True if the order is exactly "descending by Key()".
  virtual bool has_key() const { return false; }

  /// Scalar sort key; only meaningful when has_key() is true.
  virtual double Key(const char* /*row*/) const { return 0.0; }
};

/// One column of a lexicographic sort.
struct SortKey {
  size_t column = 0;
  bool descending = false;
};

/// Nested (lexicographic) ordering over schema columns — the `ORDER BY a1
/// DESC, ..., ak DESC` of the paper's Figure 6.
class LexicographicOrdering : public RowOrdering {
 public:
  /// `schema` must outlive the ordering.
  LexicographicOrdering(const Schema* schema, std::vector<SortKey> keys);

  int Compare(const char* a, const char* b) const override;

  const std::vector<SortKey>& keys() const { return keys_; }

 private:
  const Schema* schema_;
  std::vector<SortKey> keys_;
};

/// Ordering that inverts another (for worst-case input experiments such as
/// the paper's reverse-entropy BNL runs).
class ReverseOrdering : public RowOrdering {
 public:
  /// `base` must outlive the ordering.
  explicit ReverseOrdering(const RowOrdering* base) : base_(base) {}

  int Compare(const char* a, const char* b) const override {
    return -base_->Compare(a, b);
  }

 private:
  const RowOrdering* base_;
};

}  // namespace skyline

#endif  // SKYLINE_SORT_COMPARATOR_H_
