#include "sort/external_sort.h"

#include <algorithm>
#include <cstring>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace skyline {
namespace {

/// One input cursor of a k-way merge: wraps a reader and buffers the
/// current record (reader pointers are invalidated by Next()).
class MergeCursor {
 public:
  MergeCursor(Env* env, const std::string& path, size_t record_size,
              const RowOrdering* ordering, IoStats* io)
      : reader_(env, path, record_size, io),
        ordering_(ordering),
        record_(record_size) {}

  Status Open() {
    SKYLINE_RETURN_IF_ERROR(reader_.Open());
    return Advance();
  }

  bool exhausted() const { return exhausted_; }
  const char* record() const { return record_.data(); }
  double key() const { return key_; }

  Status Advance() {
    const char* next = reader_.Next();
    if (next == nullptr) {
      SKYLINE_RETURN_IF_ERROR(reader_.status());
      exhausted_ = true;
      return Status::OK();
    }
    std::memcpy(record_.data(), next, record_.size());
    if (ordering_->has_key()) key_ = ordering_->Key(record_.data());
    return Status::OK();
  }

 private:
  HeapFileReader reader_;
  const RowOrdering* ordering_;
  std::vector<char> record_;
  double key_ = 0.0;
  bool exhausted_ = false;
};

}  // namespace

ExternalSorter::ExternalSorter(Env* env, TempFileManager* temp_files,
                               const RowOrdering* ordering, size_t record_size,
                               const SortOptions& options, SortStats* stats_out)
    : env_(env),
      temp_files_(temp_files),
      ordering_(ordering),
      record_size_(record_size),
      options_(options),
      stats_out_(stats_out),
      stats_(stats_out_ != nullptr ? stats_out_ : &local_stats_) {
  SKYLINE_CHECK_GE(options_.buffer_pages, 3u)
      << "external sort needs at least 3 buffer pages";
}

Result<std::string> ExternalSorter::Sort(const std::string& input_path) {
  *stats_ = SortStats{};
  std::vector<std::string> runs;
  SKYLINE_ASSIGN_OR_RETURN(std::string single, GenerateRuns(input_path, &runs));
  if (!single.empty()) return single;  // fit in one run
  return MergeRuns(std::move(runs));
}

Result<std::string> ExternalSorter::GenerateRuns(
    const std::string& input_path, std::vector<std::string>* runs) {
  const size_t per_page = RecordsPerPage(record_size_);
  const size_t run_capacity = options_.buffer_pages * per_page;

  HeapFileReader reader(env_, input_path, record_size_, nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());

  // Record storage plus sort handles. With a scalar key ordering we sort
  // (key, index) pairs; otherwise pointers via the comparator.
  std::vector<char> buffer;
  buffer.reserve(run_capacity * record_size_);

  const bool by_key = ordering_->has_key();
  const uint64_t total_records = reader.record_count();
  const bool single_run = total_records <= run_capacity;
  RowFilter* filter = options_.filter;

  while (true) {
    buffer.clear();
    size_t n = 0;
    while (n < run_capacity) {
      const char* rec = reader.Next();
      if (rec == nullptr) break;
      if (filter != nullptr && !filter->Keep(rec)) {
        ++stats_->records_filtered;
        continue;
      }
      buffer.insert(buffer.end(), rec, rec + record_size_);
      ++n;
    }
    SKYLINE_RETURN_IF_ERROR(reader.status());
    if (n == 0) break;

    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    if (by_key) {
      std::vector<double> keys(n);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = ordering_->Key(buffer.data() + i * record_size_);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&keys](uint32_t a, uint32_t b) {
                         return keys[a] > keys[b];  // larger key first
                       });
    } else {
      const char* base = buffer.data();
      const size_t width = record_size_;
      std::stable_sort(order.begin(), order.end(),
                       [this, base, width](uint32_t a, uint32_t b) {
                         return ordering_->Compare(base + a * width,
                                                   base + b * width) < 0;
                       });
    }

    std::string run_path = temp_files_->Allocate("sortrun");
    HeapFileWriter writer(env_, run_path, record_size_, &stats_->io);
    SKYLINE_RETURN_IF_ERROR(writer.Open());
    for (size_t i = 0; i < n; ++i) {
      SKYLINE_RETURN_IF_ERROR(
          writer.Append(buffer.data() + order[i] * record_size_));
    }
    SKYLINE_RETURN_IF_ERROR(writer.Finish());
    runs->push_back(std::move(run_path));
    ++stats_->runs_generated;
    if (single_run) {
      // The whole input fit in the buffer: done after one run.
      return runs->front();
    }
  }
  if (runs->empty()) {
    // Empty input: produce an empty sorted file.
    std::string path = temp_files_->Allocate("sortrun");
    HeapFileWriter writer(env_, path, record_size_, &stats_->io);
    SKYLINE_RETURN_IF_ERROR(writer.Open());
    SKYLINE_RETURN_IF_ERROR(writer.Finish());
    ++stats_->runs_generated;
    return path;
  }
  if (runs->size() == 1) return runs->front();
  return std::string();  // multiple runs: caller merges
}

Result<std::string> ExternalSorter::MergeRuns(std::vector<std::string> runs) {
  const size_t fan_in = std::max<size_t>(2, options_.buffer_pages - 1);
  while (runs.size() > 1) {
    ++stats_->merge_levels;
    std::vector<std::string> next_level;
    for (size_t i = 0; i < runs.size(); i += fan_in) {
      const size_t end = std::min(runs.size(), i + fan_in);
      std::vector<std::string> group(runs.begin() + i, runs.begin() + end);
      if (group.size() == 1) {
        next_level.push_back(group.front());
        continue;
      }
      SKYLINE_ASSIGN_OR_RETURN(std::string merged, MergeOnce(group));
      for (const auto& run : group) temp_files_->Delete(run);
      next_level.push_back(std::move(merged));
    }
    runs = std::move(next_level);
  }
  return runs.front();
}

Result<std::string> ExternalSorter::MergeOnce(
    const std::vector<std::string>& group) {
  std::vector<std::unique_ptr<MergeCursor>> cursors;
  cursors.reserve(group.size());
  for (const auto& path : group) {
    auto cursor = std::make_unique<MergeCursor>(env_, path, record_size_,
                                                ordering_, &stats_->io);
    SKYLINE_RETURN_IF_ERROR(cursor->Open());
    if (!cursor->exhausted()) cursors.push_back(std::move(cursor));
  }

  const bool by_key = ordering_->has_key();
  auto before = [this, by_key](const MergeCursor* a,
                               const MergeCursor* b) {
    if (by_key) return a->key() > b->key();
    return ordering_->Compare(a->record(), b->record()) < 0;
  };
  // Min-heap on "before": comparator for push_heap must say "worse first".
  auto heap_cmp = [&before](MergeCursor* a, MergeCursor* b) {
    return before(b, a);
  };

  std::vector<MergeCursor*> heap;
  heap.reserve(cursors.size());
  for (auto& c : cursors) heap.push_back(c.get());
  std::make_heap(heap.begin(), heap.end(), heap_cmp);

  std::string out_path = temp_files_->Allocate("sortmerge");
  HeapFileWriter writer(env_, out_path, record_size_, &stats_->io);
  SKYLINE_RETURN_IF_ERROR(writer.Open());

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_cmp);
    MergeCursor* top = heap.back();
    SKYLINE_RETURN_IF_ERROR(writer.Append(top->record()));
    SKYLINE_RETURN_IF_ERROR(top->Advance());
    if (top->exhausted()) {
      heap.pop_back();
    } else {
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  }
  SKYLINE_RETURN_IF_ERROR(writer.Finish());
  return out_path;
}

Result<std::string> SortHeapFile(Env* env, TempFileManager* temp_files,
                                 const std::string& input_path,
                                 size_t record_size,
                                 const RowOrdering& ordering,
                                 const SortOptions& options,
                                 SortStats* stats) {
  ExternalSorter sorter(env, temp_files, &ordering, record_size, options,
                        stats);
  return sorter.Sort(input_path);
}

}  // namespace skyline
