#include "sort/external_sort.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <future>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace skyline {
namespace {

/// One input cursor of a k-way merge: wraps a reader and buffers the
/// current record (reader pointers are invalidated by Next()).
class MergeCursor {
 public:
  MergeCursor(Env* env, const std::string& path, size_t record_size,
              const RowOrdering* ordering, IoStats* io)
      : reader_(env, path, record_size, io),
        ordering_(ordering),
        record_(record_size) {}

  Status Open() {
    SKYLINE_RETURN_IF_ERROR(reader_.Open());
    return Advance();
  }

  bool exhausted() const { return exhausted_; }
  const char* record() const { return record_.data(); }
  double key() const { return key_; }

  Status Advance() {
    const char* next = reader_.Next();
    if (next == nullptr) {
      SKYLINE_RETURN_IF_ERROR(reader_.status());
      exhausted_ = true;
      return Status::OK();
    }
    std::memcpy(record_.data(), next, record_.size());
    if (ordering_->has_key()) key_ = ordering_->Key(record_.data());
    return Status::OK();
  }

 private:
  HeapFileReader reader_;
  const RowOrdering* ordering_;
  std::vector<char> record_;
  double key_ = 0.0;
  bool exhausted_ = false;
};

/// Double-buffered record sink: the merge thread deposits records into the
/// front batch while a background task appends the back batch to the
/// writer, overlapping comparison work with page I/O. Appends are chained
/// through a single future, so writer calls stay strictly ordered.
class OverlappedAppender {
 public:
  OverlappedAppender(HeapFileWriter* writer, ThreadPool* pool,
                     size_t record_size)
      : writer_(writer), pool_(pool), record_size_(record_size) {
    // Batch a few pages' worth so one handoff amortizes task overhead.
    batch_capacity_ = 8 * RecordsPerPage(record_size);
    if (batch_capacity_ == 0) batch_capacity_ = 1;
    front_.reserve(batch_capacity_ * record_size_);
    back_.reserve(batch_capacity_ * record_size_);
  }

  Status Append(const char* record) {
    front_.insert(front_.end(), record, record + record_size_);
    if (front_.size() >= batch_capacity_ * record_size_) {
      return FlushBatch();
    }
    return Status::OK();
  }

  /// Waits for the in-flight batch and appends the tail synchronously.
  Status Finish() {
    SKYLINE_RETURN_IF_ERROR(FlushBatch());
    return WaitInFlight();
  }

 private:
  Status FlushBatch() {
    SKYLINE_RETURN_IF_ERROR(WaitInFlight());
    if (front_.empty()) return Status::OK();
    front_.swap(back_);
    front_.clear();
    in_flight_ = pool_->Submit([this]() {
      const size_t count = back_.size() / record_size_;
      for (size_t i = 0; i < count; ++i) {
        Status st = writer_->Append(back_.data() + i * record_size_);
        if (!st.ok()) return st;
      }
      return Status::OK();
    });
    return Status::OK();
  }

  Status WaitInFlight() {
    if (!in_flight_.valid()) return Status::OK();
    Status st = in_flight_.get();
    in_flight_ = std::future<Status>();
    return st;
  }

  HeapFileWriter* writer_;
  ThreadPool* pool_;
  size_t record_size_;
  size_t batch_capacity_;
  std::vector<char> front_;
  std::vector<char> back_;
  std::future<Status> in_flight_;
};

}  // namespace

ExternalSorter::ExternalSorter(Env* env, TempFileManager* temp_files,
                               const RowOrdering* ordering, size_t record_size,
                               const SortOptions& options,
                               const ExecContext& ctx, SortStats* stats_out)
    : env_(env),
      temp_files_(temp_files),
      ordering_(ordering),
      record_size_(record_size),
      options_(options),
      ctx_(&ctx),
      stats_out_(stats_out),
      stats_(stats_out_ != nullptr ? stats_out_ : &local_stats_) {
  SKYLINE_CHECK_GE(options_.buffer_pages, 3u)
      << "external sort needs at least 3 buffer pages";
}

Result<std::string> ExternalSorter::Sort(const std::string& input_path) {
  *stats_ = SortStats{};
  SKYLINE_RETURN_IF_ERROR(ctx_->CheckCancelled());
  // An explicit context override takes the clamped resolution; otherwise
  // the options field keeps its historical literal semantics (callers like
  // SFS clamp before setting it).
  const size_t threads = ctx_->threads.has_value()
                             ? ctx_->ResolveThreads(options_.threads)
                             : ResolveThreadCount(options_.threads);
  stats_->threads_used = threads;
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  std::vector<std::string> runs;
  TraceSpan run_span(ctx_->trace, "run-formation");
  SKYLINE_ASSIGN_OR_RETURN(std::string single, GenerateRuns(input_path, &runs));
  run_span.End();
  if (!single.empty()) return single;  // fit in one run
  return MergeRuns(std::move(runs));
}

Status ExternalSorter::SortAndWriteRun(std::vector<char> buffer, size_t count,
                                       const std::string& run_path,
                                       IoStats* io) {
  std::vector<uint32_t> order(count);
  for (size_t i = 0; i < count; ++i) order[i] = static_cast<uint32_t>(i);
  if (ordering_->has_key()) {
    std::vector<double> keys(count);
    for (size_t i = 0; i < count; ++i) {
      keys[i] = ordering_->Key(buffer.data() + i * record_size_);
    }
    const char* base = buffer.data();
    const size_t width = record_size_;
    std::stable_sort(order.begin(), order.end(),
                     [this, &keys, base, width](uint32_t a, uint32_t b) {
                       if (keys[a] > keys[b]) return true;  // larger key first
                       if (keys[a] < keys[b]) return false;
                       // Equal scalar keys may still hide an ordering (the
                       // ordering's exact tie-break); delegate.
                       return ordering_->Compare(base + a * width,
                                                 base + b * width) < 0;
                     });
  } else {
    const char* base = buffer.data();
    const size_t width = record_size_;
    std::stable_sort(order.begin(), order.end(),
                     [this, base, width](uint32_t a, uint32_t b) {
                       return ordering_->Compare(base + a * width,
                                                 base + b * width) < 0;
                     });
  }

  HeapFileWriter writer(env_, run_path, record_size_, io);
  SKYLINE_RETURN_IF_ERROR(writer.Open());
  for (size_t i = 0; i < count; ++i) {
    SKYLINE_RETURN_IF_ERROR(
        writer.Append(buffer.data() + order[i] * record_size_));
  }
  return writer.Finish();
}

Result<std::string> ExternalSorter::GenerateRuns(
    const std::string& input_path, std::vector<std::string>* runs) {
  const size_t per_page = RecordsPerPage(record_size_);
  const size_t run_capacity = options_.buffer_pages * per_page;

  HeapFileReader reader(env_, input_path, record_size_, nullptr);
  SKYLINE_RETURN_IF_ERROR(reader.Open());

  const uint64_t total_records = reader.record_count();
  const bool single_run = total_records <= run_capacity;
  RowFilter* filter = options_.filter;

  // Pipelined run formation: the input scan stays sequential (so run
  // boundaries — and therefore the final sorted bytes — are identical for
  // every thread count), but whole runs are sorted and written as pool
  // tasks while the scan fills the next buffer.
  struct PendingRun {
    std::future<Status> done;
    IoStats io;
  };
  std::deque<PendingRun> pending;
  const size_t max_in_flight = pool_ != nullptr ? pool_->num_threads() : 0;
  Status background_error;

  auto reap_front = [&]() {
    Status st = pending.front().done.get();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_->io += pending.front().io;
    }
    pending.pop_front();
    if (!st.ok() && background_error.ok()) background_error = st;
  };
  auto reap_all = [&]() {
    while (!pending.empty()) reap_front();
  };

  std::vector<char> buffer;
  buffer.reserve(run_capacity * record_size_);
  const bool poll_cancel = ctx_->has_cancel_hook();
  uint64_t scanned = 0;

  while (true) {
    buffer.clear();
    size_t n = 0;
    while (n < run_capacity) {
      const char* rec = reader.Next();
      if (rec == nullptr) break;
      if (poll_cancel && (++scanned & 4095u) == 0) {
        Status st = ctx_->CheckCancelled();
        if (!st.ok()) {
          reap_all();
          return st;
        }
      }
      if (filter != nullptr && !filter->Keep(rec)) {
        ++stats_->records_filtered;
        continue;
      }
      buffer.insert(buffer.end(), rec, rec + record_size_);
      ++n;
    }
    if (!reader.status().ok()) {
      reap_all();
      return reader.status();
    }
    if (n == 0) break;

    std::string run_path = temp_files_->Allocate("sortrun");
    runs->push_back(run_path);
    ++stats_->runs_generated;

    if (pool_ != nullptr && !single_run) {
      if (pending.size() >= max_in_flight) reap_front();
      if (!background_error.ok()) break;  // stop scanning on task failure
      pending.emplace_back();
      PendingRun& slot = pending.back();
      slot.done = pool_->Submit(
          [this, buf = std::move(buffer), n, run_path, io = &slot.io]() mutable {
            return SortAndWriteRun(std::move(buf), n, run_path, io);
          });
      buffer = std::vector<char>();
      buffer.reserve(run_capacity * record_size_);
    } else {
      IoStats io;
      Status st = SortAndWriteRun(std::move(buffer), n, run_path, &io);
      stats_->io += io;
      buffer = std::vector<char>();
      buffer.reserve(run_capacity * record_size_);
      if (!st.ok()) {
        reap_all();
        return st;
      }
      if (single_run) {
        // The whole input fit in the buffer: done after one run.
        return runs->front();
      }
    }
  }
  reap_all();
  SKYLINE_RETURN_IF_ERROR(background_error);

  if (runs->empty()) {
    // Empty input: produce an empty sorted file.
    std::string path = temp_files_->Allocate("sortrun");
    HeapFileWriter writer(env_, path, record_size_, &stats_->io);
    SKYLINE_RETURN_IF_ERROR(writer.Open());
    SKYLINE_RETURN_IF_ERROR(writer.Finish());
    ++stats_->runs_generated;
    return path;
  }
  if (runs->size() == 1) return runs->front();
  return std::string();  // multiple runs: caller merges
}

Result<std::string> ExternalSorter::MergeRuns(std::vector<std::string> runs) {
  const size_t fan_in = std::max<size_t>(2, options_.buffer_pages - 1);
  while (runs.size() > 1) {
    ++stats_->merge_levels;
    SKYLINE_RETURN_IF_ERROR(ctx_->CheckCancelled());
    TraceSpan merge_span(ctx_->trace, "merge",
                         static_cast<int64_t>(stats_->merge_levels));
    // Form this level's groups up front so their outputs are allocated in
    // order; independent groups then merge concurrently.
    std::vector<std::vector<std::string>> groups;
    std::vector<std::string> next_level;
    std::vector<size_t> group_slot;  // index into next_level per group
    for (size_t i = 0; i < runs.size(); i += fan_in) {
      const size_t end = std::min(runs.size(), i + fan_in);
      std::vector<std::string> group(runs.begin() + i, runs.begin() + end);
      if (group.size() == 1) {
        next_level.push_back(std::move(group.front()));
        continue;
      }
      next_level.push_back(temp_files_->Allocate("sortmerge"));
      group_slot.push_back(next_level.size() - 1);
      groups.push_back(std::move(group));
    }

    if (pool_ != nullptr && groups.size() > 1) {
      std::vector<std::future<Status>> done(groups.size());
      std::vector<IoStats> io(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        done[g] = pool_->Submit([this, &groups, &next_level, &group_slot, &io,
                                 g]() {
          // No append_pool from inside a pool task: a task must not wait
          // on work it queued behind its siblings.
          return MergeOnce(groups[g], next_level[group_slot[g]],
                           /*append_pool=*/nullptr, &io[g]);
        });
      }
      Status first_error;
      for (size_t g = 0; g < groups.size(); ++g) {
        Status st = done[g].get();
        stats_->io += io[g];
        if (!st.ok() && first_error.ok()) first_error = st;
      }
      SKYLINE_RETURN_IF_ERROR(first_error);
    } else {
      for (size_t g = 0; g < groups.size(); ++g) {
        IoStats io;
        Status st = MergeOnce(groups[g], next_level[group_slot[g]],
                              /*append_pool=*/pool_.get(), &io);
        stats_->io += io;
        SKYLINE_RETURN_IF_ERROR(st);
      }
    }
    for (const auto& group : groups) {
      for (const auto& run : group) temp_files_->Delete(run);
    }
    runs = std::move(next_level);
  }
  return runs.front();
}

Status ExternalSorter::MergeOnce(const std::vector<std::string>& group,
                                 const std::string& out_path,
                                 ThreadPool* append_pool, IoStats* io) {
  std::vector<std::unique_ptr<MergeCursor>> cursors;
  cursors.reserve(group.size());
  for (const auto& path : group) {
    auto cursor =
        std::make_unique<MergeCursor>(env_, path, record_size_, ordering_, io);
    SKYLINE_RETURN_IF_ERROR(cursor->Open());
    if (!cursor->exhausted()) cursors.push_back(std::move(cursor));
  }

  const bool by_key = ordering_->has_key();
  auto before = [this, by_key](const MergeCursor* a,
                               const MergeCursor* b) {
    if (by_key) {
      if (a->key() > b->key()) return true;
      if (a->key() < b->key()) return false;
      // Fall through: equal keys resolve by the ordering's exact
      // tie-break, keeping the merge consistent with run formation.
    }
    return ordering_->Compare(a->record(), b->record()) < 0;
  };
  // Min-heap on "before": comparator for push_heap must say "worse first".
  auto heap_cmp = [&before](MergeCursor* a, MergeCursor* b) {
    return before(b, a);
  };

  std::vector<MergeCursor*> heap;
  heap.reserve(cursors.size());
  for (auto& c : cursors) heap.push_back(c.get());
  std::make_heap(heap.begin(), heap.end(), heap_cmp);

  HeapFileWriter writer(env_, out_path, record_size_, io);
  SKYLINE_RETURN_IF_ERROR(writer.Open());
  std::unique_ptr<OverlappedAppender> overlapped;
  if (append_pool != nullptr) {
    overlapped =
        std::make_unique<OverlappedAppender>(&writer, append_pool,
                                             record_size_);
  }

  const bool poll_cancel = ctx_->has_cancel_hook();
  uint64_t merged = 0;
  while (!heap.empty()) {
    if (poll_cancel && (++merged & 4095u) == 0) {
      SKYLINE_RETURN_IF_ERROR(ctx_->CheckCancelled());
    }
    std::pop_heap(heap.begin(), heap.end(), heap_cmp);
    MergeCursor* top = heap.back();
    if (overlapped != nullptr) {
      SKYLINE_RETURN_IF_ERROR(overlapped->Append(top->record()));
    } else {
      SKYLINE_RETURN_IF_ERROR(writer.Append(top->record()));
    }
    SKYLINE_RETURN_IF_ERROR(top->Advance());
    if (top->exhausted()) {
      heap.pop_back();
    } else {
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  }
  if (overlapped != nullptr) {
    SKYLINE_RETURN_IF_ERROR(overlapped->Finish());
  }
  SKYLINE_RETURN_IF_ERROR(writer.Finish());
  return Status::OK();
}

Result<std::string> SortHeapFile(Env* env, TempFileManager* temp_files,
                                 const std::string& input_path,
                                 size_t record_size,
                                 const RowOrdering& ordering,
                                 const SortOptions& options,
                                 const ExecContext& ctx, SortStats* stats) {
  ExternalSorter sorter(env, temp_files, &ordering, record_size, options, ctx,
                        stats);
  return sorter.Sort(input_path);
}

}  // namespace skyline
