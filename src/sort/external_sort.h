#ifndef SKYLINE_SORT_EXTERNAL_SORT_H_
#define SKYLINE_SORT_EXTERNAL_SORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "env/env.h"
#include "sort/comparator.h"
#include "storage/io_stats.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// Record-level filter applied while the sorter reads its input — the hook
/// behind the paper's Section 6 suggestion that "removal of non-skyline
/// tuples could be done during the external sort passes" (realized by the
/// elimination-filter window of core/less.h).
class RowFilter {
 public:
  virtual ~RowFilter() = default;

  /// Returns false to drop the record before it enters a sort run.
  virtual bool Keep(const char* row) = 0;
};

/// Tuning knobs for the external merge sort.
struct SortOptions {
  /// Pages of record buffer available: bounds both the in-memory run size
  /// and the merge fan-in. The paper's experiments give the sort a
  /// 1,000-page allocation.
  size_t buffer_pages = 1000;
  /// Optional input filter (must outlive the sort); see RowFilter.
  RowFilter* filter = nullptr;
};

/// Observability counters for one Sort() call.
struct SortStats {
  uint64_t runs_generated = 0;
  uint64_t merge_levels = 0;
  /// Records dropped by SortOptions::filter.
  uint64_t records_filtered = 0;
  /// Pages written+read for runs and merges (excludes reading the input and
  /// counts the final output's write).
  IoStats io;
};

/// Classic external merge sort over heap files of fixed-width records:
/// quicksorted initial runs of `buffer_pages` pages each, then k-way merges
/// with fan-in `buffer_pages - 1` until one sorted file remains.
///
/// When `ordering->has_key()` the sorter caches one scalar key per record
/// (computed once per run / merge cursor) instead of invoking the
/// multi-column comparator per comparison.
class ExternalSorter {
 public:
  /// All pointers must outlive the sorter. `stats_out` may be null.
  ExternalSorter(Env* env, TempFileManager* temp_files,
                 const RowOrdering* ordering, size_t record_size,
                 const SortOptions& options, SortStats* stats_out);

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Sorts the heap file at `input_path` and returns the path of a new
  /// sorted temp heap file (owned by the TempFileManager).
  Result<std::string> Sort(const std::string& input_path);

 private:
  Result<std::string> GenerateRuns(const std::string& input_path,
                                   std::vector<std::string>* runs);
  Result<std::string> MergeRuns(std::vector<std::string> runs);
  Result<std::string> MergeOnce(const std::vector<std::string>& group);

  Env* env_;
  TempFileManager* temp_files_;
  const RowOrdering* ordering_;
  size_t record_size_;
  SortOptions options_;
  SortStats* stats_out_;
  SortStats local_stats_;
  SortStats* stats_;
};

/// Convenience: sort `input_path` with `ordering` using fresh temp files in
/// `env`, returning the sorted file path. `stats` may be null.
Result<std::string> SortHeapFile(Env* env, TempFileManager* temp_files,
                                 const std::string& input_path,
                                 size_t record_size,
                                 const RowOrdering& ordering,
                                 const SortOptions& options, SortStats* stats);

}  // namespace skyline

#endif  // SKYLINE_SORT_EXTERNAL_SORT_H_
