#ifndef SKYLINE_SORT_EXTERNAL_SORT_H_
#define SKYLINE_SORT_EXTERNAL_SORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "env/env.h"
#include "sort/comparator.h"
#include "storage/io_stats.h"
#include "storage/temp_file_manager.h"

namespace skyline {

/// Record-level filter applied while the sorter reads its input — the hook
/// behind the paper's Section 6 suggestion that "removal of non-skyline
/// tuples could be done during the external sort passes" (realized by the
/// elimination-filter window of core/less.h).
class RowFilter {
 public:
  virtual ~RowFilter() = default;

  /// Returns false to drop the record before it enters a sort run.
  virtual bool Keep(const char* row) = 0;
};

/// Tuning knobs for the external merge sort.
struct SortOptions {
  /// Pages of record buffer available: bounds both the in-memory run size
  /// and the merge fan-in. The paper's experiments give the sort a
  /// 1,000-page allocation.
  size_t buffer_pages = 1000;
  /// Optional input filter (must outlive the sort); see RowFilter.
  RowFilter* filter = nullptr;
  /// Worker threads for run formation and merging. 1 (the default) keeps
  /// the classic sequential sort; 0 means one per hardware thread. The
  /// sorted output is byte-identical for every thread count: parallelism
  /// only changes *when* each run is sorted and each group merged, never
  /// the run boundaries or merge tree. With T > 1, up to T in-memory runs
  /// are in flight at once, so peak memory is ~T × buffer_pages pages.
  size_t threads = 1;
};

/// Observability counters for one Sort() call.
struct SortStats {
  uint64_t runs_generated = 0;
  uint64_t merge_levels = 0;
  /// Records dropped by SortOptions::filter.
  uint64_t records_filtered = 0;
  /// Worker threads the sort actually used.
  uint64_t threads_used = 1;
  /// Pages written+read for runs and merges (excludes reading the input and
  /// counts the final output's write).
  IoStats io;
};

/// Classic external merge sort over heap files of fixed-width records:
/// quicksorted initial runs of `buffer_pages` pages each, then k-way merges
/// with fan-in `buffer_pages - 1` until one sorted file remains.
///
/// When `ordering->has_key()` the sorter caches one scalar key per record
/// (computed once per run / merge cursor) instead of invoking the
/// multi-column comparator per comparison.
///
/// With SortOptions::threads > 1 the sorter parallelizes on a ThreadPool:
/// run formation pipelines the (sequential) input scan against concurrent
/// sort+write of whole runs, merge levels process independent run groups
/// concurrently, and a single-group (final) merge overlaps its comparison
/// work with page writes via a double-buffered background appender.
class ExternalSorter {
 public:
  /// All pointers must outlive the sorter. `stats_out` may be null. The
  /// context supplies the thread override, trace sink ("run-formation" and
  /// per-level "merge-N" spans), and the cancellation hook polled during
  /// the input scan and each merge.
  ExternalSorter(Env* env, TempFileManager* temp_files,
                 const RowOrdering* ordering, size_t record_size,
                 const SortOptions& options, const ExecContext& ctx,
                 SortStats* stats_out);

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Sorts the heap file at `input_path` and returns the path of a new
  /// sorted temp heap file (owned by the TempFileManager).
  Result<std::string> Sort(const std::string& input_path);

 private:
  Result<std::string> GenerateRuns(const std::string& input_path,
                                   std::vector<std::string>* runs);
  /// Sorts `count` records in `buffer` and writes them to `run_path`,
  /// accumulating page I/O into `io` (caller-local; merged later).
  Status SortAndWriteRun(std::vector<char> buffer, size_t count,
                         const std::string& run_path, IoStats* io);
  Result<std::string> MergeRuns(std::vector<std::string> runs);
  /// Merges `group` into `out_path`. `append_pool`, when non-null, receives
  /// the page-append work so it overlaps with comparisons; it must only be
  /// set when MergeOnce runs on the caller thread (never from inside a pool
  /// task, which must not wait on tasks it submitted).
  Status MergeOnce(const std::vector<std::string>& group,
                   const std::string& out_path, ThreadPool* append_pool,
                   IoStats* io);

  Env* env_;
  TempFileManager* temp_files_;
  const RowOrdering* ordering_;
  size_t record_size_;
  SortOptions options_;
  const ExecContext* ctx_;
  SortStats* stats_out_;
  SortStats local_stats_;
  SortStats* stats_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex stats_mu_;
};

/// Convenience: sort `input_path` with `ordering` using fresh temp files in
/// `env`, returning the sorted file path. `stats` may be null.
Result<std::string> SortHeapFile(Env* env, TempFileManager* temp_files,
                                 const std::string& input_path,
                                 size_t record_size,
                                 const RowOrdering& ordering,
                                 const SortOptions& options,
                                 const ExecContext& ctx, SortStats* stats);

}  // namespace skyline

#endif  // SKYLINE_SORT_EXTERNAL_SORT_H_
