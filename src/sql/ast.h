#ifndef SKYLINE_SQL_AST_H_
#define SKYLINE_SQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/skyline_spec.h"

namespace skyline {

/// Comparison operator of a WHERE predicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A literal value: number or string.
using SqlLiteral = std::variant<double, std::string>;

/// One `column <op> literal` predicate (literals on the left are
/// normalized by flipping the operator during parsing).
struct SqlPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  SqlLiteral literal;
};

/// One ORDER BY key.
struct SqlOrderItem {
  std::string column;
  bool descending = false;
};

/// How the statement should be evaluated: run it (kNone), render its plan
/// without running (kPlan, `EXPLAIN ...`), or run it and render the plan
/// annotated with per-operator stats (kAnalyze, `EXPLAIN ANALYZE ...`).
enum class ExplainMode { kNone, kPlan, kAnalyze };

/// Parsed form of the mini dialect's single statement shape — the paper's
/// Figure 3 proposal:
///
///   [EXPLAIN [ANALYZE]]
///   SELECT <* | col [, col ...]>
///   FROM <table>
///   [WHERE <col op literal> [AND ...]]
///   [SKYLINE OF <col [MIN|MAX|DIFF]> [, ...]]
///   [ORDER BY <col [ASC|DESC]> [, ...]]
///   [LIMIT <n>]
///
/// MAX is the default skyline directive, as in the paper; ASC is the
/// default sort direction. ORDER BY may reference any base-table column
/// (it is applied before projection).
struct SelectStatement {
  /// Empty means `*`.
  std::vector<std::string> columns;
  std::string table;
  std::vector<SqlPredicate> predicates;
  std::vector<Criterion> skyline;
  std::vector<SqlOrderItem> order_by;
  std::optional<uint64_t> limit;
  ExplainMode explain = ExplainMode::kNone;
};

/// Parsed form of `INSERT INTO <table> VALUES (<lit> [, ...]) [, (...)]`.
/// Each row lists one literal per table column, in schema order; the
/// binder coerces numbers to the column type and pads/truncates strings.
struct InsertStatement {
  std::string table;
  std::vector<std::vector<SqlLiteral>> rows;
};

/// Parsed form of `DELETE FROM <table> [WHERE <col op literal> [AND ...]]`.
/// No predicates means delete every row.
struct DeleteStatement {
  std::string table;
  std::vector<SqlPredicate> predicates;
};

/// Any statement of the dialect. SELECT keeps its historical position 0 so
/// read-only callers can `std::get<SelectStatement>` after a kind check.
using SqlStatement =
    std::variant<SelectStatement, InsertStatement, DeleteStatement>;

/// Printable operator text ("<=" etc.), for diagnostics.
std::string_view CompareOpText(CompareOp op);

}  // namespace skyline

#endif  // SKYLINE_SQL_AST_H_
