#include "sql/binder.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/order_key.h"

namespace skyline {

bool BoundPredicate::Eval(const RowView& row) const {
  int cmp;
  if (is_string) {
    const std::string value = row.GetString(column);
    cmp = value.compare(text);
  } else {
    const double value = row.GetNumeric(column);
    cmp = value < number ? -1 : (value > number ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Result<BoundPredicate> BindPredicate(const Schema& schema,
                                     const SqlPredicate& predicate) {
  BoundPredicate bound;
  SKYLINE_ASSIGN_OR_RETURN(bound.column, schema.ColumnIndex(predicate.column));
  bound.op = predicate.op;
  const bool numeric_column = schema.IsNumeric(bound.column);
  if (std::holds_alternative<double>(predicate.literal)) {
    if (!numeric_column) {
      return Status::InvalidArgument("column " + predicate.column +
                                     " is a string; compare it to a quoted "
                                     "string literal");
    }
    bound.is_string = false;
    bound.number = std::get<double>(predicate.literal);
  } else {
    if (numeric_column) {
      return Status::InvalidArgument("column " + predicate.column +
                                     " is numeric; compare it to a number");
    }
    bound.is_string = true;
    bound.text = std::get<std::string>(predicate.literal);
  }
  return bound;
}

Result<std::vector<BoundPredicate>> BindPredicates(
    const Schema& schema, const std::vector<SqlPredicate>& predicates) {
  std::vector<BoundPredicate> bound;
  bound.reserve(predicates.size());
  for (const auto& predicate : predicates) {
    SKYLINE_ASSIGN_OR_RETURN(BoundPredicate b,
                             BindPredicate(schema, predicate));
    bound.push_back(std::move(b));
  }
  return bound;
}

bool EvalPredicates(const std::vector<BoundPredicate>& predicates,
                    const RowView& row) {
  for (const auto& predicate : predicates) {
    if (!predicate.Eval(row)) return false;
  }
  return true;
}

namespace {

// -2^63 and 2^63 are exactly representable as doubles; int64 max is not,
// so range checks compare against 2^63 and exclude it.
constexpr double kInt64LoD = -9223372036854775808.0;
constexpr double kInt64HiD = 9223372036854775808.0;

}  // namespace

/// Float bounds normalize ±0.0 (distinct total-order keys, equal SQL
/// values) so the interval matches double comparison semantics. NaN
/// *data* values sit beyond the infinities in key space and would not
/// compare the same way, but NaN literals are never pushed and the
/// generators produce no NaN data.
bool TryPushPredicate(ColumnType type, CompareOp op, double v, int64_t* lo,
                      int64_t* hi) {
  if (std::isnan(v)) return false;
  if (op == CompareOp::kNe) return false;

  const auto make_empty = [lo, hi]() {
    *lo = std::numeric_limits<int64_t>::max();
    *hi = std::numeric_limits<int64_t>::min();
    return true;
  };

  if (type == ColumnType::kFloat64) {
    const bool zero = v == 0.0;
    switch (op) {
      case CompareOp::kGe:
        *lo = std::max(*lo, Float64TotalOrderKey(zero ? -0.0 : v));
        return true;
      case CompareOp::kGt: {
        const int64_t k = Float64TotalOrderKey(zero ? 0.0 : v);
        if (k == std::numeric_limits<int64_t>::max()) return make_empty();
        *lo = std::max(*lo, k + 1);
        return true;
      }
      case CompareOp::kLe:
        *hi = std::min(*hi, Float64TotalOrderKey(zero ? 0.0 : v));
        return true;
      case CompareOp::kLt: {
        const int64_t k = Float64TotalOrderKey(zero ? -0.0 : v);
        if (k == std::numeric_limits<int64_t>::min()) return make_empty();
        *hi = std::min(*hi, k - 1);
        return true;
      }
      case CompareOp::kEq:
        *lo = std::max(*lo, Float64TotalOrderKey(zero ? -0.0 : v));
        *hi = std::min(*hi, Float64TotalOrderKey(zero ? 0.0 : v));
        return true;
      case CompareOp::kNe:
        return false;
    }
    return false;
  }

  // Integer columns: reduce every op to inclusive integer endpoints,
  // staying in the exactly-representable double range before casting.
  const int64_t col_min = type == ColumnType::kInt32
                              ? std::numeric_limits<int32_t>::min()
                              : std::numeric_limits<int64_t>::min();
  const int64_t col_max = type == ColumnType::kInt32
                              ? std::numeric_limits<int32_t>::max()
                              : std::numeric_limits<int64_t>::max();
  const bool integral = v == std::floor(v);
  switch (op) {
    case CompareOp::kLe:
    case CompareOp::kLt: {
      const double f = std::floor(v);
      if (f >= kInt64HiD) return true;  // satisfied by every int64
      if (f < kInt64LoD) return make_empty();
      int64_t bound = static_cast<int64_t>(f);
      if (op == CompareOp::kLt && integral) {
        if (bound == std::numeric_limits<int64_t>::min()) return make_empty();
        --bound;
      }
      if (bound < col_min) return make_empty();
      if (bound < col_max) *hi = std::min(*hi, bound);
      return true;
    }
    case CompareOp::kGe:
    case CompareOp::kGt: {
      const double c = std::ceil(v);
      if (c < kInt64LoD) return true;  // satisfied by every int64
      if (c >= kInt64HiD) return make_empty();
      int64_t bound = static_cast<int64_t>(c);
      if (op == CompareOp::kGt && integral) {
        if (bound == std::numeric_limits<int64_t>::max()) return make_empty();
        ++bound;
      }
      if (bound > col_max) return make_empty();
      if (bound > col_min) *lo = std::max(*lo, bound);
      return true;
    }
    case CompareOp::kEq: {
      if (!integral || v < kInt64LoD || v >= kInt64HiD) return make_empty();
      const int64_t value = static_cast<int64_t>(v);
      if (value < col_min || value > col_max) return make_empty();
      *lo = std::max(*lo, value);
      *hi = std::min(*hi, value);
      return true;
    }
    case CompareOp::kNe:
      return false;
  }
  return false;
}

Result<BoundSelect> BindSelect(const Table* table,
                               const SelectStatement& statement) {
  const Schema& schema = table->schema();
  BoundSelect bound;
  bound.table = table;

  // Bind everything before splitting so errors carry context.
  SKYLINE_ASSIGN_OR_RETURN(std::vector<BoundPredicate> predicates,
                           BindPredicates(schema, statement.predicates));
  for (const auto& criterion : statement.skyline) {
    SKYLINE_RETURN_IF_ERROR(schema.ColumnIndex(criterion.column).status());
  }
  bound.projection.reserve(statement.columns.size());
  for (const auto& column : statement.columns) {
    SKYLINE_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(column));
    bound.projection.push_back(index);
  }
  bound.order_keys.reserve(statement.order_by.size());
  for (const auto& item : statement.order_by) {
    SKYLINE_ASSIGN_OR_RETURN(size_t column, schema.ColumnIndex(item.column));
    bound.order_keys.push_back({column, item.descending});
  }
  bound.limit = statement.limit;

  // With a SKYLINE OF clause, push range predicates down into the skyline
  // operator as a constrained-skyline box: BBS probes the box against
  // index node corners (pruning subtrees without reading them), and when
  // every predicate pushes the operator sees a bare table scan and can use
  // the base table's sidecars directly. Predicates that aren't exact key
  // intervals (kNe, strings, NaN literals) stay behind as a row filter.
  if (statement.skyline.empty()) {
    bound.residual = std::move(predicates);
    return bound;
  }
  std::vector<int64_t> lo(schema.num_columns(),
                          std::numeric_limits<int64_t>::min());
  std::vector<int64_t> hi(schema.num_columns(),
                          std::numeric_limits<int64_t>::max());
  std::vector<bool> touched(schema.num_columns(), false);
  for (auto& predicate : predicates) {
    const bool pushed =
        !predicate.is_string &&
        TryPushPredicate(schema.column(predicate.column).type, predicate.op,
                         predicate.number, &lo[predicate.column],
                         &hi[predicate.column]);
    if (pushed) {
      touched[predicate.column] = true;
    } else {
      bound.residual.push_back(std::move(predicate));
    }
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    // Tautological intervals are dropped (their predicates are still
    // consumed); everything else — including empty boxes — constrains.
    if (touched[c] && (lo[c] != std::numeric_limits<int64_t>::min() ||
                       hi[c] != std::numeric_limits<int64_t>::max())) {
      bound.constraint.bounds.push_back({c, lo[c], hi[c]});
    }
  }
  return bound;
}

Result<std::vector<char>> BindInsertRows(
    const Schema& schema, const std::vector<std::vector<SqlLiteral>>& rows) {
  std::vector<char> buffer;
  buffer.reserve(rows.size() * schema.row_width());
  RowBuffer row(&schema);
  for (size_t r = 0; r < rows.size(); ++r) {
    const auto& literals = rows[r];
    if (literals.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "VALUES row " + std::to_string(r + 1) + " has " +
          std::to_string(literals.size()) + " values; table needs " +
          std::to_string(schema.num_columns()));
    }
    std::memset(row.mutable_data(), 0, row.size());
    for (size_t c = 0; c < literals.size(); ++c) {
      const ColumnDef& column = schema.column(c);
      if (std::holds_alternative<std::string>(literals[c])) {
        if (column.type != ColumnType::kFixedString) {
          return Status::InvalidArgument("column " + column.name +
                                         " is numeric; insert a number");
        }
        const std::string& text = std::get<std::string>(literals[c]);
        if (text.size() > column.string_length) {
          return Status::InvalidArgument(
              "string '" + text + "' does not fit column " + column.name +
              " (str[" + std::to_string(column.string_length) + "])");
        }
        row.SetString(c, text);
        continue;
      }
      const double v = std::get<double>(literals[c]);
      switch (column.type) {
        case ColumnType::kInt32:
          if (v != std::floor(v) ||
              v < std::numeric_limits<int32_t>::min() ||
              v > std::numeric_limits<int32_t>::max()) {
            return Status::InvalidArgument("value out of range for int32 "
                                           "column " + column.name);
          }
          row.SetInt32(c, static_cast<int32_t>(v));
          break;
        case ColumnType::kInt64:
          // 2^63 is not representable in int64; the >= excludes it.
          if (v != std::floor(v) || v < -9223372036854775808.0 ||
              v >= 9223372036854775808.0) {
            return Status::InvalidArgument("value out of range for int64 "
                                           "column " + column.name);
          }
          row.SetInt64(c, static_cast<int64_t>(v));
          break;
        case ColumnType::kFloat64:
          row.SetFloat64(c, v);
          break;
        case ColumnType::kFixedString:
          return Status::InvalidArgument("column " + column.name +
                                         " is a string; insert a quoted "
                                         "string literal");
      }
    }
    buffer.insert(buffer.end(), row.data(), row.data() + row.size());
  }
  return buffer;
}

}  // namespace skyline
