#ifndef SKYLINE_SQL_BINDER_H_
#define SKYLINE_SQL_BINDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/skyline_constraint.h"
#include "relation/row.h"
#include "relation/table.h"
#include "sort/comparator.h"
#include "sql/ast.h"

namespace skyline {

/// Name resolution and typing for the mini dialect: statements arrive as
/// column/table names and untyped literals, and leave bound to column
/// indices, typed comparison closures, and canonical-key constraint boxes.
/// Shared by the SQL executor (which assembles a Volcano pipeline from the
/// bound form) and the Engine's cached skyline serve/maintenance paths
/// (which consume the bound form directly).

/// A predicate bound to a column index with a typed comparison closure.
struct BoundPredicate {
  size_t column;
  CompareOp op;
  bool is_string;
  double number = 0;
  std::string text;

  bool Eval(const RowView& row) const;
};

/// Binds one `column <op> literal` predicate against `schema`. NotFound
/// for unknown columns, InvalidArgument for type mismatches.
Result<BoundPredicate> BindPredicate(const Schema& schema,
                                     const SqlPredicate& predicate);

/// Binds a predicate list; fails on the first bad predicate.
Result<std::vector<BoundPredicate>> BindPredicates(
    const Schema& schema, const std::vector<SqlPredicate>& predicates);

/// True iff `row` satisfies every predicate (empty list = true).
bool EvalPredicates(const std::vector<BoundPredicate>& predicates,
                    const RowView& row);

/// Tries to express one numeric `column <op> literal` predicate as an
/// interval in the column's canonical key space, tightening [*lo, *hi]
/// (caller initializes to the full range). Returns false when the
/// predicate is not exactly representable as a key interval (kNe, string
/// comparisons, NaN literals) and must stay a residual row filter.
///
/// A predicate that excludes every column value tightens the interval to
/// an empty box (lo > hi) — the constrained skyline is then empty, which
/// is exactly the predicate's meaning. A tautological predicate (e.g.
/// `int_col <= 1e30`) is consumed without tightening anything.
bool TryPushPredicate(ColumnType type, CompareOp op, double v, int64_t* lo,
                      int64_t* hi);

/// A SELECT statement resolved against a concrete table: predicates split
/// into a pushed constraint box + residual row filters (the split only
/// happens under a SKYLINE OF clause — see BindSelect), projection and
/// ORDER BY columns resolved to indices.
struct BoundSelect {
  const Table* table = nullptr;
  /// Row filters that could not be pushed into the constraint.
  std::vector<BoundPredicate> residual;
  /// Canonical-key box pushed into the skyline operator; empty without a
  /// SKYLINE OF clause (all predicates stay residual then).
  SkylineConstraint constraint;
  /// Projection column indices in SELECT-list order; empty = `*`.
  std::vector<size_t> projection;
  /// ORDER BY keys resolved to column indices.
  std::vector<SortKey> order_keys;
  std::optional<uint64_t> limit;
};

/// Binds `statement` against `table` (already looked up by name): binds
/// predicates, validates skyline/projection/ORDER BY columns, and — when
/// the statement has a SKYLINE OF clause — pushes exact-range predicates
/// down into a constrained-skyline box, leaving the rest as residual row
/// filters. WHERE-before-SKYLINE semantics *are* the constrained skyline,
/// so the split is lossless.
Result<BoundSelect> BindSelect(const Table* table,
                               const SelectStatement& statement);

/// Coerces literal VALUES rows into raw rows of `schema`, one literal per
/// column in schema order, returned as a dense buffer of
/// rows.size() * schema.row_width() bytes. Numbers bind to numeric
/// columns (integer columns require integral in-range values); strings
/// bind to fixed-string columns, truncated or NUL-padded like
/// RowBuffer::SetString.
Result<std::vector<char>> BindInsertRows(
    const Schema& schema, const std::vector<std::vector<SqlLiteral>>& rows);

}  // namespace skyline

#endif  // SKYLINE_SQL_BINDER_H_
