#include "sql/engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/canonical_order.h"
#include "core/compute_skyline.h"
#include "core/maintenance.h"
#include "relation/column_store.h"
#include "relation/csv.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace skyline {
namespace {

/// Cache key: table identity + version + canonical spec/constraint text.
/// Bounds are sorted by column so semantically equal boxes key equal.
std::string MakeCacheKey(const std::string& table, uint64_t version,
                         const SkylineSpec& spec,
                         const SkylineConstraint& constraint) {
  std::string key = table;
  key.push_back('\n');
  key += std::to_string(version);
  key.push_back('\n');
  key += spec.ToString();
  key.push_back('\n');
  std::vector<SkylineConstraint::Bound> bounds = constraint.bounds;
  std::sort(bounds.begin(), bounds.end(),
            [](const SkylineConstraint::Bound& a,
               const SkylineConstraint::Bound& b) {
              return a.column < b.column;
            });
  for (const auto& bound : bounds) {
    key += std::to_string(bound.column);
    key.push_back(':');
    key += std::to_string(bound.lo);
    key.push_back(':');
    key += std::to_string(bound.hi);
    key.push_back(';');
  }
  return key;
}

std::string CacheKeyFor(const Engine::CachedSkyline& entry) {
  return MakeCacheKey(entry.table, entry.version, *entry.spec,
                      entry.constraint);
}

/// Copies the maintainer's members back into the entry and restores the
/// canonical serve order.
void AdoptMaintainerRows(const SkylineMaintainer& maintainer,
                         Engine::CachedSkyline* entry) {
  const size_t width = entry->spec->schema().row_width();
  entry->count = maintainer.size();
  entry->rows.resize(entry->count * width);
  for (size_t i = 0; i < entry->count; ++i) {
    std::memcpy(entry->rows.data() + i * width, maintainer.MemberAt(i), width);
  }
  SortSkylineRowsCanonical(*entry->spec, &entry->rows);
}

}  // namespace

Engine::Engine(const Options& options) : options_(options) {}

std::string Engine::VersionedPath(const std::string& name,
                                  uint64_t version) const {
  return options_.data_prefix + "/" + name + ".v" + std::to_string(version);
}

Status Engine::CreateTable(const std::string& name, Table table) {
  if (options_.write_sidecars) {
    SKYLINE_RETURN_IF_ERROR(WriteTableColumnFile(table));
    SKYLINE_RETURN_IF_ERROR(WriteTableBlockIndex(table));
  }
  auto shared = std::make_shared<const Table>(std::move(table));
  std::lock_guard<std::mutex> lock(mu_);
  tables_[name] = TableState{std::move(shared), 1};
  // Any cached results of a previous binding under this name are dead.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second->table == name) {
      cache_index_.erase(it->first);
      it = lru_.erase(it);
      ++counters_.invalidations;
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status Engine::CreateTableFromCsv(const std::string& name,
                                  const std::string& csv_text) {
  SKYLINE_ASSIGN_OR_RETURN(
      Table table, CsvToTable(options_.env, VersionedPath(name, 1), csv_text));
  return CreateTable(name, std::move(table));
}

Result<Engine::TableSnapshot> Engine::Snapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return TableSnapshot{it->second.table, it->second.version};
}

std::vector<std::string> Engine::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, state] : tables_) names.push_back(name);
  return names;
}

Result<Engine::CacheEntry> Engine::ComputeEntry(
    const std::string& name, const Table& table, uint64_t version,
    SkylineSpec spec, const SkylineConstraint& constraint,
    SkylineAlgorithm algorithm, const SfsOptions& sfs,
    const ExecContext& ctx) {
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++query_seq_;
  }
  const std::string output_path =
      options_.data_prefix + "/" + name + ".q" + std::to_string(seq);
  SkylineComputeOptions compute;
  compute.sfs = sfs;
  compute.constraint = constraint;
  SkylineRunStats stats;
  SKYLINE_ASSIGN_OR_RETURN(
      Table result,
      ComputeSkyline(algorithm, table, spec, ctx, output_path, &stats,
                     compute));
  auto entry = std::make_shared<CachedSkyline>();
  entry->table = name;
  entry->version = version;
  entry->spec = std::make_shared<const SkylineSpec>(std::move(spec));
  entry->constraint = constraint;
  SKYLINE_RETURN_IF_ERROR(result.ReadAllRows(&entry->rows));
  entry->count = result.row_count();
  SortSkylineRowsCanonical(*entry->spec, &entry->rows);
  // The result file was only a staging area for the cache entry.
  (void)options_.env->DeleteFile(output_path);
  return CacheEntry(std::move(entry));
}

Result<std::shared_ptr<const Engine::CachedSkyline>> Engine::QuerySkyline(
    const std::string& name, const std::vector<Criterion>& criteria,
    const SkylineConstraint& constraint, const SqlOptions& options,
    bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  SKYLINE_ASSIGN_OR_RETURN(TableSnapshot snapshot, Snapshot(name));
  SKYLINE_ASSIGN_OR_RETURN(
      SkylineSpec spec, SkylineSpec::Make(snapshot.table->schema(), criteria));
  const std::string key =
      MakeCacheKey(name, snapshot.version, spec, constraint);
  if (options_.result_cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++counters_.hits;
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second->second;
    }
  }
  SKYLINE_RETURN_IF_ERROR(options.exec.CheckCancelled());
  SKYLINE_ASSIGN_OR_RETURN(
      CacheEntry entry,
      ComputeEntry(name, *snapshot.table, snapshot.version, std::move(spec),
                   constraint, options.algorithm, options.sfs, options.exec));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.misses;
    // Cache only if the table hasn't moved on while we computed — a stale
    // fill would never be served (the key embeds the version) but would
    // squat in the LRU.
    auto table_it = tables_.find(name);
    if (options_.result_cache_capacity > 0 && table_it != tables_.end() &&
        table_it->second.version == snapshot.version) {
      CacheInsertLocked(key, entry);
    }
  }
  return entry;
}

Result<std::shared_ptr<const Table>> Engine::RewriteTable(
    const std::string& name, uint64_t version, const Schema& schema,
    const std::vector<char>& keep) {
  TableBuilder builder(options_.env, VersionedPath(name, version), schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  const size_t width = schema.row_width();
  const size_t count = width == 0 ? 0 : keep.size() / width;
  for (size_t i = 0; i < count; ++i) {
    SKYLINE_RETURN_IF_ERROR(builder.AppendRaw(keep.data() + i * width));
  }
  SKYLINE_ASSIGN_OR_RETURN(Table table, builder.Finish());
  if (options_.write_sidecars) {
    SKYLINE_RETURN_IF_ERROR(WriteTableColumnFile(table));
    SKYLINE_RETURN_IF_ERROR(WriteTableBlockIndex(table));
  }
  return std::make_shared<const Table>(std::move(table));
}

std::vector<Engine::CacheEntry> Engine::EntriesForTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CacheEntry> entries;
  for (const auto& [key, entry] : lru_) {
    if (entry->table == name) entries.push_back(entry);
  }
  return entries;
}

void Engine::PublishMutation(const std::string& name, TableState state,
                             std::vector<CacheEntry> carried,
                             MutationStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[name] = std::move(state);
  size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second->table == name) {
      cache_index_.erase(it->first);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  // Concurrent reads may have evicted collected entries before publish, so
  // clamp rather than trust removed >= carried.
  stats->entries_invalidated =
      removed > carried.size() ? removed - carried.size() : 0;
  counters_.invalidations += stats->entries_invalidated;
  counters_.patched += stats->entries_patched;
  counters_.repaired += stats->entries_repaired;
  for (auto& entry : carried) {
    // Key first: the arguments would otherwise race the move.
    std::string key = CacheKeyFor(*entry);
    CacheInsertLocked(std::move(key), std::move(entry));
  }
}

void Engine::CacheInsertLocked(const std::string& key, CacheEntry entry) {
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    lru_.erase(it->second);
    cache_index_.erase(it);
  }
  lru_.emplace_front(key, std::move(entry));
  cache_index_[key] = lru_.begin();
  while (lru_.size() > options_.result_cache_capacity) {
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

Result<Engine::MutationStats> Engine::InsertRows(const std::string& name,
                                                 const std::vector<char>& rows,
                                                 const ExecContext& ctx) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
  SKYLINE_ASSIGN_OR_RETURN(TableSnapshot snapshot, Snapshot(name));
  const Schema& schema = snapshot.table->schema();
  const size_t width = schema.row_width();
  if (width == 0 || rows.size() % width != 0) {
    return Status::InvalidArgument("insert buffer is not a whole number of "
                                   "rows");
  }
  MutationStats stats;
  stats.rows_affected = rows.size() / width;
  if (stats.rows_affected == 0) {
    stats.version = snapshot.version;
    return stats;
  }

  std::vector<char> all;
  SKYLINE_RETURN_IF_ERROR(snapshot.table->ReadAllRows(&all));
  all.insert(all.end(), rows.begin(), rows.end());
  const uint64_t new_version = snapshot.version + 1;
  SKYLINE_ASSIGN_OR_RETURN(std::shared_ptr<const Table> new_table,
                           RewriteTable(name, new_version, schema, all));

  // Inserts never force a recompute: each cached skyline absorbs the new
  // rows through the maintainer (dominated rows vanish, dominating rows
  // join and evict).
  std::vector<CacheEntry> carried;
  for (const CacheEntry& old_entry : EntriesForTable(name)) {
    if (old_entry->version != snapshot.version) continue;
    auto patched = std::make_shared<CachedSkyline>(*old_entry);
    SkylineMaintainer maintainer = SkylineMaintainer::FromComputedSkyline(
        patched->spec.get(), patched->rows.data(), patched->count);
    for (size_t i = 0; i < stats.rows_affected; ++i) {
      const char* row = rows.data() + i * width;
      if (!patched->constraint.empty() &&
          !patched->constraint.Matches(schema, row)) {
        continue;  // outside the entry's box: cannot affect it
      }
      maintainer.Insert(row);
    }
    AdoptMaintainerRows(maintainer, patched.get());
    patched->version = new_version;
    carried.push_back(std::move(patched));
    ++stats.entries_patched;
  }

  stats.version = new_version;
  PublishMutation(name, TableState{std::move(new_table), new_version},
                  std::move(carried), &stats);
  return stats;
}

Result<Engine::MutationStats> Engine::DeleteWhere(
    const std::string& name, const std::vector<SqlPredicate>& predicates,
    const ExecContext& ctx) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
  SKYLINE_ASSIGN_OR_RETURN(TableSnapshot snapshot, Snapshot(name));
  const Schema& schema = snapshot.table->schema();
  const size_t width = schema.row_width();
  SKYLINE_ASSIGN_OR_RETURN(std::vector<BoundPredicate> bound,
                           BindPredicates(schema, predicates));

  std::vector<char> all;
  SKYLINE_RETURN_IF_ERROR(snapshot.table->ReadAllRows(&all));
  std::vector<char> keep;
  std::vector<char> deleted;
  const size_t count = width == 0 ? 0 : all.size() / width;
  for (size_t i = 0; i < count; ++i) {
    const char* row = all.data() + i * width;
    if (EvalPredicates(bound, RowView(&schema, row))) {
      deleted.insert(deleted.end(), row, row + width);
    } else {
      keep.insert(keep.end(), row, row + width);
    }
  }

  MutationStats stats;
  stats.rows_affected = width == 0 ? 0 : deleted.size() / width;
  if (stats.rows_affected == 0) {
    stats.version = snapshot.version;
    return stats;
  }
  const uint64_t new_version = snapshot.version + 1;
  SKYLINE_ASSIGN_OR_RETURN(std::shared_ptr<const Table> new_table,
                           RewriteTable(name, new_version, schema, keep));

  // Deleting a dominated row never changes a skyline; deleting a member
  // with a surviving duplicate keeps it exact. Deleting the last copy of a
  // member is the recompute-needed direction the paper warns about: the
  // maintained set no longer tells us which dominated rows resurface.
  std::vector<CacheEntry> carried;
  for (const CacheEntry& old_entry : EntriesForTable(name)) {
    if (old_entry->version != snapshot.version) continue;
    auto patched = std::make_shared<CachedSkyline>(*old_entry);
    SkylineMaintainer maintainer = SkylineMaintainer::FromComputedSkyline(
        patched->spec.get(), patched->rows.data(), patched->count);
    bool needs_recompute = false;
    for (size_t i = 0; i < stats.rows_affected; ++i) {
      const char* row = deleted.data() + i * width;
      if (!patched->constraint.empty() &&
          !patched->constraint.Matches(schema, row)) {
        continue;
      }
      const auto result = maintainer.Remove(row);
      if (result ==
          SkylineMaintainer::RemoveResult::kMemberRemovedRecomputeNeeded) {
        needs_recompute = true;
        break;
      }
    }
    if (!needs_recompute) {
      AdoptMaintainerRows(maintainer, patched.get());
      patched->version = new_version;
      carried.push_back(std::move(patched));
      ++stats.entries_patched;
      continue;
    }
    if (!options_.repair_deletes) continue;  // lazy: drop the entry
    Result<CacheEntry> repaired = ComputeEntry(
        name, *new_table, new_version, SkylineSpec(*old_entry->spec),
        old_entry->constraint, options_.repair_algorithm, SfsOptions{}, ctx);
    if (!repaired.ok()) {
      if (repaired.status().IsCancelled()) return repaired.status();
      continue;  // repair failed: fall back to invalidation
    }
    carried.push_back(std::move(repaired).value());
    ++stats.entries_repaired;
  }

  stats.version = new_version;
  PublishMutation(name, TableState{std::move(new_table), new_version},
                  std::move(carried), &stats);
  return stats;
}

Engine::CacheCounters Engine::cache_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t Engine::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

// ---------------------------------------------------------------------------
// Session

Session::Session(Engine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

SqlOptions Session::BuildSqlOptions() const {
  SqlOptions options;
  options.algorithm = options_.algorithm;
  options.sfs = options_.sfs;
  options.temp_prefix = options_.temp_prefix;
  options.exec = exec_;
  // The single thread-knob resolution point: an explicitly set
  // exec().threads wins; otherwise a non-zero session knob becomes the
  // context override (where 1 means sequential); 0 defers to the
  // algorithm options.
  if (!options.exec.threads.has_value() && options_.threads != 0) {
    options.exec.threads = options_.threads;
  }
  return options;
}

Status Session::Execute(const std::string& sql,
                        const std::function<Status(const RowView&)>& visitor,
                        Outcome* outcome) {
  SKYLINE_RETURN_IF_ERROR(exec_.CheckCancelled());
  TraceSpan parse_span(exec_.trace, "sql-parse");
  SKYLINE_ASSIGN_OR_RETURN(SqlStatement statement, ParseSql(sql));
  parse_span.End();

  if (const auto* select = std::get_if<SelectStatement>(&statement)) {
    return ExecuteSelectStatement(*select, visitor, outcome);
  }
  const SqlOptions options = BuildSqlOptions();
  if (const auto* insert = std::get_if<InsertStatement>(&statement)) {
    SKYLINE_ASSIGN_OR_RETURN(Engine::TableSnapshot snapshot,
                             engine_->Snapshot(insert->table));
    SKYLINE_ASSIGN_OR_RETURN(
        std::vector<char> rows,
        BindInsertRows(snapshot.table->schema(), insert->rows));
    SKYLINE_ASSIGN_OR_RETURN(
        Engine::MutationStats stats,
        engine_->InsertRows(insert->table, rows, options.exec));
    if (outcome != nullptr) {
      outcome->write = true;
      outcome->rows_affected = stats.rows_affected;
      outcome->mutation = stats;
    }
    return Status::OK();
  }
  const auto& del = std::get<DeleteStatement>(statement);
  SKYLINE_ASSIGN_OR_RETURN(
      Engine::MutationStats stats,
      engine_->DeleteWhere(del.table, del.predicates, options.exec));
  if (outcome != nullptr) {
    outcome->write = true;
    outcome->rows_affected = stats.rows_affected;
    outcome->mutation = stats;
  }
  return Status::OK();
}

Status Session::ExecuteSelectStatement(
    const SelectStatement& statement,
    const std::function<Status(const RowView&)>& visitor, Outcome* outcome) {
  const SqlOptions options = BuildSqlOptions();
  SKYLINE_ASSIGN_OR_RETURN(Engine::TableSnapshot snapshot,
                           engine_->Snapshot(statement.table));
  if (outcome != nullptr) outcome->info.explain = statement.explain;

  // Result-cache eligibility: a skyline query whose WHERE clause pushed
  // down completely (the cache key captures the whole box) and whose
  // output order is ours to choose (no ORDER BY — cached entries serve in
  // canonical order). Projection and LIMIT apply on the way out.
  if (options_.use_result_cache && statement.explain == ExplainMode::kNone &&
      !statement.skyline.empty() && statement.order_by.empty()) {
    SKYLINE_ASSIGN_OR_RETURN(BoundSelect bound,
                             BindSelect(snapshot.table.get(), statement));
    if (bound.residual.empty()) {
      bool hit = false;
      SKYLINE_ASSIGN_OR_RETURN(
          std::shared_ptr<const Engine::CachedSkyline> entry,
          engine_->QuerySkyline(statement.table, statement.skyline,
                                bound.constraint, options, &hit));
      if (outcome != nullptr) {
        outcome->cache_eligible = true;
        outcome->cache_hit = hit;
        outcome->info.executed = true;
      }
      return ServeCachedSkyline(statement, *entry, visitor, outcome);
    }
  }

  Catalog catalog(engine_->env());
  catalog.Register(statement.table, snapshot.table.get());
  auto counting_visitor = [&visitor, outcome](const RowView& row) {
    if (outcome != nullptr) ++outcome->rows_emitted;
    return visitor(row);
  };
  return ExecuteSelect(catalog, statement, options, counting_visitor,
                       outcome != nullptr ? &outcome->info : nullptr);
}

Status Session::ServeCachedSkyline(
    const SelectStatement& statement, const Engine::CachedSkyline& entry,
    const std::function<Status(const RowView&)>& visitor, Outcome* outcome) {
  const Schema& schema = entry.spec->schema();
  const size_t width = schema.row_width();
  const uint64_t limit =
      statement.limit.has_value() ? *statement.limit : UINT64_MAX;

  std::vector<size_t> projection;
  Schema projected;
  if (!statement.columns.empty()) {
    std::vector<ColumnDef> defs;
    defs.reserve(statement.columns.size());
    for (const auto& name : statement.columns) {
      SKYLINE_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(name));
      projection.push_back(index);
      defs.push_back(schema.column(index));
    }
    SKYLINE_ASSIGN_OR_RETURN(projected, Schema::Make(std::move(defs)));
  }
  RowBuffer projected_row(projection.empty() ? &schema : &projected);

  uint64_t emitted = 0;
  for (size_t i = 0; i < entry.count && emitted < limit; ++i) {
    if ((i & 1023u) == 0) {
      SKYLINE_RETURN_IF_ERROR(exec_.CheckCancelled());
    }
    const char* row = entry.rows.data() + i * width;
    Status status;
    if (projection.empty()) {
      status = visitor(RowView(&schema, row));
    } else {
      for (size_t c = 0; c < projection.size(); ++c) {
        std::memcpy(projected_row.mutable_data() + projected.offset(c),
                    row + schema.offset(projection[c]),
                    schema.column_width(projection[c]));
      }
      status = visitor(projected_row.View());
    }
    SKYLINE_RETURN_IF_ERROR(status);
    ++emitted;
  }
  if (outcome != nullptr) outcome->rows_emitted = emitted;
  return Status::OK();
}

Result<std::string> Session::Explain(const std::string& sql) {
  SKYLINE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSelect(sql));
  SKYLINE_ASSIGN_OR_RETURN(Engine::TableSnapshot snapshot,
                           engine_->Snapshot(statement.table));
  Catalog catalog(engine_->env());
  catalog.Register(statement.table, snapshot.table.get());
  return ExplainSql(catalog, sql, BuildSqlOptions());
}

}  // namespace skyline
