#ifndef SKYLINE_SQL_ENGINE_H_
#define SKYLINE_SQL_ENGINE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/skyline_constraint.h"
#include "core/skyline_spec.h"
#include "relation/table.h"
#include "sql/ast.h"
#include "sql/executor.h"

namespace skyline {

/// Process-wide query engine: owns the storage env binding, the table
/// registry (name → versioned immutable Table), and the skyline result
/// cache, and runs the incremental-maintenance write path. One Engine per
/// process/server; per-connection state lives in Session.
///
/// Versioning model: tables are immutable. A mutation rewrites the heap
/// file to a new versioned path, swaps the registry's shared_ptr, and
/// bumps the table version; in-flight readers keep their snapshot (the old
/// file is retained). Cache entries are keyed by
/// (table, version, spec, constraint), so a stale entry can never be
/// served — on mutation, entries are either patched forward to the new
/// version (`SkylineMaintainer::Insert`, cheap), repaired by recomputation
/// (a deleted skyline member — the paper's expensive direction), or
/// invalidated.
///
/// Cached skylines are stored and served in *canonical order*
/// (core/canonical_order.h), not presort order: entropy presorting depends
/// on table stats, which mutations change, so canonical order is what
/// keeps a patched entry byte-identical to a from-scratch recompute.
class Engine {
 public:
  struct Options {
    /// Storage env for table files; borrowed, required.
    Env* env = nullptr;
    /// Path prefix for engine-managed files (versioned table rewrites,
    /// cache-fill outputs).
    std::string data_prefix = "engine";
    /// Result cache capacity in entries (LRU beyond that). 0 disables.
    size_t result_cache_capacity = 64;
    /// On deletion of a cached skyline member with no surviving duplicate:
    /// true recomputes the entry from the new table version inline
    /// (repair); false drops it (lazy invalidation — the next query
    /// refills).
    bool repair_deletes = true;
    /// Write the column-file and block-index sidecars after table loads
    /// and mutations, keeping the index path warm across versions.
    bool write_sidecars = true;
    /// Algorithm for maintenance-time repairs (the result set is
    /// algorithm-independent; this only picks the compute path).
    SkylineAlgorithm repair_algorithm = SkylineAlgorithm::kSfs;
  };

  /// One immutable cached result: the constrained skyline of `table` at
  /// `version`, rows in canonical order. Never mutated after publication —
  /// patching produces a new entry — so concurrent readers share it
  /// lock-free via shared_ptr.
  struct CachedSkyline {
    std::string table;
    uint64_t version = 0;
    /// Shared because SkylineSpec has no default constructor and patched
    /// entries reuse the original's spec unchanged.
    std::shared_ptr<const SkylineSpec> spec;
    SkylineConstraint constraint;
    std::vector<char> rows;
    size_t count = 0;
  };

  struct CacheCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Entries dropped by mutations (unpatchable or unpatched).
    uint64_t invalidations = 0;
    /// Entries carried across a mutation by in-place patching.
    uint64_t patched = 0;
    /// Entries carried across a deletion by inline recomputation.
    uint64_t repaired = 0;
    /// Entries dropped by LRU capacity pressure.
    uint64_t evictions = 0;
  };

  /// Per-statement outcome of a mutation.
  struct MutationStats {
    uint64_t rows_affected = 0;
    /// Table version after the mutation.
    uint64_t version = 0;
    size_t entries_patched = 0;
    size_t entries_repaired = 0;
    size_t entries_invalidated = 0;
  };

  struct TableSnapshot {
    std::shared_ptr<const Table> table;
    uint64_t version = 0;
  };

  explicit Engine(const Options& options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Env* env() const { return options_.env; }
  const Options& options() const { return options_; }

  /// Adopts `table` under `name` at version 1, replacing any existing
  /// binding (and invalidating its cache entries). The table must live in
  /// this engine's env.
  Status CreateTable(const std::string& name, Table table);

  /// Parses CSV text into a table registered under `name`.
  Status CreateTableFromCsv(const std::string& name,
                            const std::string& csv_text);

  /// Current version of `name`'s table; readers hold the snapshot's
  /// shared_ptr for as long as they read.
  Result<TableSnapshot> Snapshot(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Serves the constrained skyline of `name`'s current version in
  /// canonical order — from the result cache when possible, computing and
  /// filling on miss. `options` supplies the compute path (algorithm,
  /// SFS knobs, ExecContext) for a cold fill; the cached result itself is
  /// algorithm-independent. Sets `*cache_hit` (may be null).
  Result<std::shared_ptr<const CachedSkyline>> QuerySkyline(
      const std::string& name, const std::vector<Criterion>& criteria,
      const SkylineConstraint& constraint, const SqlOptions& options,
      bool* cache_hit);

  /// Appends `rows` (dense schema-layout buffer) to `name`, rewriting the
  /// heap file to the next version and patching this table's cache entries
  /// in place (SkylineMaintainer::Insert — inserts never force a
  /// recompute).
  Result<MutationStats> InsertRows(const std::string& name,
                                   const std::vector<char>& rows,
                                   const ExecContext& ctx);

  /// Deletes the rows matching every predicate (all rows when empty),
  /// rewriting to the next version. Cache entries lose deleted members via
  /// SkylineMaintainer::Remove; a member removal with no surviving
  /// duplicate is the recompute-needed case — repaired inline or
  /// invalidated per Options::repair_deletes.
  Result<MutationStats> DeleteWhere(const std::string& name,
                                    const std::vector<SqlPredicate>& predicates,
                                    const ExecContext& ctx);

  CacheCounters cache_counters() const;
  size_t cache_size() const;

 private:
  struct TableState {
    std::shared_ptr<const Table> table;
    uint64_t version = 1;
  };

  using CacheEntry = std::shared_ptr<const CachedSkyline>;
  using LruList = std::list<std::pair<std::string, CacheEntry>>;

  std::string VersionedPath(const std::string& name, uint64_t version) const;

  /// Computes the constrained skyline of `table` into a fresh entry
  /// (canonical order). `algorithm`/`sfs` pick the compute path.
  Result<CacheEntry> ComputeEntry(const std::string& name,
                                  const Table& table, uint64_t version,
                                  SkylineSpec spec,
                                  const SkylineConstraint& constraint,
                                  SkylineAlgorithm algorithm,
                                  const SfsOptions& sfs,
                                  const ExecContext& ctx);

  /// Rewrites `name` to `version` with `keep` row bytes and publishes the
  /// new Table; sidecars per options. Caller holds write_mu_.
  Result<std::shared_ptr<const Table>> RewriteTable(
      const std::string& name, uint64_t version, const Schema& schema,
      const std::vector<char>& keep);

  /// Collects this table's cache entries (locked).
  std::vector<CacheEntry> EntriesForTable(const std::string& name) const;

  /// Replaces the table binding and this table's cache entries with
  /// `carried` (already rekeyed to the new version); every other entry of
  /// the table is invalidated. Fills stats->entries_invalidated and folds
  /// the mutation's patch/repair/invalidation counts into the cache
  /// counters (locked).
  void PublishMutation(const std::string& name, TableState state,
                       std::vector<CacheEntry> carried, MutationStats* stats);

  void CacheInsertLocked(const std::string& key, CacheEntry entry);

  Options options_;
  /// Serializes mutations end-to-end (file rewrite + patch + publish).
  std::mutex write_mu_;
  /// Guards tables_, the cache structures, and counters_.
  mutable std::mutex mu_;
  std::map<std::string, TableState> tables_;
  LruList lru_;  // front = most recent
  std::map<std::string, LruList::iterator> cache_index_;
  CacheCounters counters_;
  uint64_t query_seq_ = 0;
};

/// Per-connection execution facade over an Engine: owns the session's
/// options (algorithm, SFS knobs, the single user-facing `threads` knob,
/// temp prefix) and its ExecContext (cancellation hook, telemetry sinks),
/// and executes statements — SELECTs through the result cache when
/// eligible or the Volcano pipeline otherwise, INSERT/DELETE through the
/// engine's maintenance write path.
class Session {
 public:
  struct Options {
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSfs;
    SfsOptions sfs;
    /// The one user-facing thread knob, superseding the deleted
    /// `SqlOptions::threads`: 0 (default) leaves resolution to the
    /// algorithm options; any other value becomes the ExecContext override
    /// for every phase (1 forces sequential). An explicitly set
    /// `exec().threads` wins over this field — see
    /// Session resolution notes in DESIGN.md.
    size_t threads = 0;
    /// Temp-file prefix for pipeline steps.
    std::string temp_prefix = "session";
    /// Serve eligible skyline SELECTs from the engine's result cache.
    bool use_result_cache = true;
  };

  /// Per-statement outcome beyond the row stream.
  struct Outcome {
    SqlRunInfo info;
    /// True for INSERT/DELETE.
    bool write = false;
    uint64_t rows_affected = 0;
    /// SELECT only: the statement qualified for the result cache
    /// (skyline clause, fully pushed predicates, no ORDER BY).
    bool cache_eligible = false;
    bool cache_hit = false;
    /// Rows emitted to the visitor.
    uint64_t rows_emitted = 0;
    Engine::MutationStats mutation;
  };

  explicit Session(Engine* engine) : Session(engine, Options()) {}
  Session(Engine* engine, Options options);

  Engine* engine() const { return engine_; }
  const Options& options() const { return options_; }

  /// Mutable per-session context: install a cancellation hook, metrics or
  /// trace sinks. Threads resolution: an explicitly set `exec().threads`
  /// wins; otherwise a non-zero Options::threads becomes the override.
  ExecContext& exec() { return exec_; }

  /// Parses and executes one statement, invoking `visitor` per output row
  /// (never for writes or EXPLAIN). `outcome` may be null.
  Status Execute(const std::string& sql,
                 const std::function<Status(const RowView&)>& visitor,
                 Outcome* outcome = nullptr);

  /// Renders the plan a SELECT would execute, without running it.
  Result<std::string> Explain(const std::string& sql);

 private:
  /// The one SqlOptions assembly point: folds Options + exec() into the
  /// executor's options struct (including the threads resolution).
  SqlOptions BuildSqlOptions() const;

  Status ExecuteSelectStatement(
      const SelectStatement& statement,
      const std::function<Status(const RowView&)>& visitor, Outcome* outcome);
  /// Streams a cached entry through projection/limit to the visitor.
  Status ServeCachedSkyline(
      const SelectStatement& statement, const Engine::CachedSkyline& entry,
      const std::function<Status(const RowView&)>& visitor, Outcome* outcome);

  Engine* engine_;
  Options options_;
  ExecContext exec_;
};

}  // namespace skyline

#endif  // SKYLINE_SQL_ENGINE_H_
