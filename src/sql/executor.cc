#include "sql/executor.h"

#include <memory>
#include <vector>

#include "sql/binder.h"
#include "sql/parser.h"

namespace skyline {
namespace {

/// Binds `statement` and assembles the Query pipeline plus the owned
/// ordering it may reference. Shared by execution and EXPLAIN.
Result<std::unique_ptr<Query>> BuildQueryFromStatement(
    const Catalog& catalog, const SelectStatement& statement,
    const SqlOptions& options,
    std::unique_ptr<LexicographicOrdering>* order_by_out) {
  SKYLINE_ASSIGN_OR_RETURN(const Table* table,
                           catalog.Lookup(statement.table));
  SKYLINE_ASSIGN_OR_RETURN(BoundSelect bound, BindSelect(table, statement));

  std::unique_ptr<LexicographicOrdering> order_by;
  if (!bound.order_keys.empty()) {
    order_by = std::make_unique<LexicographicOrdering>(
        &table->schema(), std::move(bound.order_keys));
  }

  auto query = std::make_unique<Query>(catalog.env(), table,
                                       options.temp_prefix);
  if (!bound.residual.empty()) {
    auto residual =
        std::make_shared<std::vector<BoundPredicate>>(
            std::move(bound.residual));
    query->Where([residual](const RowView& row) {
      return EvalPredicates(*residual, row);
    });
  }
  if (!statement.skyline.empty()) {
    query->SkylineOf(statement.skyline, options.algorithm, options.sfs,
                     BnlOptions{}, std::move(bound.constraint));
  }
  if (order_by != nullptr) {
    // Before projection, so ORDER BY may reference non-selected columns;
    // the ordering binds to the base schema either way.
    query->OrderBy(order_by.get());
  }
  if (!statement.columns.empty()) {
    query->Project(statement.columns);
  }
  if (statement.limit.has_value()) {
    query->Limit(*statement.limit);
  }
  *order_by_out = std::move(order_by);
  return query;
}

}  // namespace

Status ExecuteSelect(const Catalog& catalog, const SelectStatement& statement,
                     const SqlOptions& options,
                     const std::function<Status(const RowView&)>& visitor,
                     SqlRunInfo* info) {
  const ExecContext& ctx = options.exec;
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
  if (info != nullptr) info->explain = statement.explain;
  TraceSpan bind_span(ctx.trace, "sql-bind");
  std::unique_ptr<LexicographicOrdering> order_by;
  SKYLINE_ASSIGN_OR_RETURN(
      std::unique_ptr<Query> query,
      BuildQueryFromStatement(catalog, statement, options, &order_by));
  bind_span.End();
  query->WithContext(&ctx);

  if (statement.explain == ExplainMode::kPlan) {
    // Plan only — nothing runs, the visitor never fires.
    SKYLINE_ASSIGN_OR_RETURN(std::string plan_text, query->Explain());
    if (info != nullptr) info->plan_text = std::move(plan_text);
    return Status::OK();
  }

  TraceSpan execute_span(ctx.trace, "sql-execute");
  if (statement.explain == ExplainMode::kAnalyze) {
    // EXPLAIN ANALYZE: run the plan for real, but the deliverable is the
    // annotated plan, not the rows.
    std::vector<PlanNodeStats> plan;
    SKYLINE_RETURN_IF_ERROR(query->RunProfiled(
        [](const RowView&) { return Status::OK(); }, &plan));
    if (info != nullptr) {
      info->executed = true;
      info->plan_text = RenderPlanStatsText(plan);
      info->plan = std::move(plan);
    }
    return Status::OK();
  }
  if (info != nullptr) {
    info->executed = true;
    return query->RunProfiled(visitor, &info->plan);
  }
  return query->Run(visitor);
}

Result<std::string> ExplainSql(const Catalog& catalog, const std::string& sql,
                               const SqlOptions& options) {
  SKYLINE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSelect(sql));
  std::unique_ptr<LexicographicOrdering> order_by;
  SKYLINE_ASSIGN_OR_RETURN(
      std::unique_ptr<Query> query,
      BuildQueryFromStatement(catalog, statement, options, &order_by));
  return query->Explain();
}

Status ExecuteSql(const Catalog& catalog, const std::string& sql,
                  const SqlOptions& options,
                  const std::function<Status(const RowView&)>& visitor,
                  SqlRunInfo* info) {
  TraceSpan parse_span(options.exec.trace, "sql-parse");
  SKYLINE_ASSIGN_OR_RETURN(SqlStatement statement, ParseSql(sql));
  parse_span.End();
  if (!std::holds_alternative<SelectStatement>(statement)) {
    return Status::InvalidArgument(
        "write statements mutate tables; run them through skyline::Session");
  }
  return ExecuteSelect(catalog, std::get<SelectStatement>(statement), options,
                       visitor, info);
}

}  // namespace skyline
