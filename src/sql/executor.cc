#include "sql/executor.h"

#include <memory>
#include <vector>

#include "sql/parser.h"

namespace skyline {
namespace {

/// A predicate bound to a column index with a typed comparison closure.
struct BoundPredicate {
  size_t column;
  CompareOp op;
  bool is_string;
  double number = 0;
  std::string text;

  bool Eval(const RowView& row) const {
    int cmp;
    if (is_string) {
      const std::string value = row.GetString(column);
      cmp = value.compare(text);
    } else {
      const double value = row.GetNumeric(column);
      cmp = value < number ? -1 : (value > number ? 1 : 0);
    }
    switch (op) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return false;
  }
};

Result<BoundPredicate> BindPredicate(const Schema& schema,
                                     const SqlPredicate& predicate) {
  BoundPredicate bound;
  SKYLINE_ASSIGN_OR_RETURN(bound.column, schema.ColumnIndex(predicate.column));
  bound.op = predicate.op;
  const bool numeric_column = schema.IsNumeric(bound.column);
  if (std::holds_alternative<double>(predicate.literal)) {
    if (!numeric_column) {
      return Status::InvalidArgument("column " + predicate.column +
                                     " is a string; compare it to a quoted "
                                     "string literal");
    }
    bound.is_string = false;
    bound.number = std::get<double>(predicate.literal);
  } else {
    if (numeric_column) {
      return Status::InvalidArgument("column " + predicate.column +
                                     " is numeric; compare it to a number");
    }
    bound.is_string = true;
    bound.text = std::get<std::string>(predicate.literal);
  }
  return bound;
}

}  // namespace

namespace {

/// Folds the legacy SqlOptions::threads knob into the context the
/// operators actually consume: an explicitly set exec.threads wins;
/// otherwise a non-zero legacy value becomes the override, and 0 keeps the
/// context's "defer to the algorithm options" default.
ExecContext ResolveSqlContext(const SqlOptions& options) {
  ExecContext ctx = options.exec;
  if (!ctx.threads.has_value() && options.threads != 0) {
    ctx.threads = options.threads;
  }
  return ctx;
}

/// Binds `statement` and assembles the Query pipeline plus the owned
/// ordering it may reference. Shared by execution and EXPLAIN.
Result<std::unique_ptr<Query>> BuildQueryFromStatement(
    const Catalog& catalog, const SelectStatement& statement,
    const SqlOptions& options,
    std::unique_ptr<LexicographicOrdering>* order_by_out) {
  SKYLINE_ASSIGN_OR_RETURN(const Table* table,
                           catalog.Lookup(statement.table));
  const Schema& schema = table->schema();

  // Bind everything before building the pipeline so errors carry context.
  std::vector<BoundPredicate> predicates;
  predicates.reserve(statement.predicates.size());
  for (const auto& predicate : statement.predicates) {
    SKYLINE_ASSIGN_OR_RETURN(BoundPredicate bound,
                             BindPredicate(schema, predicate));
    predicates.push_back(std::move(bound));
  }
  for (const auto& criterion : statement.skyline) {
    SKYLINE_RETURN_IF_ERROR(schema.ColumnIndex(criterion.column).status());
  }
  for (const auto& column : statement.columns) {
    SKYLINE_RETURN_IF_ERROR(schema.ColumnIndex(column).status());
  }
  std::unique_ptr<LexicographicOrdering> order_by;
  if (!statement.order_by.empty()) {
    std::vector<SortKey> keys;
    keys.reserve(statement.order_by.size());
    for (const auto& item : statement.order_by) {
      SKYLINE_ASSIGN_OR_RETURN(size_t column, schema.ColumnIndex(item.column));
      keys.push_back({column, item.descending});
    }
    order_by = std::make_unique<LexicographicOrdering>(&schema,
                                                       std::move(keys));
  }

  auto query = std::make_unique<Query>(catalog.env(), table,
                                       options.temp_prefix);
  if (!predicates.empty()) {
    query->Where([predicates](const RowView& row) {
      for (const auto& predicate : predicates) {
        if (!predicate.Eval(row)) return false;
      }
      return true;
    });
  }
  if (!statement.skyline.empty()) {
    // The legacy SqlOptions::threads override reaches the operators through
    // the execution context (see ResolveSqlContext), not by mutating sfs.
    query->SkylineOf(statement.skyline, options.algorithm, options.sfs);
  }
  if (order_by != nullptr) {
    // Before projection, so ORDER BY may reference non-selected columns;
    // the ordering binds to the base schema either way.
    query->OrderBy(order_by.get());
  }
  if (!statement.columns.empty()) {
    query->Project(statement.columns);
  }
  if (statement.limit.has_value()) {
    query->Limit(*statement.limit);
  }
  *order_by_out = std::move(order_by);
  return query;
}

}  // namespace

Status ExecuteSelect(const Catalog& catalog, const SelectStatement& statement,
                     const SqlOptions& options,
                     const std::function<Status(const RowView&)>& visitor) {
  const ExecContext ctx = ResolveSqlContext(options);
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
  TraceSpan bind_span(ctx.trace, "sql-bind");
  std::unique_ptr<LexicographicOrdering> order_by;
  SKYLINE_ASSIGN_OR_RETURN(
      std::unique_ptr<Query> query,
      BuildQueryFromStatement(catalog, statement, options, &order_by));
  bind_span.End();
  query->WithContext(&ctx);
  TraceSpan execute_span(ctx.trace, "sql-execute");
  return query->Run(visitor);
}

Result<std::string> ExplainSql(const Catalog& catalog, const std::string& sql,
                               const SqlOptions& options) {
  SKYLINE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  std::unique_ptr<LexicographicOrdering> order_by;
  SKYLINE_ASSIGN_OR_RETURN(
      std::unique_ptr<Query> query,
      BuildQueryFromStatement(catalog, statement, options, &order_by));
  return query->Explain();
}

Status ExecuteSql(const Catalog& catalog, const std::string& sql,
                  const SqlOptions& options,
                  const std::function<Status(const RowView&)>& visitor) {
  TraceSpan parse_span(options.exec.trace, "sql-parse");
  SKYLINE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  parse_span.End();
  return ExecuteSelect(catalog, statement, options, visitor);
}

}  // namespace skyline
