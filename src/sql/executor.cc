#include "sql/executor.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/order_key.h"
#include "sql/parser.h"

namespace skyline {
namespace {

/// A predicate bound to a column index with a typed comparison closure.
struct BoundPredicate {
  size_t column;
  CompareOp op;
  bool is_string;
  double number = 0;
  std::string text;

  bool Eval(const RowView& row) const {
    int cmp;
    if (is_string) {
      const std::string value = row.GetString(column);
      cmp = value.compare(text);
    } else {
      const double value = row.GetNumeric(column);
      cmp = value < number ? -1 : (value > number ? 1 : 0);
    }
    switch (op) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return false;
  }
};

Result<BoundPredicate> BindPredicate(const Schema& schema,
                                     const SqlPredicate& predicate) {
  BoundPredicate bound;
  SKYLINE_ASSIGN_OR_RETURN(bound.column, schema.ColumnIndex(predicate.column));
  bound.op = predicate.op;
  const bool numeric_column = schema.IsNumeric(bound.column);
  if (std::holds_alternative<double>(predicate.literal)) {
    if (!numeric_column) {
      return Status::InvalidArgument("column " + predicate.column +
                                     " is a string; compare it to a quoted "
                                     "string literal");
    }
    bound.is_string = false;
    bound.number = std::get<double>(predicate.literal);
  } else {
    if (numeric_column) {
      return Status::InvalidArgument("column " + predicate.column +
                                     " is numeric; compare it to a number");
    }
    bound.is_string = true;
    bound.text = std::get<std::string>(predicate.literal);
  }
  return bound;
}

// -2^63 and 2^63 are exactly representable as doubles; int64 max is not,
// so range checks compare against 2^63 and exclude it.
constexpr double kInt64LoD = -9223372036854775808.0;
constexpr double kInt64HiD = 9223372036854775808.0;

/// Tries to express one numeric `column <op> literal` predicate as an
/// interval in the column's canonical key space, tightening [*lo, *hi]
/// (caller initializes to the full range). Returns false when the
/// predicate is not exactly representable as a key interval (kNe, string
/// comparisons, NaN literals) and must stay a residual row filter.
///
/// A predicate that excludes every column value tightens the interval to
/// an empty box (lo > hi) — the constrained skyline is then empty, which
/// is exactly the predicate's meaning. A tautological predicate (e.g.
/// `int_col <= 1e30`) is consumed without tightening anything.
///
/// Float bounds normalize ±0.0 (distinct total-order keys, equal SQL
/// values) so the interval matches double comparison semantics. NaN
/// *data* values sit beyond the infinities in key space and would not
/// compare the same way, but NaN literals are never pushed and the
/// generators produce no NaN data.
bool TryPushPredicate(ColumnType type, CompareOp op, double v, int64_t* lo,
                      int64_t* hi) {
  if (std::isnan(v)) return false;
  if (op == CompareOp::kNe) return false;

  const auto make_empty = [lo, hi]() {
    *lo = std::numeric_limits<int64_t>::max();
    *hi = std::numeric_limits<int64_t>::min();
    return true;
  };

  if (type == ColumnType::kFloat64) {
    const bool zero = v == 0.0;
    switch (op) {
      case CompareOp::kGe:
        *lo = std::max(*lo, Float64TotalOrderKey(zero ? -0.0 : v));
        return true;
      case CompareOp::kGt: {
        const int64_t k = Float64TotalOrderKey(zero ? 0.0 : v);
        if (k == std::numeric_limits<int64_t>::max()) return make_empty();
        *lo = std::max(*lo, k + 1);
        return true;
      }
      case CompareOp::kLe:
        *hi = std::min(*hi, Float64TotalOrderKey(zero ? 0.0 : v));
        return true;
      case CompareOp::kLt: {
        const int64_t k = Float64TotalOrderKey(zero ? -0.0 : v);
        if (k == std::numeric_limits<int64_t>::min()) return make_empty();
        *hi = std::min(*hi, k - 1);
        return true;
      }
      case CompareOp::kEq:
        *lo = std::max(*lo, Float64TotalOrderKey(zero ? -0.0 : v));
        *hi = std::min(*hi, Float64TotalOrderKey(zero ? 0.0 : v));
        return true;
      case CompareOp::kNe:
        return false;
    }
    return false;
  }

  // Integer columns: reduce every op to inclusive integer endpoints,
  // staying in the exactly-representable double range before casting.
  const int64_t col_min = type == ColumnType::kInt32
                              ? std::numeric_limits<int32_t>::min()
                              : std::numeric_limits<int64_t>::min();
  const int64_t col_max = type == ColumnType::kInt32
                              ? std::numeric_limits<int32_t>::max()
                              : std::numeric_limits<int64_t>::max();
  const bool integral = v == std::floor(v);
  switch (op) {
    case CompareOp::kLe:
    case CompareOp::kLt: {
      const double f = std::floor(v);
      if (f >= kInt64HiD) return true;  // satisfied by every int64
      if (f < kInt64LoD) return make_empty();
      int64_t bound = static_cast<int64_t>(f);
      if (op == CompareOp::kLt && integral) {
        if (bound == std::numeric_limits<int64_t>::min()) return make_empty();
        --bound;
      }
      if (bound < col_min) return make_empty();
      if (bound < col_max) *hi = std::min(*hi, bound);
      return true;
    }
    case CompareOp::kGe:
    case CompareOp::kGt: {
      const double c = std::ceil(v);
      if (c < kInt64LoD) return true;  // satisfied by every int64
      if (c >= kInt64HiD) return make_empty();
      int64_t bound = static_cast<int64_t>(c);
      if (op == CompareOp::kGt && integral) {
        if (bound == std::numeric_limits<int64_t>::max()) return make_empty();
        ++bound;
      }
      if (bound > col_max) return make_empty();
      if (bound > col_min) *lo = std::max(*lo, bound);
      return true;
    }
    case CompareOp::kEq: {
      if (!integral || v < kInt64LoD || v >= kInt64HiD) return make_empty();
      const int64_t value = static_cast<int64_t>(v);
      if (value < col_min || value > col_max) return make_empty();
      *lo = std::max(*lo, value);
      *hi = std::min(*hi, value);
      return true;
    }
    case CompareOp::kNe:
      return false;
  }
  return false;
}

}  // namespace

namespace {

/// Folds the legacy SqlOptions::threads knob into the context the
/// operators actually consume: an explicitly set exec.threads wins;
/// otherwise a non-zero legacy value becomes the override, and 0 keeps the
/// context's "defer to the algorithm options" default.
ExecContext ResolveSqlContext(const SqlOptions& options) {
  ExecContext ctx = options.exec;
  if (!ctx.threads.has_value() && options.threads != 0) {
    ctx.threads = options.threads;
  }
  return ctx;
}

/// Binds `statement` and assembles the Query pipeline plus the owned
/// ordering it may reference. Shared by execution and EXPLAIN.
Result<std::unique_ptr<Query>> BuildQueryFromStatement(
    const Catalog& catalog, const SelectStatement& statement,
    const SqlOptions& options,
    std::unique_ptr<LexicographicOrdering>* order_by_out) {
  SKYLINE_ASSIGN_OR_RETURN(const Table* table,
                           catalog.Lookup(statement.table));
  const Schema& schema = table->schema();

  // Bind everything before building the pipeline so errors carry context.
  std::vector<BoundPredicate> predicates;
  predicates.reserve(statement.predicates.size());
  for (const auto& predicate : statement.predicates) {
    SKYLINE_ASSIGN_OR_RETURN(BoundPredicate bound,
                             BindPredicate(schema, predicate));
    predicates.push_back(std::move(bound));
  }
  for (const auto& criterion : statement.skyline) {
    SKYLINE_RETURN_IF_ERROR(schema.ColumnIndex(criterion.column).status());
  }
  for (const auto& column : statement.columns) {
    SKYLINE_RETURN_IF_ERROR(schema.ColumnIndex(column).status());
  }
  std::unique_ptr<LexicographicOrdering> order_by;
  if (!statement.order_by.empty()) {
    std::vector<SortKey> keys;
    keys.reserve(statement.order_by.size());
    for (const auto& item : statement.order_by) {
      SKYLINE_ASSIGN_OR_RETURN(size_t column, schema.ColumnIndex(item.column));
      keys.push_back({column, item.descending});
    }
    order_by = std::make_unique<LexicographicOrdering>(&schema,
                                                       std::move(keys));
  }

  // With a SKYLINE OF clause, push range predicates down into the skyline
  // operator as a constrained-skyline box: WHERE-before-SKYLINE semantics
  // *are* the constrained skyline, BBS probes the box against index node
  // corners (pruning subtrees without reading them), and when every
  // predicate pushes the operator sees a bare table scan and can use the
  // base table's sidecars directly. Predicates that aren't exact key
  // intervals (kNe, strings, NaN literals) stay behind as a row filter.
  SkylineConstraint constraint;
  std::vector<BoundPredicate> residual;
  if (statement.skyline.empty()) {
    residual = std::move(predicates);
  } else {
    std::vector<int64_t> lo(schema.num_columns(),
                            std::numeric_limits<int64_t>::min());
    std::vector<int64_t> hi(schema.num_columns(),
                            std::numeric_limits<int64_t>::max());
    std::vector<bool> touched(schema.num_columns(), false);
    for (auto& predicate : predicates) {
      const bool pushed =
          !predicate.is_string &&
          TryPushPredicate(schema.column(predicate.column).type, predicate.op,
                           predicate.number, &lo[predicate.column],
                           &hi[predicate.column]);
      if (pushed) {
        touched[predicate.column] = true;
      } else {
        residual.push_back(std::move(predicate));
      }
    }
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      // Tautological intervals are dropped (their predicates are still
      // consumed); everything else — including empty boxes — constrains.
      if (touched[c] && (lo[c] != std::numeric_limits<int64_t>::min() ||
                         hi[c] != std::numeric_limits<int64_t>::max())) {
        constraint.bounds.push_back({c, lo[c], hi[c]});
      }
    }
  }

  auto query = std::make_unique<Query>(catalog.env(), table,
                                       options.temp_prefix);
  if (!residual.empty()) {
    query->Where([residual](const RowView& row) {
      for (const auto& predicate : residual) {
        if (!predicate.Eval(row)) return false;
      }
      return true;
    });
  }
  if (!statement.skyline.empty()) {
    // The legacy SqlOptions::threads override reaches the operators through
    // the execution context (see ResolveSqlContext), not by mutating sfs.
    query->SkylineOf(statement.skyline, options.algorithm, options.sfs,
                     BnlOptions{}, std::move(constraint));
  }
  if (order_by != nullptr) {
    // Before projection, so ORDER BY may reference non-selected columns;
    // the ordering binds to the base schema either way.
    query->OrderBy(order_by.get());
  }
  if (!statement.columns.empty()) {
    query->Project(statement.columns);
  }
  if (statement.limit.has_value()) {
    query->Limit(*statement.limit);
  }
  *order_by_out = std::move(order_by);
  return query;
}

}  // namespace

Status ExecuteSelect(const Catalog& catalog, const SelectStatement& statement,
                     const SqlOptions& options,
                     const std::function<Status(const RowView&)>& visitor,
                     SqlRunInfo* info) {
  const ExecContext ctx = ResolveSqlContext(options);
  SKYLINE_RETURN_IF_ERROR(ctx.CheckCancelled());
  if (info != nullptr) info->explain = statement.explain;
  TraceSpan bind_span(ctx.trace, "sql-bind");
  std::unique_ptr<LexicographicOrdering> order_by;
  SKYLINE_ASSIGN_OR_RETURN(
      std::unique_ptr<Query> query,
      BuildQueryFromStatement(catalog, statement, options, &order_by));
  bind_span.End();
  query->WithContext(&ctx);

  if (statement.explain == ExplainMode::kPlan) {
    // Plan only — nothing runs, the visitor never fires.
    SKYLINE_ASSIGN_OR_RETURN(std::string plan_text, query->Explain());
    if (info != nullptr) info->plan_text = std::move(plan_text);
    return Status::OK();
  }

  TraceSpan execute_span(ctx.trace, "sql-execute");
  if (statement.explain == ExplainMode::kAnalyze) {
    // EXPLAIN ANALYZE: run the plan for real, but the deliverable is the
    // annotated plan, not the rows.
    std::vector<PlanNodeStats> plan;
    SKYLINE_RETURN_IF_ERROR(query->RunProfiled(
        [](const RowView&) { return Status::OK(); }, &plan));
    if (info != nullptr) {
      info->executed = true;
      info->plan_text = RenderPlanStatsText(plan);
      info->plan = std::move(plan);
    }
    return Status::OK();
  }
  if (info != nullptr) {
    info->executed = true;
    return query->RunProfiled(visitor, &info->plan);
  }
  return query->Run(visitor);
}

Result<std::string> ExplainSql(const Catalog& catalog, const std::string& sql,
                               const SqlOptions& options) {
  SKYLINE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  std::unique_ptr<LexicographicOrdering> order_by;
  SKYLINE_ASSIGN_OR_RETURN(
      std::unique_ptr<Query> query,
      BuildQueryFromStatement(catalog, statement, options, &order_by));
  return query->Explain();
}

Status ExecuteSql(const Catalog& catalog, const std::string& sql,
                  const SqlOptions& options,
                  const std::function<Status(const RowView&)>& visitor,
                  SqlRunInfo* info) {
  TraceSpan parse_span(options.exec.trace, "sql-parse");
  SKYLINE_ASSIGN_OR_RETURN(SelectStatement statement, ParseSql(sql));
  parse_span.End();
  return ExecuteSelect(catalog, statement, options, visitor, info);
}

}  // namespace skyline
