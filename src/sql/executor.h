#ifndef SKYLINE_SQL_EXECUTOR_H_
#define SKYLINE_SQL_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/sfs.h"
#include "exec/query.h"
#include "relation/table.h"
#include "sql/ast.h"

namespace skyline {

/// Name → table registry for SQL execution. Tables are borrowed (must
/// outlive the catalog); names are case-sensitive.
class Catalog {
 public:
  explicit Catalog(Env* env) : env_(env) {}

  /// Registers `table` under `name`; replaces an existing entry.
  void Register(const std::string& name, const Table* table) {
    tables_[name] = table;
  }

  Result<const Table*> Lookup(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound("no table named " + name);
    return it->second;
  }

  Env* env() const { return env_; }

 private:
  Env* env_;
  std::map<std::string, const Table*> tables_;
};

/// Execution knobs for SQL statements.
struct SqlOptions {
  /// Which algorithm evaluates SKYLINE OF clauses. kAuto routes 2-/3-dim
  /// specs through the windowless special-case scans.
  SkylineAlgorithm algorithm = SkylineAlgorithm::kSfs;
  /// Options for SFS-based evaluation (the kSfs and high-dim kAuto paths;
  /// sort_options also feed the special-case scans).
  SfsOptions sfs;
  /// Temp-file prefix for pipeline steps.
  std::string temp_prefix = "sql_query";
  /// Execution context threaded through every operator the statement
  /// builds: thread override, metrics/trace sinks, and the cancellation
  /// hook. This is the *only* thread knob at the SQL layer — the legacy
  /// `SqlOptions::threads` field is gone; user-facing thread selection
  /// lives in Session::Options::threads (see sql/engine.h), which resolves
  /// into `exec.threads` in exactly one place.
  ExecContext exec;
};

/// Renders the plan that `statement` would execute against `catalog`,
/// without running it.
Result<std::string> ExplainSql(const Catalog& catalog, const std::string& sql,
                               const SqlOptions& options = SqlOptions{});

/// Side-channel results of one statement execution, filled when the caller
/// passes it to ExecuteSelect/ExecuteSql.
///
/// For a plain statement: `executed` is true and `plan` holds the
/// per-operator profile (row counts always; wall times too, since profiled
/// execution runs with timing on).
///
/// For `EXPLAIN <query>`: nothing runs, `executed` stays false, and
/// `plan_text` holds the indented plan — the visitor never fires.
///
/// For `EXPLAIN ANALYZE <query>`: the statement runs to completion but
/// rows are consumed internally (the visitor never fires); `plan` holds
/// the profile and `plan_text` the annotated rendering.
struct SqlRunInfo {
  ExplainMode explain = ExplainMode::kNone;
  bool executed = false;
  std::string plan_text;
  std::vector<PlanNodeStats> plan;
};

/// Binds and runs `statement` against `catalog`, invoking `visitor` per
/// output row. Binding errors (unknown table/column, type-mismatched
/// predicate) surface as NotFound / InvalidArgument. A non-null `info`
/// collects the per-operator profile and makes the statement's EXPLAIN
/// mode observable (see SqlRunInfo).
Status ExecuteSelect(const Catalog& catalog, const SelectStatement& statement,
                     const SqlOptions& options,
                     const std::function<Status(const RowView&)>& visitor,
                     SqlRunInfo* info = nullptr);

/// One-shot convenience: parse + execute a SELECT. Write statements
/// (INSERT/DELETE) are rejected here — they mutate tables and must go
/// through the skyline::Session facade (sql/engine.h), which owns the
/// table-version and result-cache protocol.
Status ExecuteSql(const Catalog& catalog, const std::string& sql,
                  const SqlOptions& options,
                  const std::function<Status(const RowView&)>& visitor,
                  SqlRunInfo* info = nullptr);

}  // namespace skyline

#endif  // SKYLINE_SQL_EXECUTOR_H_
