#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace skyline {
namespace {

const std::set<std::string>& Keywords() {
  static const auto* const kKeywords = new std::set<std::string>{
      "SELECT", "FROM", "WHERE", "AND",  "SKYLINE", "OF",
      "MIN",    "MAX",  "DIFF",  "LIMIT", "ORDER",  "BY",
      "ASC",    "DESC",  "EXPLAIN", "ANALYZE",
      "INSERT", "INTO", "VALUES", "DELETE"};
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> LexSql(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tokens.push_back({TokenKind::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenKind::kIdentifier, std::move(word), start});
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               ((c == '-' || c == '+') && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                 sql[i + 1] == '.')) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool seen_dot = c == '.';
      bool seen_exp = false;
      while (j < n) {
        const char d = sql[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !seen_exp &&
                   std::isdigit(static_cast<unsigned char>(sql[j - 1]))) {
          seen_exp = true;
          ++j;
          if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        } else {
          break;
        }
      }
      tokens.push_back({TokenKind::kNumber, sql.substr(i, j - i), start});
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escapes a quote
            value.push_back('\'');
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          value.push_back(sql[j]);
          ++j;
        }
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(value), start});
      i = j;
    } else if (c == ',') {
      tokens.push_back({TokenKind::kComma, ",", start});
      ++i;
    } else if (c == '*') {
      tokens.push_back({TokenKind::kStar, "*", start});
      ++i;
    } else if (c == '(') {
      tokens.push_back({TokenKind::kLParen, "(", start});
      ++i;
    } else if (c == ')') {
      tokens.push_back({TokenKind::kRParen, ")", start});
      ++i;
    } else if (c == '=' ) {
      tokens.push_back({TokenKind::kOperator, "=", start});
      ++i;
    } else if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      tokens.push_back({TokenKind::kOperator, "!=", start});
      i += 2;
    } else if (c == '<' || c == '>') {
      if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
        tokens.push_back({TokenKind::kOperator, "!=", start});
        i += 2;
      } else if (i + 1 < n && sql[i + 1] == '=') {
        tokens.push_back({TokenKind::kOperator, std::string(1, c) + "=", start});
        i += 2;
      } else {
        tokens.push_back({TokenKind::kOperator, std::string(1, c), start});
        ++i;
      }
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at offset " +
                                     std::to_string(start));
    }
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace skyline
