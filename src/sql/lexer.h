#ifndef SKYLINE_SQL_LEXER_H_
#define SKYLINE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace skyline {

/// Token kinds for the mini SQL dialect (see sql/parser.h for the
/// grammar). Keywords are recognized case-insensitively and carried as
/// kKeyword with upper-cased text.
enum class TokenKind {
  kKeyword,     // SELECT FROM WHERE AND SKYLINE OF MIN MAX DIFF
                // LIMIT ORDER BY ASC DESC EXPLAIN ANALYZE
                // INSERT INTO VALUES DELETE
  kIdentifier,  // column / table names
  kNumber,      // integer or decimal literal (optional sign handled here)
  kString,      // '...' single-quoted, '' escapes a quote
  kComma,
  kStar,
  kLParen,
  kRParen,
  kOperator,    // = != < <= > >=
  kEnd,
};

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;
};

/// Tokenizes `sql`. Returns InvalidArgument with offset context on
/// malformed input (unterminated string, stray character).
Result<std::vector<Token>> LexSql(const std::string& sql);

}  // namespace skyline

#endif  // SKYLINE_SQL_LEXER_H_
